//! Workspace integration tests: the full pipeline (parser → HM →
//! constraint generation → fixpoint → SMT) on the paper's figures, plus
//! verifier/interpreter agreement.
//!
//! The heavyweight Fig. 10 benchmarks run in release mode via
//! `cargo run --release -p dsolve-bench --bin figure10`; here we keep the
//! fast ones so `cargo test --workspace` stays snappy in debug builds.

use dsolve_suite::dsolve::Job;
use dsolve_suite::logic::Symbol;
use dsolve_suite::nanoml::{
    builtin_env, parse_program, resolve_program, DataEnv, EvalError, Evaluator, Value,
};

fn run_value(src: &str, name: &str) -> Result<Value, EvalError> {
    let prog = parse_program(src).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env())?;
    Ok(env[&Symbol::new(name)].clone())
}

#[test]
fn fig1_divide_by_zero_verifies_and_runs() {
    let src = r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
let result = harmonic 4
"#;
    let res = Job::from_sources("fig1", src, "", "qualif P : 0 < VV\nqualif U : _ <= VV")
        .run()
        .unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
    assert_eq!(run_value(src, "result").unwrap(), Value::Int(20833));
}

#[test]
fn fig1_without_qualifiers_cannot_prove_division() {
    let src = r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
"#;
    let res = Job::from_sources("fig1-noquals", src, "", "").run().unwrap();
    assert!(!res.is_safe(), "division must be unprovable without Q");
}

#[test]
fn fig2_insertion_sort_sorted_via_mlq() {
    let src = r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
"#;
    let mlq = r#"
rho Sorted on list =
| Cons (h, t) -> t : [ Cons (h2, t2) -> h2 : { h <= VV } ]
val insertsort : xs : 'a list -> {VV : 'a list @Sorted}
"#;
    let res = Job::from_sources("fig2", src, mlq, "qualif Ub : _ <= VV")
        .run()
        .unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
}

#[test]
fn fig3_memo_fib_verifies_and_runs() {
    let src = r#"
let fib i =
  let rec f t0 n =
    if mem t0 n then (t0, get t0 n)
    else if n <= 2 then (t0, 1)
    else
      let (t1, r1) = f t0 (n - 1) in
      let (t2, r2) = f t1 (n - 2) in
      let r = r1 + r2 in
      (set t2 n r, r)
  in
  let (tfin, r) = f (new 17) i in
  r
let result = fib 25
"#;
    let mlq = "val fib : i : int -> {VV : int | (1 <= VV) && (i - 1 <= VV)}";
    let res = Job::from_sources("fig3", src, mlq, "qualif A : 1 <= VV\nqualif B : _ - 1 <= VV")
        .run()
        .unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
    assert_eq!(run_value(src, "result").unwrap(), Value::Int(75025));
}

#[test]
fn fig4_build_dag_acyclic() {
    let src = r#"
let rec build_dag k n g =
  if k <= 0 then (n, g)
  else
    let node = random 0 in
    if node < 0 then (n, g)
    else if node >= n then (n, g)
    else
      let succs = get g node in
      let g2 = set g node ((n + 1) :: succs) in
      build_dag (k - 1) (n + 1) g2
"#;
    let mlq = r#"
val build_dag : k : int -> n : int
  -> g : (int, {VV : int list elems { KEY < VV }}) map
  -> (int * (int, {VV : int list elems { KEY < VV }}) map)
"#;
    let res = Job::from_sources("fig4", src, mlq, "qualif S : KEY < VV\nqualif U : VV < _")
        .run()
        .unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
}

#[test]
fn verifier_and_interpreter_agree_on_asserts() {
    // A program whose assert genuinely fails at runtime must be UNSAFE,
    // and one that holds must be SAFE — differential soundness check.
    let bad = "let f x = assert (x * x > x); x\nlet use = f 1\n";
    let res = Job::from_sources("bad", bad, "", "").run().unwrap();
    assert!(!res.is_safe());
    let bad_run = run_value(bad, "use");
    assert!(matches!(bad_run, Err(EvalError::AssertFailed(_))));

    let good = "let f x = assert (x + 1 > x); x\nlet use = f 1\n";
    let res = Job::from_sources("good", good, "", "").run().unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
    assert_eq!(run_value(good, "use").unwrap(), Value::Int(1));
}

#[test]
fn measures_detect_unreachable_branches() {
    // The paper's §4.2 example: after consing, the Nil arm is dead, so
    // `assert false` inside it verifies.
    let src = r#"
let check a =
  let b = 1 :: a in
  match b with
  | x :: xs -> ()
  | [] -> assert false
"#;
    // As in the paper, the contradiction comes from the set theory:
    // elts b = empty clashes with elts b = union(single 1, elts a).
    let mlq = r#"
measure elts : 'a list -> set =
| Nil -> empty
| Cons (x, xs) -> union(single(x), elts(xs))
"#;
    let res = Job::from_sources("dead", src, mlq, "").run().unwrap();
    assert!(res.is_safe(), "{:?}", res.result.errors.first().map(ToString::to_string));
}

#[test]
fn cross_crate_reexports_compose() {
    // The umbrella crate exposes every layer.
    use dsolve_suite::logic::parse_pred;
    use dsolve_suite::smt::SmtSolver;
    let mut env = dsolve_suite::logic::SortEnv::new();
    env.bind(Symbol::new("x"), dsolve_suite::logic::Sort::Int);
    let mut smt = SmtSolver::new();
    assert!(smt.is_valid(
        &env,
        &parse_pred("x > 1").unwrap(),
        &parse_pred("x > 0").unwrap()
    ));
}
