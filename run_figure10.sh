#!/bin/bash
# Regenerates the Fig. 10 table row by row with a per-row time budget.
# Usage: ./run_figure10.sh [budget_seconds]
BUDGET=${1:-600}
cd "$(dirname "$0")"
cargo build --release -p dsolve >/dev/null 2>&1
echo "Fig. 10 reproduction (per-row budget: ${BUDGET}s; paper numbers in brackets)"
printf '%-12s %-22s %s\n' "Program" "Property" "Result"
for row in \
  "listsort:Sorted, Elts:110:7:11" \
  "map:Balance, BST, Set:95:3:23" \
  "ralist:Len:91:3:3" \
  "redblack:Balance, Color, BST:105:3:32" \
  "stablesort:Sorted:161:1:6" \
  "vec:Balance, Len1, Len2:343:9:103" \
  "heap:Heap, Min, Set:120:2:41" \
  "splayheap:BST, Min, Set:128:3:7" \
  "malloc:Alloc:71:2:2" \
  "bdd:VariableOrder:205:3:38" \
  "unionfind:Acyclic:61:2:5" \
  "subvsolve:Acyclic:264:2:26" ; do
  IFS=: read -r name prop ploc pann pt <<<"$row"
  out=$(timeout "$BUDGET" ./target/release/dsolve "benchmarks/$name.ml" --stats 2>&1)
  status=$(echo "$out" | grep -oE "SAFE|UNSAFE" | head -1)
  stats=$(echo "$out" | grep -oE "loc=[0-9]+ annotations=[0-9]+.*time=[0-9.]+s" | head -1)
  [ -z "$status" ] && status="TIMEOUT(${BUDGET}s)"
  printf '%-12s %-22s %s  %s  [paper: %s LOC, %s ann, %ss]\n' \
    "$name" "$prop" "$status" "$stats" "$ploc" "$pann" "$pt"
done
