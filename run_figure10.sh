#!/bin/bash
# Regenerates the Fig. 10 table row by row with a per-row time budget.
#
# Usage: ./run_figure10.sh [--smoke] [--jobs N] [budget_seconds]
#
#   --smoke   verify the fast all-SAFE benchmarks under a short deadline
#             — a seconds-long sanity check that the whole pipeline
#             (front end, liquid fixpoint, SMT, budget reporting) still
#             works, and that no verdict regressed (the set includes
#             malloc, once mis-reported UNSAFE by a specialization bug).
#   --jobs N  fixpoint worker threads (default: one per available CPU).
#
# Machine-readable per-row records (wall time, SMT queries, cache hits,
# jobs) land in BENCH_figure10.json via the Rust harness:
#   cargo run --release -p dsolve-bench --bin figure10 -- --json BENCH_figure10.json
#
# The budget is enforced by dsolve itself (`--timeout`), so an exhausted
# row reports `UNKNOWN` with a machine-readable reason instead of being
# killed from outside.
cd "$(dirname "$0")" || exit 3

SMOKE=0
BUDGET=600
JOBS=""
expect_jobs=0
for a in "$@"; do
  if [ "$expect_jobs" = 1 ]; then
    JOBS="$a"
    expect_jobs=0
    continue
  fi
  case "$a" in
    --smoke) SMOKE=1 ;;
    --jobs) expect_jobs=1 ;;
    *) BUDGET="$a" ;;
  esac
done
if [ "$expect_jobs" = 1 ]; then
  echo "run_figure10.sh: --jobs needs a value" >&2
  exit 3
fi
case "$JOBS" in
  "" | *[!0-9]*)
    if [ -n "$JOBS" ]; then
      echo "run_figure10.sh: --jobs expects a number, got '$JOBS'" >&2
      exit 3
    fi
    ;;
esac
JOBS_FLAG=()
[ -n "$JOBS" ] && JOBS_FLAG=(--jobs "$JOBS")

ROWS=(
  "listsort:Sorted, Elts:110:7:11"
  "map:Balance, BST, Set:95:3:23"
  "ralist:Len:91:3:3"
  "redblack:Balance, Color, BST:105:3:32"
  "stablesort:Sorted:161:1:6"
  "vec:Balance, Len1, Len2:343:9:103"
  "heap:Heap, Min, Set:120:2:41"
  "splayheap:BST, Min, Set:128:3:7"
  "malloc:Alloc:71:2:2"
  "bdd:VariableOrder:205:3:38"
  "unionfind:Acyclic:61:2:5"
  "subvsolve:Acyclic:264:2:26"
)
if [ "$SMOKE" = 1 ]; then
  BUDGET=60
  # Empirically the fastest all-SAFE rows: keep this list to benchmarks
  # that finish well inside the smoke deadline. malloc doubles as the
  # regression pin for the spec-specialization renaming fix.
  ROWS=(
    "ralist:Len:91:3:3"
    "stablesort:Sorted:161:1:6"
    "subvsolve:Acyclic:264:2:26"
    "malloc:Alloc:71:2:2"
  )
fi

cargo build --release -p dsolve >/dev/null 2>&1 || {
  echo "run_figure10.sh: cargo build failed" >&2
  exit 3
}

echo "Fig. 10 reproduction (per-row budget: ${BUDGET}s; jobs: ${JOBS:-per-CPU}; paper numbers in brackets)"
printf '%-12s %-22s %s\n' "Program" "Property" "Result"
FAIL=0
for row in "${ROWS[@]}"; do
  IFS=: read -r name prop ploc pann pt <<<"$row"
  out=$(./target/release/dsolve "benchmarks/$name.ml" --timeout "$BUDGET" --stats "${JOBS_FLAG[@]}" 2>&1)
  status=$(echo "$out" | grep -oE "UNSAFE|UNKNOWN|SAFE" | head -1)
  stats=$(echo "$out" | grep -oE "loc=[0-9]+ annotations=[0-9]+.*time=[0-9.]+s" | head -1)
  [ -z "$status" ] && status="ERROR"
  [ "$status" != "SAFE" ] && FAIL=1
  printf '%-12s %-22s %s  %s  [paper: %s LOC, %s ann, %ss]\n' \
    "$name" "$prop" "$status" "$stats" "$ploc" "$pann" "$pt"
done
if [ "$SMOKE" = 1 ] && [ "$FAIL" = 1 ]; then
  echo "run_figure10.sh: smoke check failed" >&2
  exit 1
fi
