//! Typed abstract syntax produced by inference.
//!
//! Every node carries its (zonked) ML type; variable occurrences record
//! the instantiation of their scheme's quantified variables, which is what
//! the liquid phase needs to build refinement templates at [L-INST] sites.

use crate::ast::PrimOp;
use crate::types::{MlType, Scheme};
use dsolve_logic::Symbol;

/// A typed expression.
#[derive(Clone, Debug, PartialEq)]
pub struct TExpr {
    /// The expression's ML type.
    pub ty: MlType,
    /// The node.
    pub kind: TExprKind,
}

/// Typed expression nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum TExprKind {
    /// Variable occurrence with the types instantiating its scheme's
    /// quantified variables (in scheme order).
    Var(Symbol, Vec<MlType>),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Unit.
    Unit,
    /// Primitive operation.
    Prim(PrimOp, Box<TExpr>, Box<TExpr>),
    /// Negation.
    Neg(Box<TExpr>),
    /// Boolean not.
    Not(Box<TExpr>),
    /// Lambda.
    Lam(Symbol, Box<TExpr>),
    /// Application.
    App(Box<TExpr>, Box<TExpr>),
    /// Generalizing let; the scheme is the generalized type of the binder.
    Let(Symbol, Scheme, Box<TExpr>, Box<TExpr>),
    /// (Mutually) recursive let group.
    LetRec(Vec<TBind>, Box<TExpr>),
    /// Tuple destructuring let.
    LetTuple(Vec<Symbol>, Box<TExpr>, Box<TExpr>),
    /// Conditional.
    If(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// Tuple construction.
    Tuple(Vec<TExpr>),
    /// Constructor application; the types instantiate the datatype's
    /// parameters.
    Ctor(Symbol, Vec<MlType>, Vec<TExpr>),
    /// Pattern match (one arm per constructor, declaration order).
    Match(Box<TExpr>, Vec<TArm>),
    /// `assert e` with its source line.
    Assert(Box<TExpr>, u32),
}

/// A binding in a recursive group.
#[derive(Clone, Debug, PartialEq)]
pub struct TBind {
    /// Bound name.
    pub name: Symbol,
    /// Generalized scheme.
    pub scheme: Scheme,
    /// Right-hand side.
    pub rhs: TExpr,
}

/// Applies a type-variable substitution throughout a typed tree:
/// node types, variable-occurrence instantiations, constructor type
/// arguments, and binding schemes. Used to *specialize* a binding whose
/// inferred scheme is more general than its declared interface.
pub fn apply_types(e: &mut TExpr, map: &std::collections::HashMap<u32, MlType>) {
    e.ty = e.ty.apply(map);
    match &mut e.kind {
        TExprKind::Var(_, inst) => {
            for t in inst {
                *t = t.apply(map);
            }
        }
        TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
        TExprKind::Prim(_, a, b) => {
            apply_types(a, map);
            apply_types(b, map);
        }
        TExprKind::Neg(a) | TExprKind::Not(a) => apply_types(a, map),
        TExprKind::Lam(_, b) => apply_types(b, map),
        TExprKind::App(f, a) => {
            apply_types(f, map);
            apply_types(a, map);
        }
        TExprKind::Let(_, scheme, rhs, body) => {
            scheme.ty = scheme.ty.apply(map);
            scheme.vars.retain(|v| !map.contains_key(v));
            apply_types(rhs, map);
            apply_types(body, map);
        }
        TExprKind::LetRec(binds, body) => {
            for b in binds {
                b.scheme.ty = b.scheme.ty.apply(map);
                b.scheme.vars.retain(|v| !map.contains_key(v));
                apply_types(&mut b.rhs, map);
            }
            apply_types(body, map);
        }
        TExprKind::LetTuple(_, rhs, body) => {
            apply_types(rhs, map);
            apply_types(body, map);
        }
        TExprKind::If(c, t, f) => {
            apply_types(c, map);
            apply_types(t, map);
            apply_types(f, map);
        }
        TExprKind::Tuple(es) => {
            for x in es {
                apply_types(x, map);
            }
        }
        TExprKind::Ctor(_, targs, args) => {
            for t in targs {
                *t = t.apply(map);
            }
            for a in args {
                apply_types(a, map);
            }
        }
        TExprKind::Match(s, arms) => {
            apply_types(s, map);
            for a in arms {
                apply_types(&mut a.body, map);
            }
        }
        TExprKind::Assert(a, _) => apply_types(a, map),
    }
}

/// A typed match arm.
#[derive(Clone, Debug, PartialEq)]
pub struct TArm {
    /// Constructor.
    pub ctor: Symbol,
    /// Field binders (all named).
    pub binders: Vec<Symbol>,
    /// Arm body.
    pub body: TExpr,
}

/// A typed top-level binding group.
#[derive(Clone, Debug, PartialEq)]
pub struct TTopLet {
    /// Whether the group is recursive.
    pub recursive: bool,
    /// Bindings.
    pub binds: Vec<TBind>,
    /// Source line.
    pub line: u32,
}

/// A fully typed program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TProgram {
    /// Binding groups in source order.
    pub lets: Vec<TTopLet>,
}

impl TProgram {
    /// Finds the scheme of a top-level name.
    pub fn scheme_of(&self, name: Symbol) -> Option<&Scheme> {
        self.lets
            .iter()
            .flat_map(|l| l.binds.iter())
            .find(|b| b.name == name)
            .map(|b| &b.scheme)
    }
}
