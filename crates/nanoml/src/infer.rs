//! Hindley–Milner type inference (Algorithm W) for NanoML.
//!
//! Produces fully annotated [`TExpr`] trees. Recursive bindings are typed
//! with Milner's rule (monomorphic recursion) and then generalized — the
//! liquid phase re-instantiates the generalized scheme at recursive call
//! sites (Mycroft's rule, §4.3 of the paper), which stays decidable
//! because the ML derivation was already fixed here.

use crate::ast::{Expr, Pattern, PrimOp, Program};
use crate::texpr::{TArm, TBind, TExpr, TExprKind, TProgram, TTopLet};
use crate::types::{DataEnv, MlType, Scheme};
use dsolve_logic::Symbol;
use std::collections::HashMap;
use std::fmt;

/// A type inference error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

/// The value environment: schemes for in-scope variables.
pub type TypeEnv = HashMap<Symbol, Scheme>;

/// Infers types for a resolved program.
///
/// `prelude` supplies schemes for built-in functions (map primitives,
/// `random`, etc.).
///
/// # Errors
///
/// Returns the first unification or scoping error encountered.
pub fn infer_program(
    prog: &Program,
    data: &DataEnv,
    prelude: &TypeEnv,
) -> Result<TProgram, TypeError> {
    let mut ctx = Infer::new(data);
    let mut env = prelude.clone();
    let mut out = TProgram::default();
    for tl in &prog.lets {
        let binds = if tl.recursive {
            ctx.infer_rec_group(
                &env,
                &tl.binds
                    .iter()
                    .map(|b| (b.name, b.body.clone()))
                    .collect::<Vec<_>>(),
            )?
        } else {
            let mut bs = Vec::new();
            for b in &tl.binds {
                let rhs = ctx.infer(&env, &b.body)?;
                let scheme = ctx.generalize(&env, &rhs.ty);
                bs.push(TBind {
                    name: b.name,
                    scheme,
                    rhs,
                });
            }
            bs
        };
        for b in &binds {
            env.insert(b.name, b.scheme.clone());
        }
        out.lets.push(TTopLet {
            recursive: tl.recursive,
            binds,
            line: tl.line,
        });
    }
    // Zonk the whole tree.
    for tl in &mut out.lets {
        for b in &mut tl.binds {
            ctx.zonk_texpr(&mut b.rhs);
            b.scheme.ty = ctx.resolve(&b.scheme.ty);
        }
    }
    Ok(out)
}

/// Infers the type of a standalone expression (for tests and specs).
pub fn infer_expr(e: &Expr, data: &DataEnv, env: &TypeEnv) -> Result<TExpr, TypeError> {
    let mut ctx = Infer::new(data);
    let mut t = ctx.infer(env, e)?;
    ctx.zonk_texpr(&mut t);
    Ok(t)
}

/// Matches a generalized scheme against a concrete occurrence type,
/// returning the instantiation of the scheme's quantified variables.
///
/// Used by the liquid phase to apply Mycroft's rule at recursive call
/// sites: the occurrence was typed monomorphically, so matching
/// reconstructs how the quantifiers specialize there.
pub fn match_instantiation(scheme: &Scheme, occurrence: &MlType) -> Option<Vec<MlType>> {
    let mut binding: HashMap<u32, MlType> = HashMap::new();
    if !match_ty(&scheme.ty, occurrence, &scheme.vars, &mut binding) {
        return None;
    }
    Some(
        scheme
            .vars
            .iter()
            .map(|v| binding.get(v).cloned().unwrap_or(MlType::Var(*v)))
            .collect(),
    )
}

fn match_ty(
    pat: &MlType,
    t: &MlType,
    quantified: &[u32],
    binding: &mut HashMap<u32, MlType>,
) -> bool {
    match (pat, t) {
        (MlType::Var(v), _) if quantified.contains(v) => match binding.get(v) {
            Some(prev) => prev == t,
            None => {
                binding.insert(*v, t.clone());
                true
            }
        },
        (MlType::Var(a), MlType::Var(b)) => a == b,
        (MlType::Int, MlType::Int)
        | (MlType::Bool, MlType::Bool)
        | (MlType::Unit, MlType::Unit) => true,
        (MlType::Arrow(a1, b1), MlType::Arrow(a2, b2)) => {
            match_ty(a1, a2, quantified, binding) && match_ty(b1, b2, quantified, binding)
        }
        (MlType::Tuple(xs), MlType::Tuple(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| match_ty(x, y, quantified, binding))
        }
        (MlType::Data(n1, xs), MlType::Data(n2, ys)) => {
            n1 == n2
                && xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| match_ty(x, y, quantified, binding))
        }
        _ => false,
    }
}

struct Infer<'a> {
    data: &'a DataEnv,
    subst: Vec<Option<MlType>>,
}

impl<'a> Infer<'a> {
    fn new(data: &'a DataEnv) -> Infer<'a> {
        Infer {
            data,
            subst: Vec::new(),
        }
    }

    fn fresh(&mut self) -> MlType {
        let v = self.subst.len() as u32;
        self.subst.push(None);
        MlType::Var(v)
    }

    /// Deeply resolves a type under the current substitution.
    fn resolve(&self, t: &MlType) -> MlType {
        match t {
            MlType::Var(v) => match self.subst.get(*v as usize).and_then(|s| s.as_ref()) {
                Some(inner) => self.resolve(&inner.clone()),
                None => t.clone(),
            },
            MlType::Int | MlType::Bool | MlType::Unit => t.clone(),
            MlType::Arrow(a, b) => {
                MlType::Arrow(Box::new(self.resolve(a)), Box::new(self.resolve(b)))
            }
            MlType::Tuple(ts) => MlType::Tuple(ts.iter().map(|t| self.resolve(t)).collect()),
            MlType::Data(n, ts) => {
                MlType::Data(*n, ts.iter().map(|t| self.resolve(t)).collect())
            }
        }
    }

    fn unify(&mut self, a: &MlType, b: &MlType) -> Result<(), TypeError> {
        let a = self.resolve(a);
        let b = self.resolve(b);
        match (&a, &b) {
            (MlType::Var(v), _) => self.bind(*v, &b),
            (_, MlType::Var(v)) => self.bind(*v, &a),
            (MlType::Int, MlType::Int)
            | (MlType::Bool, MlType::Bool)
            | (MlType::Unit, MlType::Unit) => Ok(()),
            (MlType::Arrow(a1, b1), MlType::Arrow(a2, b2)) => {
                self.unify(a1, a2)?;
                self.unify(b1, b2)
            }
            (MlType::Tuple(xs), MlType::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            (MlType::Data(n1, xs), MlType::Data(n2, ys))
                if n1 == n2 && xs.len() == ys.len() =>
            {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y)?;
                }
                Ok(())
            }
            _ => Err(TypeError(format!("cannot unify `{a}` with `{b}`"))),
        }
    }

    fn bind(&mut self, v: u32, t: &MlType) -> Result<(), TypeError> {
        if let MlType::Var(w) = t {
            if *w == v {
                return Ok(());
            }
        }
        if t.free_vars().contains(&v) {
            return Err(TypeError(format!(
                "occurs check failed: 't{v} in `{t}`"
            )));
        }
        self.subst[v as usize] = Some(t.clone());
        Ok(())
    }

    fn instantiate(&mut self, scheme: &Scheme) -> (MlType, Vec<MlType>) {
        let inst: Vec<MlType> = scheme.vars.iter().map(|_| self.fresh()).collect();
        let map: HashMap<u32, MlType> = scheme
            .vars
            .iter()
            .copied()
            .zip(inst.iter().cloned())
            .collect();
        (scheme.ty.apply(&map), inst)
    }

    fn generalize(&self, env: &TypeEnv, ty: &MlType) -> Scheme {
        let ty = self.resolve(ty);
        let mut env_vars: Vec<u32> = Vec::new();
        for s in env.values() {
            env_vars.extend(self.resolve(&s.ty).free_vars());
        }
        let vars: Vec<u32> = ty
            .free_vars()
            .into_iter()
            .filter(|v| !env_vars.contains(v))
            .collect();
        Scheme { vars, ty }
    }

    fn infer(&mut self, env: &TypeEnv, e: &Expr) -> Result<TExpr, TypeError> {
        match e {
            Expr::Var(x) => {
                let scheme = env
                    .get(x)
                    .ok_or_else(|| TypeError(format!("unbound variable `{x}`")))?
                    .clone();
                let (ty, inst) = self.instantiate(&scheme);
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Var(*x, inst),
                })
            }
            Expr::Int(v) => Ok(TExpr {
                ty: MlType::Int,
                kind: TExprKind::Int(*v),
            }),
            Expr::Bool(b) => Ok(TExpr {
                ty: MlType::Bool,
                kind: TExprKind::Bool(*b),
            }),
            Expr::Unit => Ok(TExpr {
                ty: MlType::Unit,
                kind: TExprKind::Unit,
            }),
            Expr::Prim(op, a, b) => {
                let ta = self.infer(env, a)?;
                let tb = self.infer(env, b)?;
                let ty = match op {
                    PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Mod => {
                        self.unify(&ta.ty, &MlType::Int)?;
                        self.unify(&tb.ty, &MlType::Int)?;
                        MlType::Int
                    }
                    PrimOp::And | PrimOp::Or => {
                        self.unify(&ta.ty, &MlType::Bool)?;
                        self.unify(&tb.ty, &MlType::Bool)?;
                        MlType::Bool
                    }
                    _ => {
                        // Polymorphic comparison.
                        self.unify(&ta.ty, &tb.ty)?;
                        MlType::Bool
                    }
                };
                Ok(TExpr {
                    ty,
                    kind: TExprKind::Prim(*op, Box::new(ta), Box::new(tb)),
                })
            }
            Expr::Neg(a) => {
                let ta = self.infer(env, a)?;
                self.unify(&ta.ty, &MlType::Int)?;
                Ok(TExpr {
                    ty: MlType::Int,
                    kind: TExprKind::Neg(Box::new(ta)),
                })
            }
            Expr::Not(a) => {
                let ta = self.infer(env, a)?;
                self.unify(&ta.ty, &MlType::Bool)?;
                Ok(TExpr {
                    ty: MlType::Bool,
                    kind: TExprKind::Not(Box::new(ta)),
                })
            }
            Expr::Lam(x, body) => {
                let dom = self.fresh();
                let mut env2 = env.clone();
                env2.insert(*x, Scheme::mono(dom.clone()));
                let tb = self.infer(&env2, body)?;
                Ok(TExpr {
                    ty: MlType::Arrow(Box::new(dom), Box::new(tb.ty.clone())),
                    kind: TExprKind::Lam(*x, Box::new(tb)),
                })
            }
            Expr::App(f, a) => {
                let tf = self.infer(env, f)?;
                let ta = self.infer(env, a)?;
                let ret = self.fresh();
                self.unify(
                    &tf.ty,
                    &MlType::Arrow(Box::new(ta.ty.clone()), Box::new(ret.clone())),
                )?;
                Ok(TExpr {
                    ty: ret,
                    kind: TExprKind::App(Box::new(tf), Box::new(ta)),
                })
            }
            Expr::Let(x, rhs, body) => {
                let trhs = self.infer(env, rhs)?;
                let scheme = self.generalize(env, &trhs.ty);
                let mut env2 = env.clone();
                env2.insert(*x, scheme.clone());
                let tbody = self.infer(&env2, body)?;
                Ok(TExpr {
                    ty: tbody.ty.clone(),
                    kind: TExprKind::Let(*x, scheme, Box::new(trhs), Box::new(tbody)),
                })
            }
            Expr::LetRec(x, rhs, body) => {
                let binds = self.infer_rec_group(env, &[(*x, (**rhs).clone())])?;
                let mut env2 = env.clone();
                for b in &binds {
                    env2.insert(b.name, b.scheme.clone());
                }
                let tbody = self.infer(&env2, body)?;
                Ok(TExpr {
                    ty: tbody.ty.clone(),
                    kind: TExprKind::LetRec(binds, Box::new(tbody)),
                })
            }
            Expr::LetTuple(binders, rhs, body) => {
                let trhs = self.infer(env, rhs)?;
                let parts: Vec<MlType> = binders.iter().map(|_| self.fresh()).collect();
                self.unify(&trhs.ty, &MlType::Tuple(parts.clone()))?;
                let mut env2 = env.clone();
                let names: Vec<Symbol> = binders
                    .iter()
                    .map(|b| b.expect("resolve materializes binders"))
                    .collect();
                for (n, t) in names.iter().zip(&parts) {
                    env2.insert(*n, Scheme::mono(t.clone()));
                }
                let tbody = self.infer(&env2, body)?;
                Ok(TExpr {
                    ty: tbody.ty.clone(),
                    kind: TExprKind::LetTuple(names, Box::new(trhs), Box::new(tbody)),
                })
            }
            Expr::If(c, t, f) => {
                let tc = self.infer(env, c)?;
                self.unify(&tc.ty, &MlType::Bool)?;
                let tt = self.infer(env, t)?;
                let tf = self.infer(env, f)?;
                self.unify(&tt.ty, &tf.ty)?;
                Ok(TExpr {
                    ty: tt.ty.clone(),
                    kind: TExprKind::If(Box::new(tc), Box::new(tt), Box::new(tf)),
                })
            }
            Expr::Tuple(es) => {
                let ts: Vec<TExpr> = es
                    .iter()
                    .map(|e| self.infer(env, e))
                    .collect::<Result<_, _>>()?;
                Ok(TExpr {
                    ty: MlType::Tuple(ts.iter().map(|t| t.ty.clone()).collect()),
                    kind: TExprKind::Tuple(ts),
                })
            }
            Expr::Ctor(name, args) => {
                let sig = self
                    .data
                    .ctor(*name)
                    .ok_or_else(|| TypeError(format!("unknown constructor `{name}`")))?
                    .clone();
                let targs: Vec<MlType> = (0..sig.arity_params).map(|_| self.fresh()).collect();
                let map: HashMap<u32, MlType> = (0..sig.arity_params as u32)
                    .zip(targs.iter().cloned())
                    .collect();
                let targs_exprs: Vec<TExpr> = args
                    .iter()
                    .map(|a| self.infer(env, a))
                    .collect::<Result<_, _>>()?;
                for (field, arg) in sig.fields.iter().zip(&targs_exprs) {
                    self.unify(&field.apply(&map), &arg.ty)?;
                }
                Ok(TExpr {
                    ty: MlType::Data(sig.datatype, targs),
                    kind: TExprKind::Ctor(*name, vec![], targs_exprs),
                })
            }
            Expr::Match(scrut, arms) => {
                let tscrut = self.infer(env, scrut)?;
                let first = match &arms[0].pattern {
                    Pattern::Ctor { name, .. } => *name,
                    _ => return Err(TypeError("unresolved match pattern".into())),
                };
                let sig = self
                    .data
                    .ctor(first)
                    .ok_or_else(|| TypeError(format!("unknown constructor `{first}`")))?
                    .clone();
                let targs: Vec<MlType> = (0..sig.arity_params).map(|_| self.fresh()).collect();
                self.unify(&tscrut.ty, &MlType::Data(sig.datatype, targs.clone()))?;
                let map: HashMap<u32, MlType> = (0..sig.arity_params as u32)
                    .zip(targs.iter().cloned())
                    .collect();
                let result = self.fresh();
                let mut tarms = Vec::new();
                for arm in arms {
                    let Pattern::Ctor { name, binders } = &arm.pattern else {
                        return Err(TypeError("unresolved match pattern".into()));
                    };
                    let asig = self
                        .data
                        .ctor(*name)
                        .ok_or_else(|| TypeError(format!("unknown constructor `{name}`")))?
                        .clone();
                    let mut env2 = env.clone();
                    let names: Vec<Symbol> = binders
                        .iter()
                        .map(|b| b.expect("resolve materializes binders"))
                        .collect();
                    for (n, f) in names.iter().zip(&asig.fields) {
                        env2.insert(*n, Scheme::mono(f.apply(&map)));
                    }
                    let tbody = self.infer(&env2, &arm.body)?;
                    self.unify(&tbody.ty, &result)?;
                    tarms.push(TArm {
                        ctor: *name,
                        binders: names,
                        body: tbody,
                    });
                }
                Ok(TExpr {
                    ty: result,
                    kind: TExprKind::Match(Box::new(tscrut), tarms),
                })
            }
            Expr::Assert(a, line) => {
                let ta = self.infer(env, a)?;
                self.unify(&ta.ty, &MlType::Bool)?;
                Ok(TExpr {
                    ty: MlType::Unit,
                    kind: TExprKind::Assert(Box::new(ta), *line),
                })
            }
        }
    }

    fn infer_rec_group(
        &mut self,
        env: &TypeEnv,
        binds: &[(Symbol, Expr)],
    ) -> Result<Vec<TBind>, TypeError> {
        let mut env2 = env.clone();
        let monos: Vec<MlType> = binds.iter().map(|_| self.fresh()).collect();
        for ((name, _), m) in binds.iter().zip(&monos) {
            env2.insert(*name, Scheme::mono(m.clone()));
        }
        let mut rhss = Vec::new();
        for ((_, rhs), m) in binds.iter().zip(&monos) {
            let trhs = self.infer(&env2, rhs)?;
            self.unify(&trhs.ty, m)?;
            rhss.push(trhs);
        }
        Ok(binds
            .iter()
            .zip(rhss)
            .map(|((name, _), rhs)| {
                let scheme = self.generalize(env, &rhs.ty);
                TBind {
                    name: *name,
                    scheme,
                    rhs,
                }
            })
            .collect())
    }

    /// Deeply resolves all types in a typed tree, and fills in the
    /// datatype instantiation on constructors (recorded lazily).
    fn zonk_texpr(&self, t: &mut TExpr) {
        t.ty = self.resolve(&t.ty);
        match &mut t.kind {
            TExprKind::Var(_, inst) => {
                for i in inst {
                    *i = self.resolve(i);
                }
            }
            TExprKind::Int(_) | TExprKind::Bool(_) | TExprKind::Unit => {}
            TExprKind::Prim(_, a, b) => {
                self.zonk_texpr(a);
                self.zonk_texpr(b);
            }
            TExprKind::Neg(a) | TExprKind::Not(a) => self.zonk_texpr(a),
            TExprKind::Lam(_, b) => self.zonk_texpr(b),
            TExprKind::App(f, a) => {
                self.zonk_texpr(f);
                self.zonk_texpr(a);
            }
            TExprKind::Let(_, scheme, rhs, body) => {
                scheme.ty = self.resolve(&scheme.ty);
                self.zonk_texpr(rhs);
                self.zonk_texpr(body);
            }
            TExprKind::LetRec(binds, body) => {
                for b in binds {
                    b.scheme.ty = self.resolve(&b.scheme.ty);
                    self.zonk_texpr(&mut b.rhs);
                }
                self.zonk_texpr(body);
            }
            TExprKind::LetTuple(_, rhs, body) => {
                self.zonk_texpr(rhs);
                self.zonk_texpr(body);
            }
            TExprKind::If(c, a, b) => {
                self.zonk_texpr(c);
                self.zonk_texpr(a);
                self.zonk_texpr(b);
            }
            TExprKind::Tuple(es) => {
                for e in es {
                    self.zonk_texpr(e);
                }
            }
            TExprKind::Ctor(_, targs, args) => {
                // The node type is Data(dt, params): record them.
                if targs.is_empty() {
                    if let MlType::Data(_, params) = &t.ty {
                        *targs = params.clone();
                    }
                }
                for a in args {
                    self.zonk_texpr(a);
                }
            }
            TExprKind::Match(s, arms) => {
                self.zonk_texpr(s);
                for a in arms {
                    self.zonk_texpr(&mut a.body);
                }
            }
            TExprKind::Assert(a, _) => self.zonk_texpr(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_str, parse_program};
    use crate::resolve::{resolve_expr, resolve_program};

    fn setup(src: &str) -> (Program, DataEnv) {
        let prog = parse_program(src).unwrap();
        let mut data = DataEnv::with_builtins();
        data.add_program(&prog.datatypes).unwrap();
        let prog = resolve_program(&prog, &data).unwrap();
        (prog, data)
    }

    fn infer_src(src: &str) -> TProgram {
        let (prog, data) = setup(src);
        infer_program(&prog, &data, &TypeEnv::new()).unwrap()
    }

    #[test]
    fn infers_identity_polymorphically() {
        let tp = infer_src("let id x = x");
        let s = tp.scheme_of(Symbol::new("id")).unwrap();
        assert_eq!(s.vars.len(), 1);
        assert!(matches!(&s.ty, MlType::Arrow(a, b) if a == b));
    }

    #[test]
    fn infers_range_type() {
        let tp = infer_src(
            "let rec range i j = if i > j then [] else i :: range (i + 1) j",
        );
        let s = tp.scheme_of(Symbol::new("range")).unwrap();
        assert_eq!(
            s.ty.to_string(),
            "(int -> (int -> (int) list))"
        );
        assert!(s.vars.is_empty());
    }

    #[test]
    fn infers_insert_sort_types() {
        let tp = infer_src(
            r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys

let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
"#,
        );
        let s = tp.scheme_of(Symbol::new("insertsort")).unwrap();
        assert_eq!(s.vars.len(), 1);
        let MlType::Arrow(a, b) = &s.ty else { panic!() };
        assert_eq!(a, b);
        assert!(matches!(&**a, MlType::Data(n, _) if *n == Symbol::new("list")));
    }

    #[test]
    fn infers_datatype_ctors() {
        let tp = infer_src(
            r#"
type 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
let singleton x = Node (Leaf, x, Leaf)
"#,
        );
        let s = tp.scheme_of(Symbol::new("singleton")).unwrap();
        assert_eq!(s.vars.len(), 1);
        let MlType::Arrow(_, r) = &s.ty else { panic!() };
        assert!(matches!(&**r, MlType::Data(n, _) if *n == Symbol::new("tree")));
    }

    #[test]
    fn rejects_ill_typed_programs() {
        let (prog, data) = setup("let bad = 1 + true");
        assert!(infer_program(&prog, &data, &TypeEnv::new()).is_err());
    }

    #[test]
    fn rejects_occurs_check() {
        let (prog, data) = setup("let selfapp f = f f");
        assert!(infer_program(&prog, &data, &TypeEnv::new()).is_err());
    }

    #[test]
    fn var_occurrences_record_instantiations() {
        let tp = infer_src("let id x = x\nlet use = id 3");
        let TExprKind::App(f, _) = &tp.lets[1].binds[0].rhs.kind else {
            panic!()
        };
        let TExprKind::Var(name, inst) = &f.kind else { panic!() };
        assert_eq!(*name, Symbol::new("id"));
        assert_eq!(inst, &vec![MlType::Int]);
    }

    #[test]
    fn mutual_recursion_group() {
        let tp = infer_src(
            "let rec even n = if n = 0 then true else odd (n - 1)\nand odd n = if n = 0 then false else even (n - 1)",
        );
        assert_eq!(tp.lets[0].binds.len(), 2);
        for b in &tp.lets[0].binds {
            assert_eq!(b.scheme.ty.to_string(), "(int -> bool)");
        }
    }

    #[test]
    fn match_instantiation_reconstructs() {
        let scheme = Scheme {
            vars: vec![0],
            ty: MlType::Arrow(
                Box::new(MlType::Var(0)),
                Box::new(MlType::list(MlType::Var(0))),
            ),
        };
        let occ = MlType::Arrow(Box::new(MlType::Int), Box::new(MlType::list(MlType::Int)));
        assert_eq!(match_instantiation(&scheme, &occ), Some(vec![MlType::Int]));
        // Conflicting instantiation fails.
        let bad = MlType::Arrow(Box::new(MlType::Int), Box::new(MlType::list(MlType::Bool)));
        assert_eq!(match_instantiation(&scheme, &bad), None);
    }

    #[test]
    fn ctor_records_type_args_after_zonk() {
        let tp = infer_src("let l = [1; 2]");
        let TExprKind::Ctor(_, targs, _) = &tp.lets[0].binds[0].rhs.kind else {
            panic!()
        };
        assert_eq!(targs, &vec![MlType::Int]);
    }

    #[test]
    fn standalone_expr_inference() {
        let data = DataEnv::with_builtins();
        let e = parse_expr_str("fun x -> x + 1").unwrap();
        let e = resolve_expr(&e, &data).unwrap();
        let t = infer_expr(&e, &data, &TypeEnv::new()).unwrap();
        assert_eq!(t.ty.to_string(), "(int -> int)");
    }
}
