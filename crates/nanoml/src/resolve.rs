//! Post-parse resolution: constructor arities, match normalization.
//!
//! The paper's `match-with` rule assumes exactly one arm per constructor,
//! each binding plain variables. This pass normalizes parsed programs to
//! that shape:
//!
//! * constructor applications `C (e1, ..., en)` parsed as a single tuple
//!   argument are spread to `n` fields when the declared arity is `n`;
//! * tuple-pattern matches become `LetTuple`;
//! * catch-all arms (`_ -> e` / `x -> e`) are expanded into one arm per
//!   missing constructor (a named catch-all first binds the scrutinee);
//! * arms are sorted into declaration order and checked for exhaustiveness
//!   and duplicates;
//! * every `_` binder is materialized as a fresh variable.

use crate::ast::{Arm, Expr, Pattern, Program, TopBind, TopLet};
use crate::types::DataEnv;
use dsolve_logic::Symbol;
use std::fmt;

/// An error found during resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveError(pub String);

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "resolve error: {}", self.0)
    }
}

impl std::error::Error for ResolveError {}

/// Resolves a whole program in place.
pub fn resolve_program(prog: &Program, env: &DataEnv) -> Result<Program, ResolveError> {
    let mut out = prog.clone();
    for tl in &mut out.lets {
        let TopLet { binds, .. } = tl;
        for TopBind { body, .. } in binds {
            *body = resolve_expr(body, env)?;
        }
    }
    Ok(out)
}

/// Resolves a single expression.
pub fn resolve_expr(e: &Expr, env: &DataEnv) -> Result<Expr, ResolveError> {
    Ok(match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) | Expr::Unit => e.clone(),
        Expr::Prim(op, a, b) => Expr::Prim(
            *op,
            Box::new(resolve_expr(a, env)?),
            Box::new(resolve_expr(b, env)?),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(resolve_expr(a, env)?)),
        Expr::Not(a) => Expr::Not(Box::new(resolve_expr(a, env)?)),
        Expr::Lam(x, b) => Expr::Lam(*x, Box::new(resolve_expr(b, env)?)),
        Expr::App(f, a) => Expr::App(
            Box::new(resolve_expr(f, env)?),
            Box::new(resolve_expr(a, env)?),
        ),
        Expr::Let(x, rhs, body) => Expr::Let(
            *x,
            Box::new(resolve_expr(rhs, env)?),
            Box::new(resolve_expr(body, env)?),
        ),
        Expr::LetRec(x, rhs, body) => Expr::LetRec(
            *x,
            Box::new(resolve_expr(rhs, env)?),
            Box::new(resolve_expr(body, env)?),
        ),
        Expr::LetTuple(bs, rhs, body) => Expr::LetTuple(
            bs.iter()
                .map(|b| Some(b.unwrap_or_else(|| Symbol::fresh("unused"))))
                .collect(),
            Box::new(resolve_expr(rhs, env)?),
            Box::new(resolve_expr(body, env)?),
        ),
        Expr::If(c, t, f) => Expr::If(
            Box::new(resolve_expr(c, env)?),
            Box::new(resolve_expr(t, env)?),
            Box::new(resolve_expr(f, env)?),
        ),
        Expr::Tuple(es) => Expr::Tuple(
            es.iter()
                .map(|e| resolve_expr(e, env))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Ctor(name, args) => {
            let sig = env
                .ctor(*name)
                .ok_or_else(|| ResolveError(format!("unknown constructor `{name}`")))?;
            let arity = sig.fields.len();
            let mut args: Vec<Expr> = args
                .iter()
                .map(|a| resolve_expr(a, env))
                .collect::<Result<_, _>>()?;
            // Spread a single tuple argument across a multi-field ctor.
            if arity > 1 && args.len() == 1 {
                if let Expr::Tuple(es) = &args[0] {
                    if es.len() == arity {
                        args = es.clone();
                    }
                }
            }
            if args.len() != arity {
                return Err(ResolveError(format!(
                    "constructor `{name}` expects {arity} argument(s), got {}",
                    args.len()
                )));
            }
            Expr::Ctor(*name, args)
        }
        Expr::Match(scrut, arms) => resolve_match(scrut, arms, env)?,
        Expr::Assert(a, line) => Expr::Assert(Box::new(resolve_expr(a, env)?), *line),
    })
}

fn resolve_match(scrut: &Expr, arms: &[Arm], env: &DataEnv) -> Result<Expr, ResolveError> {
    let scrut = resolve_expr(scrut, env)?;
    if arms.is_empty() {
        return Err(ResolveError("empty match".into()));
    }
    // Irrefutable single-arm matches.
    match (&arms[0].pattern, arms.len()) {
        (Pattern::Tuple(bs), 1) => {
            let body = resolve_expr(&arms[0].body, env)?;
            return Ok(Expr::LetTuple(
                bs.iter()
                    .map(|b| Some(b.unwrap_or_else(|| Symbol::fresh("unused"))))
                    .collect(),
                Box::new(scrut),
                Box::new(body),
            ));
        }
        (Pattern::Any(b), 1) => {
            let body = resolve_expr(&arms[0].body, env)?;
            let name = b.unwrap_or_else(|| Symbol::fresh("unused"));
            return Ok(Expr::Let(name, Box::new(scrut), Box::new(body)));
        }
        _ => {}
    }
    // Constructor match: identify the datatype from the first ctor arm.
    let first_ctor = arms
        .iter()
        .find_map(|a| match &a.pattern {
            Pattern::Ctor { name, .. } => Some(*name),
            _ => None,
        })
        .ok_or_else(|| ResolveError("match arms mix tuples and wildcards".into()))?;
    let datatype = env
        .ctor(first_ctor)
        .ok_or_else(|| ResolveError(format!("unknown constructor `{first_ctor}`")))?
        .datatype;
    let decl = env.decl(datatype).expect("ctor's datatype exists").clone();

    // If a named catch-all exists, bind the scrutinee first so expanded
    // arms can refer to it.
    let catchall = arms.iter().position(|a| matches!(a.pattern, Pattern::Any(_)));
    if let Some(ix) = catchall {
        if ix != arms.len() - 1 {
            return Err(ResolveError(
                "catch-all arm must be last in a match".into(),
            ));
        }
        if let Pattern::Any(Some(x)) = arms[ix].pattern {
            // Rebind: let x = scrut in match x with ...
            let mut renamed = arms.to_vec();
            renamed[ix].pattern = Pattern::Any(None);
            let inner = resolve_match(&Expr::Var(x), &renamed, env)?;
            return Ok(Expr::Let(x, Box::new(scrut), Box::new(inner)));
        }
    }

    // Collect one arm per constructor, expanding the catch-all.
    let mut per_ctor: Vec<Option<Arm>> = vec![None; decl.ctor_names.len()];
    for arm in arms {
        match &arm.pattern {
            Pattern::Ctor { name, binders } => {
                let sig = env
                    .ctor(*name)
                    .ok_or_else(|| ResolveError(format!("unknown constructor `{name}`")))?;
                if sig.datatype != datatype {
                    return Err(ResolveError(format!(
                        "constructor `{name}` does not belong to `{datatype}`"
                    )));
                }
                if binders.len() != sig.fields.len() {
                    return Err(ResolveError(format!(
                        "constructor `{name}` has {} field(s), pattern binds {}",
                        sig.fields.len(),
                        binders.len()
                    )));
                }
                if per_ctor[sig.index].is_some() {
                    return Err(ResolveError(format!(
                        "duplicate arm for constructor `{name}`"
                    )));
                }
                per_ctor[sig.index] = Some(Arm {
                    pattern: Pattern::Ctor {
                        name: *name,
                        binders: binders
                            .iter()
                            .map(|b| Some(b.unwrap_or_else(|| Symbol::fresh("unused"))))
                            .collect(),
                    },
                    body: resolve_expr(&arm.body, env)?,
                });
            }
            Pattern::Any(None) => {
                for (i, slot) in per_ctor.iter_mut().enumerate() {
                    if slot.is_none() {
                        let arity = decl.ctor_fields[i].len();
                        *slot = Some(Arm {
                            pattern: Pattern::Ctor {
                                name: decl.ctor_names[i],
                                binders: (0..arity)
                                    .map(|_| Some(Symbol::fresh("unused")))
                                    .collect(),
                            },
                            body: resolve_expr(&arm.body, env)?,
                        });
                    }
                }
            }
            Pattern::Any(Some(_)) => unreachable!("handled above"),
            Pattern::Tuple(_) => {
                return Err(ResolveError(
                    "tuple pattern cannot appear among constructor arms".into(),
                ))
            }
        }
    }
    let mut final_arms = Vec::new();
    for (i, slot) in per_ctor.into_iter().enumerate() {
        match slot {
            Some(a) => final_arms.push(a),
            None => {
                return Err(ResolveError(format!(
                    "non-exhaustive match: missing constructor `{}`",
                    decl.ctor_names[i]
                )))
            }
        }
    }
    Ok(Expr::Match(Box::new(scrut), final_arms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_str, parse_program};

    fn env_with(src: &str) -> DataEnv {
        let prog = parse_program(src).unwrap();
        let mut env = DataEnv::with_builtins();
        env.add_program(&prog.datatypes).unwrap();
        env
    }

    #[test]
    fn spreads_ctor_tuple_args() {
        let env = env_with("type t = N of int * int");
        let e = parse_expr_str("N (1, 2)").unwrap();
        let r = resolve_expr(&e, &env).unwrap();
        let Expr::Ctor(_, args) = r else { panic!() };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn match_arms_sorted_and_exhaustive() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match l with x :: xs -> 1 | [] -> 0").unwrap();
        let r = resolve_expr(&e, &env).unwrap();
        let Expr::Match(_, arms) = r else { panic!() };
        // Declaration order: Nil first.
        let Pattern::Ctor { name, .. } = &arms[0].pattern else { panic!() };
        assert_eq!(*name, Symbol::new("Nil"));
    }

    #[test]
    fn wildcard_expands_to_missing_ctors() {
        let env = env_with("type c = R | B | G");
        let e = parse_expr_str("match x with R -> 1 | _ -> 0").unwrap();
        let r = resolve_expr(&e, &env).unwrap();
        let Expr::Match(_, arms) = r else { panic!() };
        assert_eq!(arms.len(), 3);
    }

    #[test]
    fn named_catchall_binds_scrutinee() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match f y with x :: xs -> x | other -> 0").unwrap();
        let r = resolve_expr(&e, &env).unwrap();
        assert!(matches!(r, Expr::Let(name, _, _) if name == Symbol::new("other")));
    }

    #[test]
    fn non_exhaustive_rejected() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match l with x :: xs -> 1").unwrap();
        assert!(resolve_expr(&e, &env).is_err());
    }

    #[test]
    fn duplicate_arm_rejected() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match l with [] -> 0 | [] -> 1 | x :: y -> 2").unwrap();
        assert!(resolve_expr(&e, &env).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match l with Cons x -> 0 | [] -> 1").unwrap();
        assert!(resolve_expr(&e, &env).is_err());
    }

    #[test]
    fn tuple_match_becomes_let_tuple() {
        let env = DataEnv::with_builtins();
        let e = parse_expr_str("match p with (a, b) -> a + b").unwrap();
        let r = resolve_expr(&e, &env).unwrap();
        assert!(matches!(r, Expr::LetTuple(_, _, _)));
    }
}
