//! Seeded, deterministic generation of NanoML datatype programs for the
//! differential verification fleet (`dsolve-fleet`).
//!
//! Every generated program is **oracle-aware**: its assertions are built
//! against values the big-step [`Evaluator`] computed at generation time,
//! so the generator *knows* the ground truth before the verifier ever
//! sees the program.
//!
//! * A [`Expectation::Safe`] program's assertions all evaluate to `true`
//!   on the seeded inputs — they follow from how the program was built
//!   (the generator probes each candidate assertion with the interpreter
//!   and pins the observed value into the predicate).
//! * A [`Expectation::Violating`] program carries exactly one assertion
//!   that was deliberately perturbed (off-by-delta constant or flipped
//!   relation) so the interpreter hits `AssertFailed` on a concrete
//!   input. A verifier that reports `SAFE` for such a program has a
//!   soundness bug — the fleet catches that end to end.
//!
//! Generation is fully deterministic: the same `(fleet_seed, index)`
//! always produces byte-identical `.ml`/`.mlq`/`.quals` sources. Every
//! top-level item is rendered on a single source line, which keeps the
//! delta-debugging minimizer's unit of reduction ("drop one line")
//! aligned with the unit of meaning ("drop one function or check").

use crate::eval::{builtin_env, EvalError, Evaluator, Value};
use crate::infer::{infer_program, TypeEnv};
use crate::parser::{parse_expr_str, parse_program};
use crate::resolve::{resolve_expr, resolve_program};
use crate::types::DataEnv;
use std::fmt;

/// A tiny splitmix64 PRNG: deterministic, seedable, dependency-free.
/// Used for all fleet randomness so `--seed` fully pins a run.
#[derive(Clone, Debug)]
pub struct FleetRng(u64);

impl FleetRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> FleetRng {
        FleetRng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform integer in `lo..=hi`.
    pub fn int(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Mixes a fleet seed, program index, and retry attempt into a
/// per-program seed (FNV-style so neighbouring indices diverge fast).
fn mix_seed(fleet_seed: u64, index: u64, attempt: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ fleet_seed;
    for v in [index, attempt] {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
        h ^= h >> 29;
    }
    h
}

/// The ground truth the generator established for a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expectation {
    /// Every assertion holds on the seeded inputs (interpreter-checked
    /// at generation time). The verifier may still report `UNSAFE`
    /// (incompleteness) or `UNKNOWN` (budget) — but those are quality
    /// signals, not soundness bugs.
    Safe,
    /// One assertion fails on a concrete input; the interpreter hits
    /// `AssertFailed` at `line`. A `SAFE` verdict is a soundness bug.
    Violating {
        /// 1-based source line of the violated assertion.
        line: u32,
    },
}

/// The program-shape family a generated program was drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// First-order integer arithmetic (abs/max/clamp/sumto…).
    Arith,
    /// Built-in `list` programs (length/sum/append/rev/insertsort…).
    List,
    /// A generated binary-tree datatype with insert/size/member….
    Tree,
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Shape::Arith => "arith",
            Shape::List => "list",
            Shape::Tree => "tree",
        })
    }
}

/// One generated fleet program: NanoML source plus `.mlq`/`.quals`
/// specifications and the generator's ground-truth expectation.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// Stable name (`fleet-<seed>-<index>`), used in reports and repro
    /// file stems.
    pub name: String,
    /// The fleet seed this program came from.
    pub fleet_seed: u64,
    /// The program's index within the fleet.
    pub index: u64,
    /// Shape family.
    pub shape: Shape,
    /// Ground truth established by the interpreter at generation time.
    pub expectation: Expectation,
    /// NanoML module source (one top-level item per line).
    pub source: String,
    /// `.mlq` specification source (measures / val specs; may be empty).
    pub mlq: String,
    /// `.quals` qualifier source.
    pub quals: String,
    /// Number of `assert` checks in the program.
    pub checks: usize,
}

/// Generates the `index`-th program of the fleet seeded by `fleet_seed`.
///
/// Deterministic: identical arguments produce identical programs. The
/// generator validates its own output with the interpreter (and HM
/// inference) and retries with a derived seed on the rare internal
/// mismatch, so the result is always a well-formed, well-typed program
/// whose `expectation` is interpreter-verified.
pub fn generate(fleet_seed: u64, index: u64) -> GenProgram {
    for attempt in 0..8 {
        let mut rng = FleetRng::new(mix_seed(fleet_seed, index, attempt));
        if let Some(p) = try_generate(&mut rng, fleet_seed, index) {
            return p;
        }
    }
    // Unreachable in practice; a deterministic, trivially-correct floor.
    GenProgram {
        name: format!("fleet-{fleet_seed}-{index}"),
        fleet_seed,
        index,
        shape: Shape::Arith,
        expectation: Expectation::Safe,
        source: "let check0 = assert (0 <= 1)".into(),
        mlq: String::new(),
        quals: "qualif Nat : 0 <= VV\n".into(),
        checks: 1,
    }
}

/// Generates `count` programs for one fleet seed.
pub fn generate_fleet(fleet_seed: u64, count: u64) -> Vec<GenProgram> {
    (0..count).map(|i| generate(fleet_seed, i)).collect()
}

/// Runs a module through parse → resolve → eval and reports the first
/// assertion failure, if any.
///
/// This is the fleet's ground-truth oracle: `Ok(Some(line))` means the
/// program concretely violates the assertion on `line`, `Ok(None)` means
/// the seeded run completes cleanly.
///
/// # Errors
///
/// Parse/resolve failures and non-assertion runtime errors (stuck terms,
/// unbound names, fuel exhaustion) — a minimizer candidate that breaks
/// the program this way is *not* a reproducer.
pub fn first_assert_failure(source: &str) -> Result<Option<u32>, String> {
    let prog = parse_program(source).map_err(|e| e.to_string())?;
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).map_err(|e| e.to_string())?;
    let prog = resolve_program(&prog, &data).map_err(|e| e.to_string())?;
    match Evaluator::with_fuel(5_000_000).eval_program(&prog, &builtin_env()) {
        Ok(_) => Ok(None),
        Err(EvalError::AssertFailed(line)) => Ok(Some(line)),
        Err(e) => Err(e.to_string()),
    }
}

// ---------------------------------------------------------------------
// Function catalog
// ---------------------------------------------------------------------

/// One library function template: a name, the other templates it calls,
/// and its single-line rendering (a couple embed a random constant).
struct FunTemplate {
    name: &'static str,
    deps: &'static [&'static str],
    render: fn(&mut FleetRng) -> String,
}

const ARITH_FUNS: &[FunTemplate] = &[
    FunTemplate { name: "abs", deps: &[], render: |_| "let abs x = if x < 0 then 0 - x else x".into() },
    FunTemplate { name: "max2", deps: &[], render: |_| "let max2 a b = if a < b then b else a".into() },
    FunTemplate { name: "min2", deps: &[], render: |_| "let min2 a b = if a < b then a else b".into() },
    FunTemplate { name: "double", deps: &[], render: |_| "let double x = x + x".into() },
    FunTemplate { name: "square", deps: &[], render: |_| "let square x = x * x".into() },
    FunTemplate {
        name: "addk",
        deps: &[],
        render: |rng| format!("let addk x = x + {}", render_int(rng.int(-5, 9))),
    },
    FunTemplate {
        name: "sumto",
        deps: &[],
        render: |_| "let rec sumto n = if n <= 0 then 0 else n + sumto (n - 1)".into(),
    },
    FunTemplate {
        name: "clamp",
        deps: &["max2", "min2"],
        render: |_| "let clamp lo hi x = max2 lo (min2 hi x)".into(),
    },
];

const LIST_FUNS: &[FunTemplate] = &[
    FunTemplate {
        name: "length",
        deps: &[],
        render: |_| "let rec length xs = match xs with | [] -> 0 | x :: rest -> 1 + length rest".into(),
    },
    FunTemplate {
        name: "sum",
        deps: &[],
        render: |_| "let rec sum xs = match xs with | [] -> 0 | x :: rest -> x + sum rest".into(),
    },
    FunTemplate {
        name: "append",
        deps: &[],
        render: |_| "let rec append xs ys = match xs with | [] -> ys | x :: rest -> x :: append rest ys".into(),
    },
    FunTemplate {
        name: "rev",
        deps: &["append"],
        render: |_| "let rec rev xs = match xs with | [] -> [] | x :: rest -> append (rev rest) [x]".into(),
    },
    FunTemplate {
        name: "mapinc",
        deps: &[],
        render: |_| "let rec mapinc xs = match xs with | [] -> [] | x :: rest -> (x + 1) :: mapinc rest".into(),
    },
    FunTemplate {
        name: "insert",
        deps: &[],
        render: |_| "let rec insert x vs = match vs with | [] -> [x] | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys".into(),
    },
    FunTemplate {
        name: "insertsort",
        deps: &["insert"],
        render: |_| "let rec insertsort xs = match xs with | [] -> [] | x :: rest -> insert x (insertsort rest)".into(),
    },
    FunTemplate {
        name: "maxl",
        deps: &["max2"],
        render: |_| "let rec maxl xs d = match xs with | [] -> d | x :: rest -> max2 x (maxl rest d)".into(),
    },
    FunTemplate {
        name: "range",
        deps: &[],
        render: |_| "let rec range i j = if i > j then [] else i :: range (i + 1) j".into(),
    },
    FunTemplate {
        name: "replicate",
        deps: &[],
        render: |_| "let rec replicate n x = if n <= 0 then [] else x :: replicate (n - 1) x".into(),
    },
    FunTemplate {
        name: "memb",
        deps: &[],
        render: |_| "let rec memb x xs = match xs with | [] -> false | y :: ys -> if x = y then true else memb x ys".into(),
    },
];

const TREE_FUNS: &[FunTemplate] = &[
    FunTemplate {
        name: "tinsert",
        deps: &[],
        render: |_| "let rec tinsert x t = match t with | Lf -> Nd (x, Lf, Lf) | Nd (y, l, r) -> if x < y then Nd (y, tinsert x l, r) else Nd (y, l, tinsert x r)".into(),
    },
    FunTemplate {
        name: "build",
        deps: &["tinsert"],
        render: |_| "let rec build xs = match xs with | [] -> Lf | y :: rest -> tinsert y (build rest)".into(),
    },
    FunTemplate {
        name: "tsize",
        deps: &[],
        render: |_| "let rec tsize t = match t with | Lf -> 0 | Nd (y, l, r) -> 1 + tsize l + tsize r".into(),
    },
    FunTemplate {
        name: "tsum",
        deps: &[],
        render: |_| "let rec tsum t = match t with | Lf -> 0 | Nd (y, l, r) -> y + tsum l + tsum r".into(),
    },
    FunTemplate {
        name: "tmemb",
        deps: &[],
        render: |_| "let rec tmemb x t = match t with | Lf -> false | Nd (y, l, r) -> if x = y then true else if x < y then tmemb x l else tmemb x r".into(),
    },
    FunTemplate {
        name: "theight",
        deps: &["max2"],
        render: |_| "let rec theight t = match t with | Lf -> 0 | Nd (y, l, r) -> 1 + max2 (theight l) (theight r)".into(),
    },
];

/// Renders an integer literal; negatives go through `0 - n` because the
/// NanoML surface has no negative literals.
fn render_int(n: i64) -> String {
    if n < 0 {
        format!("(0 - {})", -n)
    } else {
        n.to_string()
    }
}

/// Renders a concrete int-list literal like `[3; 1; 4]`.
fn render_list(rng: &mut FleetRng, consts: &mut Vec<i64>) -> String {
    let len = rng.below(6);
    let mut items = Vec::new();
    for _ in 0..len {
        let v = rng.int(-9, 9);
        consts.push(v);
        items.push(render_int(v));
    }
    format!("[{}]", items.join("; "))
}

// ---------------------------------------------------------------------
// Per-shape check builders
// ---------------------------------------------------------------------

/// A candidate assertion body. Whether it is boolean- or
/// integer-valued is discovered by probing the interpreter, not tracked
/// here.
struct CheckLhs {
    text: String,
}

/// Builds an integer expression usable as an argument (parenthesized
/// when compound).
fn int_arg(rng: &mut FleetRng, has: &dyn Fn(&str) -> bool, depth: u32, consts: &mut Vec<i64>) -> String {
    if depth == 0 || rng.chance(1, 2) {
        let v = rng.int(-9, 9);
        consts.push(v);
        return render_int(v);
    }
    let mut opts: Vec<&str> = Vec::new();
    for f in ["abs", "double", "addk", "max2", "min2"] {
        if has(f) {
            opts.push(f);
        }
    }
    if opts.is_empty() {
        let v = rng.int(-9, 9);
        consts.push(v);
        return render_int(v);
    }
    let f = *rng.pick(&opts);
    let inner = match f {
        "max2" | "min2" => format!(
            "{f} {} {}",
            int_arg(rng, has, depth - 1, consts),
            int_arg(rng, has, depth - 1, consts)
        ),
        _ => format!("{f} {}", int_arg(rng, has, depth - 1, consts)),
    };
    format!("({inner})")
}

/// Builds a list expression usable as an argument.
fn list_arg(rng: &mut FleetRng, has: &dyn Fn(&str) -> bool, depth: u32, consts: &mut Vec<i64>) -> String {
    if depth == 0 || rng.chance(1, 2) {
        return render_list(rng, consts);
    }
    let mut opts: Vec<&str> = Vec::new();
    for f in ["append", "rev", "mapinc", "insert", "insertsort", "range", "replicate"] {
        if has(f) {
            opts.push(f);
        }
    }
    if opts.is_empty() {
        return render_list(rng, consts);
    }
    let f = *rng.pick(&opts);
    let inner = match f {
        "append" => format!(
            "append {} {}",
            list_arg(rng, has, depth - 1, consts),
            list_arg(rng, has, depth - 1, consts)
        ),
        "rev" | "mapinc" | "insertsort" => {
            format!("{f} {}", list_arg(rng, has, depth - 1, consts))
        }
        "insert" => format!(
            "insert {} {}",
            int_arg(rng, has, 0, consts),
            list_arg(rng, has, depth - 1, consts)
        ),
        "range" => {
            let lo = rng.int(-3, 3);
            let hi = lo + rng.int(-1, 5);
            consts.push(lo);
            consts.push(hi);
            format!("range {} {}", render_int(lo), render_int(hi))
        }
        "replicate" => {
            let n = rng.int(0, 5);
            consts.push(n);
            format!("replicate {} {}", render_int(n), int_arg(rng, has, 0, consts))
        }
        _ => unreachable!(),
    };
    format!("({inner})")
}

/// Builds one candidate check body for the shape.
fn check_lhs(
    rng: &mut FleetRng,
    shape: Shape,
    has: &dyn Fn(&str) -> bool,
    consts: &mut Vec<i64>,
) -> CheckLhs {
    match shape {
        Shape::Arith => {
            let mut opts: Vec<&str> = Vec::new();
            for f in ["abs", "max2", "min2", "double", "square", "addk", "sumto", "clamp"] {
                if has(f) {
                    opts.push(f);
                }
            }
            let f = *rng.pick(&opts);
            let text = match f {
                "max2" | "min2" => format!(
                    "{f} {} {}",
                    int_arg(rng, has, 1, consts),
                    int_arg(rng, has, 1, consts)
                ),
                "clamp" => {
                    let lo = rng.int(-5, 2);
                    let hi = lo + rng.int(0, 7);
                    consts.push(lo);
                    consts.push(hi);
                    format!(
                        "clamp {} {} {}",
                        render_int(lo),
                        render_int(hi),
                        int_arg(rng, has, 1, consts)
                    )
                }
                "sumto" => {
                    let n = rng.int(0, 7);
                    consts.push(n);
                    format!("sumto {}", render_int(n))
                }
                _ => format!("{f} {}", int_arg(rng, has, 1, consts)),
            };
            CheckLhs { text }
        }
        Shape::List => {
            let mut opts: Vec<&str> = Vec::new();
            for f in ["length", "sum", "maxl", "memb"] {
                if has(f) {
                    opts.push(f);
                }
            }
            let f = *rng.pick(&opts);
            match f {
                "maxl" => CheckLhs {
                    text: format!(
                        "maxl {} {}",
                        list_arg(rng, has, 2, consts),
                        int_arg(rng, has, 0, consts)
                    ),
                },
                "memb" => CheckLhs {
                    text: format!(
                        "memb {} {}",
                        int_arg(rng, has, 0, consts),
                        list_arg(rng, has, 2, consts)
                    ),
                },
                _ => CheckLhs {
                    text: format!("{f} {}", list_arg(rng, has, 2, consts)),
                },
            }
        }
        Shape::Tree => {
            let mut opts: Vec<&str> = Vec::new();
            for f in ["tsize", "tsum", "theight", "tmemb"] {
                if has(f) {
                    opts.push(f);
                }
            }
            let f = *rng.pick(&opts);
            let tree = format!("(build {})", list_arg(rng, has, 1, consts));
            match f {
                "tmemb" => CheckLhs {
                    text: format!("tmemb {} {tree}", int_arg(rng, has, 0, consts)),
                },
                _ => CheckLhs { text: format!("{f} {tree}") },
            }
        }
    }
}

// ---------------------------------------------------------------------
// Generation proper
// ---------------------------------------------------------------------

/// Selects a template subset with transitive dependencies, preserving
/// catalog order (so rendered programs define before use).
fn select_funs<'a>(rng: &mut FleetRng, catalog: &'a [FunTemplate]) -> Vec<&'a FunTemplate> {
    let mut wanted: Vec<bool> = catalog.iter().map(|_| rng.chance(3, 5)).collect();
    if !wanted.iter().any(|w| *w) {
        let i = rng.below(catalog.len() as u64) as usize;
        wanted[i] = true;
    }
    // Close over dependencies (deps always appear earlier in a catalog
    // or in the arith prelude handled by the caller).
    loop {
        let mut changed = false;
        for i in 0..catalog.len() {
            if !wanted[i] {
                continue;
            }
            for d in catalog[i].deps {
                if let Some(j) = catalog.iter().position(|t| t.name == *d) {
                    if !wanted[j] {
                        wanted[j] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    catalog.iter().zip(wanted).filter_map(|(t, w)| w.then_some(t)).collect()
}

/// Adds `name` (and its same-catalog dependencies) to `chosen`, keeping
/// catalog order so definitions precede uses.
fn force_include<'a>(chosen: &mut Vec<&'a FunTemplate>, catalog: &'a [FunTemplate], name: &str) {
    let Some(f) = catalog.iter().find(|f| f.name == name) else {
        return;
    };
    if !chosen.iter().any(|g| g.name == name) {
        for d in f.deps {
            force_include(chosen, catalog, d);
        }
        chosen.push(f);
        chosen.sort_by_key(|f| catalog.iter().position(|g| g.name == f.name));
    }
}

fn try_generate(rng: &mut FleetRng, fleet_seed: u64, index: u64) -> Option<GenProgram> {
    let shape = match rng.below(10) {
        0..=2 => Shape::Arith,
        3..=6 => Shape::List,
        _ => Shape::Tree,
    };
    let violating = rng.chance(2, 5);

    // Assemble the library: an optional datatype plus catalog functions.
    let mut lines: Vec<String> = Vec::new();
    let mut names: Vec<&'static str> = Vec::new();
    if shape == Shape::Tree {
        lines.push("type 'a tr = Lf | Nd of 'a * 'a tr * 'a tr".into());
    }
    let mut chosen: Vec<&FunTemplate> = Vec::new();
    match shape {
        Shape::Arith => chosen.extend(select_funs(rng, ARITH_FUNS)),
        Shape::List | Shape::Tree => {
            // A small arith prelude (deps like max2 plus material for
            // integer arguments), then the shape's own catalog.
            let mut prelude = select_funs(rng, ARITH_FUNS);
            let shape_funs = if shape == Shape::List {
                let mut t = select_funs(rng, LIST_FUNS);
                // At least one check-capable (int/bool-returning) entry.
                if !t.iter().any(|f| matches!(f.name, "length" | "sum" | "maxl" | "memb")) {
                    let pick = *rng.pick(&["length", "sum", "memb"]);
                    force_include(&mut t, LIST_FUNS, pick);
                }
                t
            } else {
                let mut t = select_funs(rng, TREE_FUNS);
                // Trees are only interesting with a builder, and need at
                // least one observer for the checks.
                force_include(&mut t, TREE_FUNS, "build");
                if !t.iter().any(|f| matches!(f.name, "tsize" | "tsum" | "theight" | "tmemb")) {
                    let pick = *rng.pick(&["tsize", "tsum", "tmemb"]);
                    force_include(&mut t, TREE_FUNS, pick);
                }
                t
            };
            // Pull in cross-catalog deps (maxl/theight need max2).
            for f in &shape_funs {
                for d in f.deps {
                    if let Some(p) = ARITH_FUNS.iter().find(|t| t.name == *d) {
                        if !prelude.iter().any(|t| t.name == *d) {
                            prelude.push(p);
                        }
                    }
                }
            }
            prelude.sort_by_key(|f| ARITH_FUNS.iter().position(|g| g.name == f.name));
            chosen.extend(prelude);
            chosen.extend(shape_funs);
        }
    }
    for f in &chosen {
        lines.push((f.render)(rng));
        names.push(f.name);
    }

    // Evaluate the library once; probes run against this environment.
    let lib_src = lines.join("\n");
    let prog = parse_program(&lib_src).ok()?;
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).ok()?;
    let resolved = resolve_program(&prog, &data).ok()?;
    let env = Evaluator::with_fuel(5_000_000)
        .eval_program(&resolved, &builtin_env())
        .ok()?;
    let probe = |text: &str| -> Option<Value> {
        let e = parse_expr_str(text).ok()?;
        let e = resolve_expr(&e, &data).ok()?;
        Evaluator::with_fuel(1_000_000).eval(&env, &e).ok()
    };
    let has = |name: &str| names.contains(&name);

    // Build checks, each pinned to its interpreter-observed value.
    let mut consts: Vec<i64> = Vec::new();
    let n_checks = 1 + rng.below(4);
    let violating_at = rng.below(n_checks);
    let mut violated_line: Option<u32> = None;
    for ci in 0..n_checks {
        let lhs = check_lhs(rng, shape, &has, &mut consts);
        let value = probe(&lhs.text)?;
        let make_violating = violating && ci == violating_at;
        let pred = match value {
            Value::Bool(b) => {
                let want = if make_violating { !b } else { b };
                if want && rng.chance(1, 2) {
                    lhs.text.clone()
                } else {
                    format!("{} = {}", lhs.text, want)
                }
            }
            Value::Int(v) => {
                let d = rng.int(0, 3);
                if make_violating {
                    let delta = if rng.chance(1, 2) { rng.int(1, 3) } else { -rng.int(1, 3) };
                    consts.push(v + delta);
                    match rng.below(3) {
                        0 => format!("{} = {}", lhs.text, render_int(v + delta)),
                        1 => format!("{} > {}", lhs.text, render_int(v)),
                        _ => format!("{} < {}", lhs.text, render_int(v)),
                    }
                } else {
                    consts.push(v);
                    match rng.below(4) {
                        0 => format!("{} = {}", lhs.text, render_int(v)),
                        1 => format!("{} >= {}", lhs.text, render_int(v - d)),
                        2 => format!("{} <= {}", lhs.text, render_int(v + d)),
                        _ => format!("{} < {}", lhs.text, render_int(v + 1 + d)),
                    }
                }
            }
            _ => return None,
        };
        lines.push(format!("let check{ci} = assert ({pred})"));
        if make_violating {
            violated_line = Some(lines.len() as u32);
        }
    }

    let source = lines.join("\n");

    // Ground truth: the interpreter must agree with the construction.
    let expectation = match first_assert_failure(&source) {
        Ok(None) if !violating => Expectation::Safe,
        Ok(Some(line)) if violating && Some(line) == violated_line => {
            Expectation::Violating { line }
        }
        _ => return None,
    };

    // The verifier's front end must accept the program (HM inference —
    // no built-in schemes needed, the catalog avoids map primitives).
    let full = parse_program(&source).ok()?;
    let mut full_data = DataEnv::with_builtins();
    full_data.add_program(&full.datatypes).ok()?;
    let full_resolved = resolve_program(&full, &full_data).ok()?;
    infer_program(&full_resolved, &full_data, &TypeEnv::new()).ok()?;

    let mlq = render_mlq(rng, shape, &has);
    let quals = render_quals(rng, shape, &consts, !mlq.is_empty());

    Some(GenProgram {
        name: format!("fleet-{fleet_seed}-{index}"),
        fleet_seed,
        index,
        shape,
        expectation,
        source,
        mlq,
        quals,
        checks: n_checks as usize,
    })
}

/// Renders the `.mlq` specification: shape-appropriate measures and, when
/// the canonical function is present, a provably-correct `val` spec.
fn render_mlq(rng: &mut FleetRng, shape: Shape, has: &dyn Fn(&str) -> bool) -> String {
    let mut out = String::new();
    match shape {
        Shape::Arith => {}
        Shape::List => {
            if rng.chance(1, 2) {
                out.push_str(
                    "measure llen : 'a list -> int =\n| Nil -> 0\n| Cons (x, xs) -> 1 + llen(xs)\n",
                );
                if has("length") && rng.chance(1, 2) {
                    out.push_str("\nval length : xs : 'a list -> {VV : int | VV = llen(xs)}\n");
                }
            }
        }
        Shape::Tree => {
            if rng.chance(1, 2) {
                out.push_str(
                    "measure sz : 'a tr -> int =\n| Lf -> 0\n| Nd (x, l, r) -> 1 + sz(l) + sz(r)\n",
                );
                if has("tsize") && rng.chance(1, 2) {
                    out.push_str("\nval tsize : t : 'a tr -> {VV : int | VV = sz(t)}\n");
                }
            }
        }
    }
    out
}

/// Renders the `.quals` qualifier file from the constants the checks
/// mention plus a few standard shapes. Qualifiers only affect
/// completeness (which programs the verifier can prove), never
/// soundness, so random subsetting here widens the config space safely.
fn render_quals(rng: &mut FleetRng, shape: Shape, consts: &[i64], has_mlq: bool) -> String {
    let mut out = String::from("qualif Nat : 0 <= VV\n");
    if rng.chance(2, 3) {
        out.push_str("qualif Ub : _ <= VV\n");
    }
    if rng.chance(1, 2) {
        out.push_str("qualif Lb : VV <= _\n");
    }
    let mut seen: Vec<i64> = Vec::new();
    for &c in consts {
        if seen.contains(&c) || seen.len() >= 4 {
            continue;
        }
        seen.push(c);
        let i = seen.len();
        match rng.below(3) {
            0 => out.push_str(&format!("qualif C{i}a : VV = {c}\n")),
            1 => out.push_str(&format!("qualif C{i}b : VV <= {c}\n")),
            _ => out.push_str(&format!("qualif C{i}c : {c} <= VV\n")),
        }
    }
    if has_mlq {
        match shape {
            Shape::List => {
                out.push_str("qualif LenNat : 0 <= llen(VV)\n");
                if rng.chance(1, 2) {
                    out.push_str("qualif LenEq : llen(VV) = llen(_)\n");
                }
            }
            Shape::Tree => {
                out.push_str("qualif SzNat : 0 <= sz(VV)\n");
            }
            Shape::Arith => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = FleetRng::new(7);
        let mut b = FleetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for i in 0..12 {
            let p = generate(42, i);
            let q = generate(42, i);
            assert_eq!(p.source, q.source, "index {i}");
            assert_eq!(p.mlq, q.mlq, "index {i}");
            assert_eq!(p.quals, q.quals, "index {i}");
            assert_eq!(p.expectation, q.expectation, "index {i}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<String> = (0..8).map(|i| generate(1, i).source).collect();
        let b: Vec<String> = (0..8).map(|i| generate(2, i).source).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn expectations_match_the_interpreter() {
        for i in 0..40 {
            let p = generate(7, i);
            let got = first_assert_failure(&p.source).unwrap_or_else(|e| {
                panic!("{}: interpreter error on generated program: {e}\n{}", p.name, p.source)
            });
            match p.expectation {
                Expectation::Safe => {
                    assert_eq!(got, None, "{}: safe program failed at runtime\n{}", p.name, p.source);
                }
                Expectation::Violating { line } => {
                    assert_eq!(
                        got,
                        Some(line),
                        "{}: expected violation at line {line}\n{}",
                        p.name,
                        p.source
                    );
                }
            }
        }
    }

    #[test]
    fn both_expectations_are_generated() {
        let fleet = generate_fleet(3, 30);
        assert!(fleet.iter().any(|p| p.expectation == Expectation::Safe));
        assert!(fleet.iter().any(|p| matches!(p.expectation, Expectation::Violating { .. })));
    }

    #[test]
    fn all_shapes_are_generated() {
        let fleet = generate_fleet(5, 40);
        for shape in [Shape::Arith, Shape::List, Shape::Tree] {
            assert!(fleet.iter().any(|p| p.shape == shape), "missing {shape}");
        }
    }
}
