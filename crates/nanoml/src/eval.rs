//! A big-step interpreter for NanoML.
//!
//! Implements the paper's call-by-value dynamic semantics (with implicit
//! fold/unfold). Used by the examples to *run* the verified programs, and
//! by the test suite for differential checks (e.g. the verified sorts
//! really sort).

use crate::ast::{Expr, Pattern, PrimOp};
use dsolve_logic::Symbol;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// A runtime value.
#[derive(Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// Tuple.
    Tuple(Vec<Value>),
    /// Constructed datatype value.
    Data(Symbol, Vec<Value>),
    /// A closure.
    Closure(Rc<Closure>),
    /// A native (built-in) function, possibly partially applied.
    Native(Rc<Native>, Vec<Value>),
    /// A persistent finite map (the §5 primitive).
    Map(Rc<BTreeMap<Value, Value>>),
}

/// A user-defined closure.
pub struct Closure {
    /// Parameter name.
    pub param: Symbol,
    /// Body expression.
    pub body: Expr,
    /// Captured environment.
    pub env: Env,
    /// Recursive group this closure belongs to (re-bound at call time).
    pub recs: Vec<(Symbol, Rc<RefCell<Option<Value>>>)>,
}

/// A native built-in.
pub struct Native {
    /// Display name.
    pub name: &'static str,
    /// Number of arguments before the function fires.
    pub arity: usize,
    /// Implementation.
    #[allow(clippy::type_complexity)]
    pub f: Box<dyn Fn(&[Value]) -> Result<Value, EvalError>>,
}

/// The runtime environment.
pub type Env = HashMap<Symbol, Value>;

/// A runtime error (the "stuck" states the type system rules out, plus
/// assertion failures which refinement typing is meant to prevent).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// `assert` saw `false` (with the source line).
    AssertFailed(u32),
    /// Division or modulus by zero.
    DivByZero,
    /// An unbound variable was referenced.
    Unbound(Symbol),
    /// A non-function was applied, a non-bool tested, etc.
    Stuck(String),
    /// Explicit nontermination marker (`diverge ()` in specs).
    Diverged,
    /// Evaluation step budget exhausted.
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::AssertFailed(line) => write!(f, "assertion failed on line {line}"),
            EvalError::DivByZero => write!(f, "division by zero"),
            EvalError::Unbound(x) => write!(f, "unbound variable `{x}` at runtime"),
            EvalError::Stuck(m) => write!(f, "stuck: {m}"),
            EvalError::Diverged => write!(f, "diverged"),
            EvalError::OutOfFuel => write!(f, "evaluation fuel exhausted"),
        }
    }
}

impl std::error::Error for EvalError {}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Unit => write!(f, "()"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, ")")
            }
            Value::Data(c, args) if *c == Symbol::new("Cons") || *c == Symbol::new("Nil") => {
                // Pretty-print lists.
                write!(f, "[")?;
                let mut cur = self.clone();
                let mut first = true;
                loop {
                    match cur {
                        Value::Data(c, args) if c == Symbol::new("Cons") => {
                            if !first {
                                write!(f, "; ")?;
                            }
                            first = false;
                            write!(f, "{:?}", args[0])?;
                            cur = args[1].clone();
                        }
                        _ => break,
                    }
                }
                write!(f, "]")?;
                let _ = args;
                Ok(())
            }
            Value::Data(c, args) => {
                write!(f, "{c}")?;
                if !args.is_empty() {
                    write!(f, "(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a:?}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Value::Closure(_) => write!(f, "<fun>"),
            Value::Native(n, _) => write!(f, "<native {}>", n.name),
            Value::Map(m) => write!(f, "<map of {} entries>", m.len()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.try_cmp(other) == Some(Ordering::Equal)
    }
}

impl Value {
    /// Structural comparison over first-order values (`None` for
    /// functions, which OCaml would also reject at runtime).
    pub fn try_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Unit, Value::Unit) => Some(Ordering::Equal),
            (Value::Tuple(xs), Value::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    match x.try_cmp(y)? {
                        Ordering::Equal => {}
                        o => return Some(o),
                    }
                }
                Some(Ordering::Equal)
            }
            (Value::Data(c1, xs), Value::Data(c2, ys)) => {
                if c1 != c2 {
                    return Some(c1.as_str().cmp(c2.as_str()));
                }
                for (x, y) in xs.iter().zip(ys) {
                    match x.try_cmp(y)? {
                        Ordering::Equal => {}
                        o => return Some(o),
                    }
                }
                Some(xs.len().cmp(&ys.len()))
            }
            (Value::Map(a), Value::Map(b)) => {
                if Rc::ptr_eq(a, b) {
                    Some(Ordering::Equal)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Builds a NanoML list value from a Rust iterator of values.
    pub fn list(items: impl IntoIterator<Item = Value>) -> Value {
        let items: Vec<Value> = items.into_iter().collect();
        let mut acc = Value::Data(Symbol::new("Nil"), vec![]);
        for v in items.into_iter().rev() {
            acc = Value::Data(Symbol::new("Cons"), vec![v, acc]);
        }
        acc
    }

    /// Converts a NanoML list value back into a vector.
    pub fn as_list(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Data(c, args) if c == Symbol::new("Cons") => {
                    out.push(args[0].clone());
                    cur = args[1].clone();
                }
                Value::Data(c, _) if c == Symbol::new("Nil") => return Some(out),
                _ => return None,
            }
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl Eq for Value {}

// Intentionally weaker than `Ord`: higher-order values compare as `None`
// here but panic in `cmp`, which map keys rely on.
#[allow(clippy::non_canonical_partial_ord_impl)]
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        self.try_cmp(other)
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        self.try_cmp(other)
            .expect("map keys must be first-order values")
    }
}

/// The evaluator, with a fuel budget to keep tests terminating.
pub struct Evaluator {
    fuel: u64,
}

impl Default for Evaluator {
    fn default() -> Evaluator {
        Evaluator::new()
    }
}

impl Evaluator {
    /// Creates an evaluator with a generous default budget.
    pub fn new() -> Evaluator {
        Evaluator { fuel: 50_000_000 }
    }

    /// Creates an evaluator with an explicit step budget.
    pub fn with_fuel(fuel: u64) -> Evaluator {
        Evaluator { fuel }
    }

    /// Evaluates an expression.
    pub fn eval(&mut self, env: &Env, e: &Expr) -> Result<Value, EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        match e {
            Expr::Var(x) => env.get(x).cloned().ok_or(EvalError::Unbound(*x)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Unit => Ok(Value::Unit),
            Expr::Prim(op, a, b) => {
                // Short-circuit booleans first.
                if matches!(op, PrimOp::And | PrimOp::Or) {
                    let va = self.eval(env, a)?;
                    let Value::Bool(ba) = va else {
                        return Err(EvalError::Stuck("non-bool in &&/||".into()));
                    };
                    return match (op, ba) {
                        (PrimOp::And, false) => Ok(Value::Bool(false)),
                        (PrimOp::Or, true) => Ok(Value::Bool(true)),
                        _ => self.eval(env, b),
                    };
                }
                let va = self.eval(env, a)?;
                let vb = self.eval(env, b)?;
                self.prim(*op, va, vb)
            }
            Expr::Neg(a) => match self.eval(env, a)? {
                Value::Int(v) => Ok(Value::Int(-v)),
                _ => Err(EvalError::Stuck("negation of non-int".into())),
            },
            Expr::Not(a) => match self.eval(env, a)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                _ => Err(EvalError::Stuck("`not` of non-bool".into())),
            },
            Expr::Lam(x, body) => Ok(Value::Closure(Rc::new(Closure {
                param: *x,
                body: (**body).clone(),
                env: env.clone(),
                recs: vec![],
            }))),
            Expr::App(f, a) => {
                let vf = self.eval(env, f)?;
                let va = self.eval(env, a)?;
                self.apply(vf, va)
            }
            Expr::Let(x, rhs, body) => {
                let v = self.eval(env, rhs)?;
                let mut env2 = env.clone();
                env2.insert(*x, v);
                self.eval(&env2, body)
            }
            Expr::LetRec(x, rhs, body) => {
                let env2 = self.bind_rec_group(env, &[(*x, (**rhs).clone())])?;
                self.eval(&env2, body)
            }
            Expr::LetTuple(binders, rhs, body) => {
                let v = self.eval(env, rhs)?;
                let Value::Tuple(vs) = v else {
                    return Err(EvalError::Stuck("tuple binding of non-tuple".into()));
                };
                if vs.len() != binders.len() {
                    return Err(EvalError::Stuck("tuple arity mismatch".into()));
                }
                let mut env2 = env.clone();
                for (b, v) in binders.iter().zip(vs) {
                    if let Some(name) = b {
                        env2.insert(*name, v);
                    }
                }
                self.eval(&env2, body)
            }
            Expr::If(c, t, f) => match self.eval(env, c)? {
                Value::Bool(true) => self.eval(env, t),
                Value::Bool(false) => self.eval(env, f),
                _ => Err(EvalError::Stuck("if on non-bool".into())),
            },
            Expr::Tuple(es) => {
                let vs: Vec<Value> = es
                    .iter()
                    .map(|e| self.eval(env, e))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Tuple(vs))
            }
            Expr::Ctor(name, args) => {
                let vs: Vec<Value> = args
                    .iter()
                    .map(|e| self.eval(env, e))
                    .collect::<Result<_, _>>()?;
                Ok(Value::Data(*name, vs))
            }
            Expr::Match(scrut, arms) => {
                let v = self.eval(env, scrut)?;
                let Value::Data(tag, fields) = &v else {
                    return Err(EvalError::Stuck("match on non-datatype".into()));
                };
                for arm in arms {
                    if let Pattern::Ctor { name, binders } = &arm.pattern {
                        if name == tag {
                            let mut env2 = env.clone();
                            for (b, f) in binders.iter().zip(fields) {
                                if let Some(n) = b {
                                    env2.insert(*n, f.clone());
                                }
                            }
                            return self.eval(&env2, &arm.body);
                        }
                    }
                }
                Err(EvalError::Stuck(format!("no arm for constructor `{tag}`")))
            }
            Expr::Assert(a, line) => match self.eval(env, a)? {
                Value::Bool(true) => Ok(Value::Unit),
                Value::Bool(false) => Err(EvalError::AssertFailed(*line)),
                _ => Err(EvalError::Stuck("assert on non-bool".into())),
            },
        }
    }

    /// Evaluates a whole program, returning the final environment.
    pub fn eval_program(
        &mut self,
        prog: &crate::ast::Program,
        builtins: &Env,
    ) -> Result<Env, EvalError> {
        let mut env = builtins.clone();
        for tl in &prog.lets {
            if tl.recursive {
                let binds: Vec<(Symbol, Expr)> = tl
                    .binds
                    .iter()
                    .map(|b| (b.name, b.body.clone()))
                    .collect();
                env = self.bind_rec_group(&env, &binds)?;
            } else {
                for b in &tl.binds {
                    let v = self.eval(&env, &b.body)?;
                    env.insert(b.name, v);
                }
            }
        }
        Ok(env)
    }

    fn bind_rec_group(
        &mut self,
        env: &Env,
        binds: &[(Symbol, Expr)],
    ) -> Result<Env, EvalError> {
        // Tie the knot with shared slots.
        let slots: Vec<(Symbol, Rc<RefCell<Option<Value>>>)> = binds
            .iter()
            .map(|(n, _)| (*n, Rc::new(RefCell::new(None))))
            .collect();
        let mut env2 = env.clone();
        for (name, rhs) in binds {
            let Expr::Lam(param, body) = rhs else {
                return Err(EvalError::Stuck(format!(
                    "`let rec {name}` must bind a function"
                )));
            };
            let clo = Value::Closure(Rc::new(Closure {
                param: *param,
                body: (**body).clone(),
                env: env.clone(),
                recs: slots.clone(),
            }));
            env2.insert(*name, clo.clone());
        }
        for ((_, slot), (name, _)) in slots.iter().zip(binds) {
            *slot.borrow_mut() = Some(env2[name].clone());
        }
        Ok(env2)
    }

    /// Applies a function value.
    pub fn apply(&mut self, f: Value, arg: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure(clo) => {
                let mut env = clo.env.clone();
                for (name, slot) in &clo.recs {
                    if let Some(v) = slot.borrow().clone() {
                        env.insert(*name, v);
                    }
                }
                env.insert(clo.param, arg);
                self.eval(&env, &clo.body)
            }
            Value::Native(n, mut partial) => {
                partial.push(arg);
                if partial.len() == n.arity {
                    (n.f)(&partial)
                } else {
                    Ok(Value::Native(n, partial))
                }
            }
            _ => Err(EvalError::Stuck("application of non-function".into())),
        }
    }

    fn prim(&mut self, op: PrimOp, a: Value, b: Value) -> Result<Value, EvalError> {
        use PrimOp::*;
        match op {
            Add | Sub | Mul | Div | Mod => {
                let (Value::Int(x), Value::Int(y)) = (&a, &b) else {
                    return Err(EvalError::Stuck("arithmetic on non-int".into()));
                };
                let r = match op {
                    Add => x.wrapping_add(*y),
                    Sub => x.wrapping_sub(*y),
                    Mul => x.wrapping_mul(*y),
                    Div => {
                        if *y == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        x / y
                    }
                    Mod => {
                        if *y == 0 {
                            return Err(EvalError::DivByZero);
                        }
                        x % y
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(r))
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let ord = a
                    .try_cmp(&b)
                    .ok_or_else(|| EvalError::Stuck("comparison of functions".into()))?;
                let r = match op {
                    Eq => ord == Ordering::Equal,
                    Ne => ord != Ordering::Equal,
                    Lt => ord == Ordering::Less,
                    Le => ord != Ordering::Greater,
                    Gt => ord == Ordering::Greater,
                    Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                };
                Ok(Value::Bool(r))
            }
            And | Or => unreachable!("short-circuited in eval"),
        }
    }
}

/// The built-in runtime environment: the finite-map primitives of §5
/// (`new`, `set`, `get`, `mem`), plus `random` (deterministic LCG) and
/// `diverge`.
pub fn builtin_env() -> Env {
    let mut env = Env::new();
    fn native(
        name: &'static str,
        arity: usize,
        f: impl Fn(&[Value]) -> Result<Value, EvalError> + 'static,
    ) -> Value {
        Value::Native(
            Rc::new(Native {
                name,
                arity,
                f: Box::new(f),
            }),
            vec![],
        )
    }
    env.insert(
        Symbol::new("new"),
        native("new", 1, |_| Ok(Value::Map(Rc::new(BTreeMap::new())))),
    );
    env.insert(
        Symbol::new("set"),
        native("set", 3, |args| {
            let Value::Map(m) = &args[0] else {
                return Err(EvalError::Stuck("set on non-map".into()));
            };
            // Keys are first-order values; the `Rc` inside `Value` never
            // mutates through a key.
            #[allow(clippy::mutable_key_type)]
            let mut m2 = (**m).clone();
            m2.insert(args[1].clone(), args[2].clone());
            Ok(Value::Map(Rc::new(m2)))
        }),
    );
    env.insert(
        Symbol::new("get"),
        native("get", 2, |args| {
            let Value::Map(m) = &args[0] else {
                return Err(EvalError::Stuck("get on non-map".into()));
            };
            m.get(&args[1]).cloned().ok_or(EvalError::Diverged)
        }),
    );
    env.insert(
        Symbol::new("mem"),
        native("mem", 2, |args| {
            let Value::Map(m) = &args[0] else {
                return Err(EvalError::Stuck("mem on non-map".into()));
            };
            Ok(Value::Bool(m.contains_key(&args[1])))
        }),
    );
    env.insert(
        Symbol::new("diverge"),
        native("diverge", 1, |_| Err(EvalError::Diverged)),
    );
    // Deterministic pseudo-random source (the verifier treats it as an
    // unconstrained int, the runtime gives replayable values).
    let state = Rc::new(RefCell::new(0x2545F4914F6CDD1Du64));
    env.insert(
        Symbol::new("random"),
        native("random", 1, move |_| {
            let mut s = state.borrow_mut();
            *s ^= *s << 13;
            *s ^= *s >> 7;
            *s ^= *s << 17;
            Ok(Value::Int((*s % 1_000_000) as i64))
        }),
    );
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr_str, parse_program};
    use crate::resolve::{resolve_expr, resolve_program};
    use crate::types::DataEnv;

    fn run(src: &str) -> Value {
        let data = DataEnv::with_builtins();
        let e = parse_expr_str(src).unwrap();
        let e = resolve_expr(&e, &data).unwrap();
        Evaluator::new().eval(&builtin_env(), &e).unwrap()
    }

    fn run_program(src: &str, main: &str) -> Result<Value, EvalError> {
        let prog = parse_program(src).unwrap();
        let mut data = DataEnv::with_builtins();
        data.add_program(&prog.datatypes).unwrap();
        let prog = resolve_program(&prog, &data).unwrap();
        let env = Evaluator::new().eval_program(&prog, &builtin_env())?;
        Ok(env[&Symbol::new(main)].clone())
    }

    #[test]
    fn arithmetic_and_comparison() {
        assert_eq!(run("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run("7 mod 3"), Value::Int(1));
        assert_eq!(run("if 1 < 2 then 10 else 20"), Value::Int(10));
        assert_eq!(run("(1, 2) = (1, 2)"), Value::Bool(true));
    }

    #[test]
    fn division_by_zero_errors() {
        let data = DataEnv::with_builtins();
        let e = resolve_expr(&parse_expr_str("1 / 0").unwrap(), &data).unwrap();
        assert_eq!(
            Evaluator::new().eval(&builtin_env(), &e),
            Err(EvalError::DivByZero)
        );
    }

    #[test]
    fn recursion_and_lists() {
        let v = run("let rec range i j = if i > j then [] else i :: range (i + 1) j in range 1 5");
        let items = v.as_list().unwrap();
        assert_eq!(
            items.iter().map(|v| v.as_int().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn fig1_harmonic_runs() {
        let src = r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
let result = harmonic 5
"#;
        assert_eq!(run_program(src, "result").unwrap(), Value::Int(22833));
    }

    #[test]
    fn fig2_insertsort_sorts() {
        let src = r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
let result = insertsort [3; 1; 4; 1; 5; 9; 2; 6]
"#;
        let v = run_program(src, "result").unwrap();
        let ints: Vec<i64> = v
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(ints, vec![1, 1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn map_primitives() {
        let v = run("let m = new 17 in let m2 = set m 1 10 in get m2 1");
        assert_eq!(v, Value::Int(10));
        let v = run("let m = new 17 in mem m 3");
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn assert_failure_reports_line() {
        let data = DataEnv::with_builtins();
        let e = resolve_expr(&parse_expr_str("assert (1 > 2)").unwrap(), &data).unwrap();
        assert_eq!(
            Evaluator::new().eval(&builtin_env(), &e),
            Err(EvalError::AssertFailed(1))
        );
    }

    #[test]
    fn mutual_recursion_at_runtime() {
        let src = r#"
let rec even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
let result = even 10
"#;
        assert_eq!(run_program(src, "result").unwrap(), Value::Bool(true));
    }

    #[test]
    fn memo_fib_from_fig3() {
        let src = r#"
let fib i =
  let rec f t0 n =
    if mem t0 n then (t0, get t0 n)
    else if n <= 2 then (t0, 1)
    else
      let (t1, r1) = f t0 (n - 1) in
      let (t2, r2) = f t1 (n - 2) in
      let r = r1 + r2 in
      (set t2 n r, r)
  in
  let (_, r) = f (new 17) i in
  r
let result = fib 30
"#;
        assert_eq!(run_program(src, "result").unwrap(), Value::Int(832040));
    }

    #[test]
    fn fuel_limits_runaway_recursion() {
        let src = "let rec loop x = loop x in loop 1";
        let data = DataEnv::with_builtins();
        let e = resolve_expr(&parse_expr_str(src).unwrap(), &data).unwrap();
        // The evaluator recurses on the host stack, so use a small budget
        // (each fuel unit is roughly one nested frame here).
        let mut ev = Evaluator::with_fuel(500);
        assert_eq!(ev.eval(&builtin_env(), &e), Err(EvalError::OutOfFuel));
    }

    #[test]
    fn out_of_domain_get_diverges() {
        let data = DataEnv::with_builtins();
        let e = resolve_expr(&parse_expr_str("get (new 17) 5").unwrap(), &data).unwrap();
        assert_eq!(
            Evaluator::new().eval(&builtin_env(), &e),
            Err(EvalError::Diverged)
        );
    }
}
