//! # dsolve-nanoml
//!
//! The NanoML front end: the paper's core language (§3) extended with
//! datatypes, constructors, and pattern matching (§4), in an OCaml-subset
//! concrete syntax.
//!
//! The pipeline is: [`parse_program`] → [`DataEnv::add_program`] →
//! [`resolve_program`] (constructor arities, match normalization) →
//! [`infer_program`] (Hindley–Milner, producing the [`TExpr`] trees the
//! liquid verifier consumes). A big-step [`Evaluator`] implements the
//! dynamic semantics so verified programs can actually run.
//!
//! ## Example
//!
//! ```
//! use dsolve_nanoml::{
//!     builtin_env, infer_program, parse_program, resolve_program, DataEnv, Evaluator,
//!     TypeEnv,
//! };
//!
//! let src = "let rec range i j = if i > j then [] else i :: range (i + 1) j";
//! let prog = parse_program(src).unwrap();
//! let mut data = DataEnv::with_builtins();
//! data.add_program(&prog.datatypes).unwrap();
//! let prog = resolve_program(&prog, &data).unwrap();
//!
//! // Types:
//! let typed = infer_program(&prog, &data, &TypeEnv::new()).unwrap();
//! assert_eq!(
//!     typed.lets[0].binds[0].scheme.ty.to_string(),
//!     "(int -> (int -> (int) list))"
//! );
//!
//! // And it runs:
//! let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
//! assert!(env.contains_key(&dsolve_logic::Symbol::new("range")));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod eval;
pub mod genprog;
mod infer;
mod parser;
mod resolve;
mod texpr;
mod token;
mod types;

pub use ast::{Arm, CtorDecl, DataDecl, Expr, Pattern, PrimOp, Program, TopBind, TopLet, TypeExpr};
pub use eval::{builtin_env, Env, EvalError, Evaluator, Native, Value};
pub use genprog::{
    first_assert_failure, generate, generate_fleet, Expectation, FleetRng, GenProgram, Shape,
};
pub use infer::{infer_expr, infer_program, match_instantiation, TypeEnv, TypeError};
pub use parser::{parse_expr_str, parse_program, parse_type_str, ParseError};
pub use resolve::{resolve_expr, resolve_program, ResolveError};
pub use texpr::{apply_types, TArm, TBind, TExpr, TExprKind, TProgram, TTopLet};
pub use token::{lex, LexError, Spanned, Token};
pub use types::{CtorSig, DataEnv, DataError, DeclSig, MlType, Scheme};
