//! Abstract syntax of NanoML programs.
//!
//! NanoML is the paper's core language (§3) extended with the §4
//! constructs: datatypes (iso-recursive sums of products), constructors,
//! and pattern matching. `fold`/`unfold` are implicit at construction and
//! match sites, as the paper assumes.

use dsolve_logic::Symbol;
use std::fmt;

/// Primitive binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrimOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `mod`
    Mod,
    /// `=` (polymorphic equality restricted to base values)
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl PrimOp {
    /// Whether this is a comparison yielding `bool` from two operands of
    /// the same type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            PrimOp::Eq | PrimOp::Ne | PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge
        )
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Mod => "mod",
            PrimOp::Eq => "=",
            PrimOp::Ne => "<>",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// A shallow match pattern: a constructor applied to variable binders
/// (the form the paper's `match-with` rule expects), or a catch-all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// `C (x1, ..., xn)` with each binder a variable or `_`.
    Ctor {
        /// Constructor name.
        name: Symbol,
        /// One binder per constructor field; `None` is `_`.
        binders: Vec<Option<Symbol>>,
    },
    /// `x` or `_`: matches anything.
    Any(Option<Symbol>),
    /// `(x1, ..., xn)`: tuple destructuring.
    Tuple(Vec<Option<Symbol>>),
}

/// A match arm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arm {
    /// The (shallow) pattern.
    pub pattern: Pattern,
    /// Arm body.
    pub body: Expr,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Variable occurrence.
    Var(Symbol),
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// Unit value `()`.
    Unit,
    /// Primitive operator application `e1 op e2`.
    Prim(PrimOp, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Boolean negation `not e`.
    Not(Box<Expr>),
    /// `fun x -> e`.
    Lam(Symbol, Box<Expr>),
    /// Application `e1 e2`.
    App(Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2` (generalizing).
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// `let rec f = fun ... in e` (fixpoint).
    LetRec(Symbol, Box<Expr>, Box<Expr>),
    /// `let (x1, ..., xn) = e1 in e2`.
    LetTuple(Vec<Option<Symbol>>, Box<Expr>, Box<Expr>),
    /// `if c then t else e`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Tuple `(e1, ..., en)` with n ≥ 2.
    Tuple(Vec<Expr>),
    /// Constructor application (fully applied).
    Ctor(Symbol, Vec<Expr>),
    /// `match e with arms`.
    Match(Box<Expr>, Vec<Arm>),
    /// `assert e` — the verification target: the paper types `assert` at
    /// `{ν:bool | ν} → unit`.
    Assert(Box<Expr>, u32),
}

impl Expr {
    /// Convenience: application spine `f e1 ... en`.
    pub fn apps(f: Expr, args: Vec<Expr>) -> Expr {
        args.into_iter()
            .fold(f, |acc, a| Expr::App(Box::new(acc), Box::new(a)))
    }
}

/// Surface type expressions (used in datatype declarations and `.mlq`
/// signatures).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// `'a`
    Var(String),
    /// `t1 -> t2`
    Arrow(Box<TypeExpr>, Box<TypeExpr>),
    /// `t1 * ... * tn`
    Tuple(Vec<TypeExpr>),
    /// `(t1, ..., tn) name` (including `t list`)
    App(String, Vec<TypeExpr>),
}

/// One constructor declaration: `C of t1 * ... * tn`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtorDecl {
    /// Constructor name.
    pub name: Symbol,
    /// Field types (empty for nullary constructors).
    pub fields: Vec<TypeExpr>,
}

/// A datatype declaration `type ('a, 'b) name = C1 of ... | C2 ...`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataDecl {
    /// Type constructor name.
    pub name: Symbol,
    /// Type parameters in order.
    pub params: Vec<String>,
    /// Constructors.
    pub ctors: Vec<CtorDecl>,
}

/// One binding inside a top-level `let` group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopBind {
    /// Bound name.
    pub name: Symbol,
    /// The right-hand side with parameters already desugared to lambdas.
    pub body: Expr,
}

/// A top-level `let [rec] f ... = e [and g ... = e]` group. A group with
/// several binds is mutually recursive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopLet {
    /// Whether the group is (mutually) recursive.
    pub recursive: bool,
    /// The bindings of the group.
    pub binds: Vec<TopBind>,
    /// Source line (for reports).
    pub line: u32,
}

/// A parsed program: datatype declarations and top-level bindings in
/// source order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// Datatype declarations.
    pub datatypes: Vec<DataDecl>,
    /// Top-level binding groups.
    pub lets: Vec<TopLet>,
}

impl Program {
    /// Looks up a datatype by name.
    pub fn datatype(&self, name: Symbol) -> Option<&DataDecl> {
        self.datatypes.iter().find(|d| d.name == name)
    }

    /// Iterates over all top-level bound names in order.
    pub fn top_names(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.lets.iter().flat_map(|l| l.binds.iter().map(|b| b.name))
    }
}
