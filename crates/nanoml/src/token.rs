//! Tokens and the hand-written lexer for the NanoML surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Lower-case identifier (variables, keywords are separated out).
    Ident(String),
    /// Capitalized identifier (constructors).
    Ctor(String),
    /// Type variable `'a`.
    TyVar(String),
    // Keywords.
    /// `let`
    Let,
    /// `rec`
    Rec,
    /// `in`
    In,
    /// `fun`
    Fun,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `match`
    Match,
    /// `with`
    With,
    /// `type`
    Type,
    /// `of`
    Of,
    /// `true`
    True,
    /// `false`
    False,
    /// `and` (mutual recursion separator)
    And,
    /// `as`
    As,
    /// `mod`
    Mod,
    /// `assert`
    Assert,
    /// `not`
    Not,
    // Punctuation / operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `;;`
    SemiSemi,
    /// `|`
    Bar,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `::`
    ColonColon,
    /// `:`
    Colon,
    /// `&&`
    AmpAmp,
    /// `||`
    BarBar,
    /// `_`
    Underscore,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(v) => write!(f, "{v}"),
            Token::Ident(s) | Token::Ctor(s) => write!(f, "{s}"),
            Token::TyVar(s) => write!(f, "'{s}"),
            Token::Let => write!(f, "let"),
            Token::Rec => write!(f, "rec"),
            Token::In => write!(f, "in"),
            Token::Fun => write!(f, "fun"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::Match => write!(f, "match"),
            Token::With => write!(f, "with"),
            Token::Type => write!(f, "type"),
            Token::Of => write!(f, "of"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::And => write!(f, "and"),
            Token::As => write!(f, "as"),
            Token::Mod => write!(f, "mod"),
            Token::Assert => write!(f, "assert"),
            Token::Not => write!(f, "not"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::SemiSemi => write!(f, ";;"),
            Token::Bar => write!(f, "|"),
            Token::Arrow => write!(f, "->"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::ColonColon => write!(f, "::"),
            Token::Colon => write!(f, ":"),
            Token::AmpAmp => write!(f, "&&"),
            Token::BarBar => write!(f, "||"),
            Token::Underscore => write!(f, "_"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its line number (1-based), for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Source line.
    pub line: u32,
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub msg: String,
    /// Source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Lexes NanoML source into tokens. Comments are OCaml style `(* ... *)`
/// and nest.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'(' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested comment.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'(' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b')' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                if depth > 0 {
                    return Err(LexError {
                        msg: "unterminated comment".into(),
                        line,
                    });
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let text = std::str::from_utf8(&b[start..i]).expect("digits");
                let v: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` overflows"),
                    line,
                })?;
                out.push(Spanned {
                    tok: Token::Int(v),
                    line,
                });
            }
            b'\'' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if start == i {
                    return Err(LexError {
                        msg: "expected type variable after `'`".into(),
                        line,
                    });
                }
                let name = std::str::from_utf8(&b[start..i]).expect("ascii").to_owned();
                out.push(Spanned {
                    tok: Token::TyVar(name),
                    line,
                });
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'\'')
                {
                    i += 1;
                }
                let word = std::str::from_utf8(&b[start..i]).expect("ascii");
                let tok = match word {
                    "let" => Token::Let,
                    "rec" => Token::Rec,
                    "in" => Token::In,
                    "fun" => Token::Fun,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "match" => Token::Match,
                    "with" => Token::With,
                    "type" => Token::Type,
                    "of" => Token::Of,
                    "true" => Token::True,
                    "false" => Token::False,
                    "and" => Token::And,
                    "as" => Token::As,
                    "mod" => Token::Mod,
                    "assert" => Token::Assert,
                    "not" => Token::Not,
                    "_" => Token::Underscore,
                    _ if word.starts_with(|ch: char| ch.is_ascii_uppercase()) => {
                        Token::Ctor(word.to_owned())
                    }
                    _ => Token::Ident(word.to_owned()),
                };
                out.push(Spanned { tok, line });
            }
            _ => {
                let two = if i + 1 < b.len() { &b[i..i + 2] } else { &b[i..] };
                let (tok, len) = match two {
                    b"->" => (Token::Arrow, 2),
                    b"::" => (Token::ColonColon, 2),
                    b";;" => (Token::SemiSemi, 2),
                    b"<=" => (Token::Le, 2),
                    b">=" => (Token::Ge, 2),
                    b"<>" => (Token::Ne, 2),
                    b"&&" => (Token::AmpAmp, 2),
                    b"||" => (Token::BarBar, 2),
                    _ => match c {
                        b'(' => (Token::LParen, 1),
                        b')' => (Token::RParen, 1),
                        b'[' => (Token::LBracket, 1),
                        b']' => (Token::RBracket, 1),
                        b',' => (Token::Comma, 1),
                        b';' => (Token::Semi, 1),
                        b'|' => (Token::Bar, 1),
                        b'=' => (Token::Eq, 1),
                        b'<' => (Token::Lt, 1),
                        b'>' => (Token::Gt, 1),
                        b'+' => (Token::Plus, 1),
                        b'-' => (Token::Minus, 1),
                        b'*' => (Token::Star, 1),
                        b'/' => (Token::Slash, 1),
                        b':' => (Token::Colon, 1),
                        other => {
                            return Err(LexError {
                                msg: format!("unexpected character `{}`", other as char),
                                line,
                            })
                        }
                    },
                };
                out.push(Spanned { tok, line });
                i += len;
            }
        }
    }
    out.push(Spanned {
        tok: Token::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("let rec foo = fun x -> x"),
            vec![
                Token::Let,
                Token::Rec,
                Token::Ident("foo".into()),
                Token::Eq,
                Token::Fun,
                Token::Ident("x".into()),
                Token::Arrow,
                Token::Ident("x".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn constructors_and_tyvars() {
        assert_eq!(
            toks("type 'a t = E | N of 'a"),
            vec![
                Token::Type,
                Token::TyVar("a".into()),
                Token::Ident("t".into()),
                Token::Eq,
                Token::Ctor("E".into()),
                Token::Bar,
                Token::Ctor("N".into()),
                Token::Of,
                Token::TyVar("a".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("x :: xs <= 1 <> 2 && true || false"),
            vec![
                Token::Ident("x".into()),
                Token::ColonColon,
                Token::Ident("xs".into()),
                Token::Le,
                Token::Int(1),
                Token::Ne,
                Token::Int(2),
                Token::AmpAmp,
                Token::True,
                Token::BarBar,
                Token::False,
                Token::Eof
            ]
        );
    }

    #[test]
    fn nested_comments_and_lines() {
        let ts = lex("let (* outer (* inner *) still *) x = 1\nlet y = 2").unwrap();
        assert_eq!(ts[0].line, 1);
        let last_let = ts.iter().rposition(|s| s.tok == Token::Let).unwrap();
        assert_eq!(ts[last_let].line, 2);
    }

    #[test]
    fn list_sugar_tokens() {
        assert_eq!(
            toks("[1; 2]"),
            vec![
                Token::LBracket,
                Token::Int(1),
                Token::Semi,
                Token::Int(2),
                Token::RBracket,
                Token::Eof
            ]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("let x = #").is_err());
        assert!(lex("(* unterminated").is_err());
    }
}
