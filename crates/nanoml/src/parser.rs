//! Recursive-descent parser for NanoML.
//!
//! The concrete syntax is a small OCaml subset: datatype declarations,
//! (recursive) `let` bindings with parameters, `fun`, `if`, `match` with
//! shallow patterns, tuples, list sugar, `assert`, and the usual operator
//! precedence. Constructor applications are resolved against declared
//! arities in a post-pass ([`crate::resolve`]).

use crate::ast::*;
use crate::token::{lex, Spanned, Token};
use dsolve_logic::Symbol;
use std::fmt;

/// A parse error with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub msg: String,
    /// Source line (1-based).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Maximum expression/type nesting depth. Hostile inputs like
/// `((((…))))` or `not not not …` would otherwise overflow the stack,
/// which aborts the process and cannot be isolated by `catch_unwind`.
const MAX_DEPTH: usize = 256;

/// Parses a complete program.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        msg: e.msg,
        line: e.line,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    p.program()
}

/// Parses a single expression (useful in tests and specs).
pub fn parse_expr_str(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        msg: e.msg,
        line: e.line,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let e = p.expr()?;
    p.expect(&Token::Eof)?;
    Ok(e)
}

/// Parses a type expression (used by `.mlq` signatures).
pub fn parse_type_str(src: &str) -> Result<TypeExpr, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        msg: e.msg,
        line: e.line,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let t = p.type_expr()?;
    p.expect(&Token::Eof)?;
    Ok(t)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    depth: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_owned(),
            line: self.line(),
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err(&format!(
                "expression nesting exceeds the depth limit ({MAX_DEPTH})"
            )))
        } else {
            Ok(())
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(Symbol::new(&s))
            }
            other => Err(self.err(&format!("expected identifier, found `{other}`"))),
        }
    }

    // ---------------- programs ----------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            while self.eat(&Token::SemiSemi) {}
            match self.peek() {
                Token::Eof => break,
                Token::Type => prog.datatypes.push(self.type_decl()?),
                Token::Let => prog.lets.push(self.top_let()?),
                other => {
                    return Err(self.err(&format!(
                        "expected `type` or `let` at top level, found `{other}`"
                    )))
                }
            }
        }
        Ok(prog)
    }

    fn type_decl(&mut self) -> Result<DataDecl, ParseError> {
        self.expect(&Token::Type)?;
        let mut params = Vec::new();
        match self.peek().clone() {
            Token::TyVar(v) => {
                self.bump();
                params.push(v);
            }
            Token::LParen => {
                self.bump();
                loop {
                    match self.bump() {
                        Token::TyVar(v) => params.push(v),
                        other => {
                            return Err(
                                self.err(&format!("expected type variable, found `{other}`"))
                            )
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            _ => {}
        }
        let name = self.ident()?;
        self.expect(&Token::Eq)?;
        self.eat(&Token::Bar);
        let mut ctors = Vec::new();
        loop {
            let cname = match self.bump() {
                Token::Ctor(s) => Symbol::new(&s),
                other => return Err(self.err(&format!("expected constructor, found `{other}`"))),
            };
            let mut fields = Vec::new();
            if self.eat(&Token::Of) {
                fields.push(self.type_app()?);
                while self.eat(&Token::Star) {
                    fields.push(self.type_app()?);
                }
            }
            ctors.push(CtorDecl {
                name: cname,
                fields,
            });
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        Ok(DataDecl {
            name,
            params,
            ctors,
        })
    }

    fn top_let(&mut self) -> Result<TopLet, ParseError> {
        let line = self.line();
        self.expect(&Token::Let)?;
        let recursive = self.eat(&Token::Rec);
        let mut binds = Vec::new();
        loop {
            let name = match self.peek().clone() {
                Token::Underscore => {
                    self.bump();
                    Symbol::fresh("toplevel")
                }
                _ => self.ident()?,
            };
            let params = self.params()?;
            self.expect(&Token::Eq)?;
            let mut body = self.expr()?;
            for p in params.into_iter().rev() {
                body = lam_param(p, body);
            }
            binds.push(TopBind { name, body });
            // Mutually recursive `and` bindings share the `rec` flag.
            if !self.eat(&Token::And) {
                break;
            }
        }
        Ok(TopLet {
            recursive,
            binds,
            line,
        })
    }

    fn params(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut ps = Vec::new();
        loop {
            match self.peek().clone() {
                Token::Ident(s) => {
                    self.bump();
                    ps.push(Param::Var(Symbol::new(&s)));
                }
                Token::Underscore => {
                    self.bump();
                    ps.push(Param::Var(Symbol::fresh("unused")));
                }
                Token::LParen => {
                    // Either `()` (unit param), `(x)` or a tuple param.
                    if *self.peek2() == Token::RParen {
                        self.bump();
                        self.bump();
                        ps.push(Param::Var(Symbol::fresh("unit")));
                        continue;
                    }
                    // Look ahead: `(ident, ...)` or `(ident : ty)` or `(ident)`.
                    let save = self.pos;
                    self.bump();
                    let mut binders = Vec::new();
                    let mut ok = true;
                    loop {
                        match self.peek().clone() {
                            Token::Ident(s) => {
                                self.bump();
                                binders.push(Some(Symbol::new(&s)));
                            }
                            Token::Underscore => {
                                self.bump();
                                binders.push(None);
                            }
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                        if self.eat(&Token::Comma) {
                            continue;
                        }
                        break;
                    }
                    if ok && self.eat(&Token::RParen) {
                        if binders.len() == 1 {
                            let name =
                                binders[0].unwrap_or_else(|| Symbol::fresh("unused"));
                            ps.push(Param::Var(name));
                        } else {
                            ps.push(Param::Tuple(binders));
                        }
                    } else {
                        self.pos = save;
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(ps)
    }

    // ---------------- expressions ----------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        // Sequences fold iteratively so a long flat `e; e; …` body does
        // not consume stack proportional to its length.
        let mut parts = vec![self.expr_noseq()?];
        while self.eat(&Token::Semi) {
            parts.push(self.expr_noseq()?);
        }
        let mut acc = parts.pop().expect("nonempty");
        while let Some(e) = parts.pop() {
            acc = Expr::Let(Symbol::fresh("seq"), Box::new(e), Box::new(acc));
        }
        Ok(acc)
    }

    fn expr_noseq(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = match self.peek() {
            Token::Let => self.let_expr(),
            Token::Fun => self.fun_expr(),
            Token::If => self.if_expr(),
            Token::Match => self.match_expr(),
            _ => self.or_expr(),
        };
        self.depth -= 1;
        r
    }

    fn let_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Token::Let)?;
        let recursive = self.eat(&Token::Rec);
        // Tuple destructuring: let (a, b) = ... in ...
        if *self.peek() == Token::LParen {
            let save = self.pos;
            self.bump();
            let mut binders = Vec::new();
            let mut ok = true;
            loop {
                match self.peek().clone() {
                    Token::Ident(s) => {
                        self.bump();
                        binders.push(Some(Symbol::new(&s)));
                    }
                    Token::Underscore => {
                        self.bump();
                        binders.push(None);
                    }
                    _ => {
                        ok = false;
                        break;
                    }
                }
                if self.eat(&Token::Comma) {
                    continue;
                }
                break;
            }
            if ok && binders.len() >= 2 && self.eat(&Token::RParen) && self.eat(&Token::Eq) {
                let rhs = self.expr_noseq()?;
                self.expect(&Token::In)?;
                let body = self.expr()?;
                return Ok(Expr::LetTuple(binders, Box::new(rhs), Box::new(body)));
            }
            self.pos = save;
        }
        let name = match self.peek().clone() {
            Token::Underscore => {
                self.bump();
                Symbol::fresh("unused")
            }
            _ => self.ident()?,
        };
        let params = self.params()?;
        self.expect(&Token::Eq)?;
        let mut rhs = self.expr_noseq()?;
        for p in params.into_iter().rev() {
            rhs = lam_param(p, rhs);
        }
        self.expect(&Token::In)?;
        let body = self.expr()?;
        if recursive {
            Ok(Expr::LetRec(name, Box::new(rhs), Box::new(body)))
        } else {
            Ok(Expr::Let(name, Box::new(rhs), Box::new(body)))
        }
    }

    fn fun_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Token::Fun)?;
        let params = self.params()?;
        if params.is_empty() {
            return Err(self.err("`fun` needs at least one parameter"));
        }
        self.expect(&Token::Arrow)?;
        let mut body = self.expr_noseq()?;
        for p in params.into_iter().rev() {
            body = lam_param(p, body);
        }
        Ok(body)
    }

    fn if_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Token::If)?;
        let c = self.expr_noseq()?;
        self.expect(&Token::Then)?;
        let t = self.expr_noseq()?;
        self.expect(&Token::Else)?;
        let e = self.expr_noseq()?;
        Ok(Expr::If(Box::new(c), Box::new(t), Box::new(e)))
    }

    fn match_expr(&mut self) -> Result<Expr, ParseError> {
        self.expect(&Token::Match)?;
        let scrut = self.expr_noseq()?;
        self.expect(&Token::With)?;
        self.eat(&Token::Bar);
        let mut arms = Vec::new();
        loop {
            let pattern = self.pattern()?;
            self.expect(&Token::Arrow)?;
            let body = self.expr_noseq()?;
            arms.push(Arm { pattern, body });
            if !self.eat(&Token::Bar) {
                break;
            }
        }
        Ok(Expr::Match(Box::new(scrut), arms))
    }

    fn pattern(&mut self) -> Result<Pattern, ParseError> {
        // Cons sugar has the lowest precedence: p :: p.
        let lhs = self.pattern_atom()?;
        if self.eat(&Token::ColonColon) {
            let head = pattern_binder(lhs, self)?;
            let rhs = self.pattern()?;
            let tail = pattern_binder(rhs, self)?;
            return Ok(Pattern::Ctor {
                name: Symbol::new("Cons"),
                binders: vec![head, tail],
            });
        }
        Ok(lhs)
    }

    fn pattern_atom(&mut self) -> Result<Pattern, ParseError> {
        match self.peek().clone() {
            Token::Underscore => {
                self.bump();
                Ok(Pattern::Any(None))
            }
            Token::Ident(s) => {
                self.bump();
                Ok(Pattern::Any(Some(Symbol::new(&s))))
            }
            Token::LBracket => {
                self.bump();
                self.expect(&Token::RBracket)?;
                Ok(Pattern::Ctor {
                    name: Symbol::new("Nil"),
                    binders: vec![],
                })
            }
            Token::LParen => {
                self.bump();
                let mut binders = Vec::new();
                loop {
                    match self.peek().clone() {
                        Token::Ident(s) => {
                            self.bump();
                            binders.push(Some(Symbol::new(&s)));
                        }
                        Token::Underscore => {
                            self.bump();
                            binders.push(None);
                        }
                        other => {
                            return Err(self.err(&format!(
                                "only variables and `_` are allowed in tuple patterns, found `{other}`"
                            )))
                        }
                    }
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                if binders.len() == 1 {
                    Ok(Pattern::Any(binders[0]))
                } else {
                    Ok(Pattern::Tuple(binders))
                }
            }
            Token::Ctor(name) => {
                self.bump();
                let name = Symbol::new(&name);
                let mut binders = Vec::new();
                if self.eat(&Token::LParen) {
                    loop {
                        match self.peek().clone() {
                            Token::Ident(s) => {
                                self.bump();
                                binders.push(Some(Symbol::new(&s)));
                            }
                            Token::Underscore => {
                                self.bump();
                                binders.push(None);
                            }
                            other => {
                                return Err(self.err(&format!(
                                    "constructor patterns bind variables only, found `{other}`"
                                )))
                            }
                        }
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                } else {
                    // Single unparenthesized binder: `Some x`.
                    match self.peek().clone() {
                        Token::Ident(s) => {
                            self.bump();
                            binders.push(Some(Symbol::new(&s)));
                        }
                        Token::Underscore => {
                            self.bump();
                            binders.push(None);
                        }
                        _ => {}
                    }
                }
                Ok(Pattern::Ctor { name, binders })
            }
            other => Err(self.err(&format!("expected pattern, found `{other}`"))),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::BarBar) {
            let rhs = self.and_expr()?;
            lhs = Expr::Prim(PrimOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::AmpAmp) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Prim(PrimOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cons_expr()?;
        let op = match self.peek() {
            Token::Eq => Some(PrimOp::Eq),
            Token::Ne => Some(PrimOp::Ne),
            Token::Lt => Some(PrimOp::Lt),
            Token::Le => Some(PrimOp::Le),
            Token::Gt => Some(PrimOp::Gt),
            Token::Ge => Some(PrimOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.cons_expr()?;
                Ok(Expr::Prim(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn cons_expr(&mut self) -> Result<Expr, ParseError> {
        // `::` is right-associative; fold iteratively so long chains do
        // not consume stack proportional to their length.
        let mut parts = vec![self.add_expr()?];
        while self.eat(&Token::ColonColon) {
            parts.push(self.add_expr()?);
        }
        let mut acc = parts.pop().expect("nonempty");
        while let Some(e) = parts.pop() {
            acc = Expr::Ctor(Symbol::new("Cons"), vec![e, acc]);
        }
        Ok(acc)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat(&Token::Plus) {
                let rhs = self.mul_expr()?;
                lhs = Expr::Prim(PrimOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Token::Minus) {
                let rhs = self.mul_expr()?;
                lhs = Expr::Prim(PrimOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat(&Token::Star) {
                let rhs = self.unary_expr()?;
                lhs = Expr::Prim(PrimOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Token::Slash) {
                let rhs = self.unary_expr()?;
                lhs = Expr::Prim(PrimOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Token::Mod) {
                let rhs = self.unary_expr()?;
                lhs = Expr::Prim(PrimOp::Mod, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let r = self.unary_expr_inner();
        self.depth -= 1;
        r
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Minus) {
            let e = self.unary_expr()?;
            return Ok(match e {
                Expr::Int(v) => Expr::Int(-v),
                other => Expr::Neg(Box::new(other)),
            });
        }
        if self.eat(&Token::Not) {
            let e = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(e)));
        }
        self.app_expr()
    }

    fn app_expr(&mut self) -> Result<Expr, ParseError> {
        // `assert` binds like a function over a single atom.
        if *self.peek() == Token::Assert {
            let line = self.line();
            self.bump();
            let arg = self.atom()?;
            return Ok(Expr::Assert(Box::new(arg), line));
        }
        // Constructor application: Ctor takes at most one atom.
        if let Token::Ctor(name) = self.peek().clone() {
            self.bump();
            let name = Symbol::new(&name);
            if self.starts_atom() {
                let arg = self.atom()?;
                return Ok(Expr::Ctor(name, vec![arg]));
            }
            return Ok(Expr::Ctor(name, vec![]));
        }
        let mut head = self.atom()?;
        while self.starts_atom() {
            // Constructors as *arguments* are atoms too.
            let arg = if let Token::Ctor(name) = self.peek().clone() {
                self.bump();
                Expr::Ctor(Symbol::new(&name), vec![])
            } else {
                self.atom()?
            };
            head = Expr::App(Box::new(head), Box::new(arg));
        }
        Ok(head)
    }

    fn starts_atom(&self) -> bool {
        matches!(
            self.peek(),
            Token::Int(_)
                | Token::Ident(_)
                | Token::Ctor(_)
                | Token::True
                | Token::False
                | Token::LParen
                | Token::LBracket
        )
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Token::True => {
                self.bump();
                Ok(Expr::Bool(true))
            }
            Token::False => {
                self.bump();
                Ok(Expr::Bool(false))
            }
            Token::Ident(s) => {
                self.bump();
                Ok(Expr::Var(Symbol::new(&s)))
            }
            Token::Ctor(s) => {
                self.bump();
                Ok(Expr::Ctor(Symbol::new(&s), vec![]))
            }
            Token::LParen => {
                self.bump();
                if self.eat(&Token::RParen) {
                    return Ok(Expr::Unit);
                }
                let mut es = vec![self.expr()?];
                // Optional type ascription, ignored after parsing.
                if self.eat(&Token::Colon) {
                    let _ = self.type_expr()?;
                }
                while self.eat(&Token::Comma) {
                    es.push(self.expr_noseq()?);
                }
                self.expect(&Token::RParen)?;
                if es.len() == 1 {
                    Ok(es.pop().expect("len checked"))
                } else {
                    Ok(Expr::Tuple(es))
                }
            }
            Token::LBracket => {
                self.bump();
                let mut es = Vec::new();
                if !self.eat(&Token::RBracket) {
                    loop {
                        es.push(self.expr_noseq()?);
                        if !self.eat(&Token::Semi) {
                            break;
                        }
                    }
                    self.expect(&Token::RBracket)?;
                }
                // Desugar to Cons/Nil.
                let mut acc = Expr::Ctor(Symbol::new("Nil"), vec![]);
                for e in es.into_iter().rev() {
                    acc = Expr::Ctor(Symbol::new("Cons"), vec![e, acc]);
                }
                Ok(acc)
            }
            other => Err(self.err(&format!("expected expression, found `{other}`"))),
        }
    }

    // ---------------- types ----------------

    fn type_expr(&mut self) -> Result<TypeExpr, ParseError> {
        self.descend()?;
        // Arrows are right-associative; fold iteratively.
        let r = (|| {
            let mut parts = vec![self.type_prod()?];
            while self.eat(&Token::Arrow) {
                parts.push(self.type_prod()?);
            }
            let mut acc = parts.pop().expect("nonempty");
            while let Some(t) = parts.pop() {
                acc = TypeExpr::Arrow(Box::new(t), Box::new(acc));
            }
            Ok(acc)
        })();
        self.depth -= 1;
        r
    }

    fn type_prod(&mut self) -> Result<TypeExpr, ParseError> {
        let mut parts = vec![self.type_app()?];
        while self.eat(&Token::Star) {
            parts.push(self.type_app()?);
        }
        if parts.len() == 1 {
            Ok(parts.pop().expect("len checked"))
        } else {
            Ok(TypeExpr::Tuple(parts))
        }
    }

    fn type_app(&mut self) -> Result<TypeExpr, ParseError> {
        let mut head = self.type_atom()?;
        // Postfix application: `int list`, `('a, 'b) t`, `'a list list`.
        while let Token::Ident(name) = self.peek().clone() {
            self.bump();
            let args = match head {
                TypeExpr::App(ref n, ref a) if n == "__group" => a.clone(),
                other => vec![other],
            };
            head = TypeExpr::App(name, args);
        }
        if let TypeExpr::App(ref n, _) = head {
            if n == "__group" {
                return Err(self.err("parenthesized type group must be applied"));
            }
        }
        Ok(head)
    }

    fn type_atom(&mut self) -> Result<TypeExpr, ParseError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                match s.as_str() {
                    "int" => Ok(TypeExpr::Int),
                    "bool" => Ok(TypeExpr::Bool),
                    "unit" => Ok(TypeExpr::Unit),
                    other => Ok(TypeExpr::App(other.to_owned(), vec![])),
                }
            }
            Token::TyVar(v) => {
                self.bump();
                Ok(TypeExpr::Var(v))
            }
            Token::LParen => {
                self.bump();
                let mut parts = vec![self.type_expr()?];
                while self.eat(&Token::Comma) {
                    parts.push(self.type_expr()?);
                }
                self.expect(&Token::RParen)?;
                if parts.len() == 1 {
                    Ok(parts.pop().expect("len checked"))
                } else {
                    // Multi-argument group must be followed by a tycon.
                    Ok(TypeExpr::App("__group".to_owned(), parts))
                }
            }
            other => Err(self.err(&format!("expected type, found `{other}`"))),
        }
    }
}

/// A function parameter as parsed: a variable or a tuple of binders.
enum Param {
    Var(Symbol),
    Tuple(Vec<Option<Symbol>>),
}

fn lam_param(p: Param, body: Expr) -> Expr {
    match p {
        Param::Var(x) => Expr::Lam(x, Box::new(body)),
        Param::Tuple(binders) => {
            let fresh = Symbol::fresh("tup");
            Expr::Lam(
                fresh,
                Box::new(Expr::LetTuple(
                    binders,
                    Box::new(Expr::Var(fresh)),
                    Box::new(body),
                )),
            )
        }
    }
}

fn pattern_binder(p: Pattern, parser: &Parser) -> Result<Option<Symbol>, ParseError> {
    match p {
        Pattern::Any(b) => Ok(b),
        _ => Err(parser.err("nested constructor patterns are not supported; match again on the bound variable")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_range_from_fig1() {
        let src = r#"
let rec range i j =
  if i > j then []
  else
    let is = range (i + 1) j in
    i :: is
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.lets.len(), 1);
        assert!(p.lets[0].recursive);
        assert_eq!(p.lets[0].binds[0].name, Symbol::new("range"));
        // Two parameters = two nested lambdas.
        let Expr::Lam(_, inner) = &p.lets[0].binds[0].body else {
            panic!("expected lambda");
        };
        assert!(matches!(**inner, Expr::Lam(_, _)));
    }

    #[test]
    fn parses_insert_from_fig2() {
        let src = r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
"#;
        let p = parse_program(src).unwrap();
        let body = &p.lets[0].binds[0].body;
        // Drill to the match.
        let Expr::Lam(_, b1) = body else { panic!() };
        let Expr::Lam(_, b2) = &**b1 else { panic!() };
        let Expr::Match(_, arms) = &**b2 else { panic!() };
        assert_eq!(arms.len(), 2);
        assert!(matches!(
            &arms[0].pattern,
            Pattern::Ctor { name, binders } if *name == Symbol::new("Nil") && binders.is_empty()
        ));
        assert!(matches!(
            &arms[1].pattern,
            Pattern::Ctor { name, binders } if *name == Symbol::new("Cons") && binders.len() == 2
        ));
    }

    #[test]
    fn parses_datatype_decl() {
        let src = "type ('a, 'b) t = E | N of 'a * 'b * ('a, 'b) t * ('a, 'b) t * int";
        let p = parse_program(src).unwrap();
        let d = &p.datatypes[0];
        assert_eq!(d.params, vec!["a", "b"]);
        assert_eq!(d.ctors.len(), 2);
        assert_eq!(d.ctors[1].fields.len(), 5);
        assert!(matches!(&d.ctors[1].fields[2], TypeExpr::App(n, args) if n == "t" && args.len() == 2));
    }

    #[test]
    fn parses_tuples_and_let_tuple() {
        let e = parse_expr_str("let (a, b) = (1, 2) in a + b").unwrap();
        assert!(matches!(e, Expr::LetTuple(ref bs, _, _) if bs.len() == 2));
    }

    #[test]
    fn parses_assert_and_seq() {
        let e = parse_expr_str("assert (x <= y); f x").unwrap();
        let Expr::Let(_, first, _) = e else { panic!() };
        assert!(matches!(*first, Expr::Assert(_, _)));
    }

    #[test]
    fn parses_operator_precedence() {
        let e = parse_expr_str("1 + 2 * 3 < 10 && true").unwrap();
        let Expr::Prim(PrimOp::And, l, _) = e else { panic!() };
        let Expr::Prim(PrimOp::Lt, a, _) = *l else { panic!() };
        let Expr::Prim(PrimOp::Add, _, m) = *a else { panic!() };
        assert!(matches!(*m, Expr::Prim(PrimOp::Mul, _, _)));
    }

    #[test]
    fn parses_list_literals() {
        let e = parse_expr_str("[1; 2; 3]").unwrap();
        let Expr::Ctor(c, args) = e else { panic!() };
        assert_eq!(c, Symbol::new("Cons"));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_ctor_application() {
        let e = parse_expr_str("N (k, d, l, r, h)").unwrap();
        let Expr::Ctor(c, args) = e else { panic!() };
        assert_eq!(c, Symbol::new("N"));
        // Parsed as a single tuple argument; arity resolution spreads it.
        assert_eq!(args.len(), 1);
        assert!(matches!(&args[0], Expr::Tuple(es) if es.len() == 5));
    }

    #[test]
    fn parses_match_with_tuple_pattern() {
        let e = parse_expr_str("match p with (a, b) -> a + b").unwrap();
        let Expr::Match(_, arms) = e else { panic!() };
        assert!(matches!(&arms[0].pattern, Pattern::Tuple(bs) if bs.len() == 2));
    }

    #[test]
    fn parses_fun_with_tuple_param() {
        let e = parse_expr_str("fun (a, b) -> a + b").unwrap();
        let Expr::Lam(_, body) = e else { panic!() };
        assert!(matches!(*body, Expr::LetTuple(_, _, _)));
    }

    #[test]
    fn parses_mutual_recursion_with_and() {
        let src = "let rec f x = g x and g y = f y";
        let p = parse_program(src).unwrap();
        assert_eq!(p.lets.len(), 1);
        assert!(p.lets[0].recursive);
        assert_eq!(p.lets[0].binds.len(), 2);
    }

    #[test]
    fn rejects_nested_ctor_patterns() {
        assert!(parse_expr_str("match l with x :: (y :: z) -> x | [] -> 0").is_err());
    }

    #[test]
    fn parses_type_expressions() {
        let t = parse_type_str("int list -> ('a, 'b) t * bool").unwrap();
        let TypeExpr::Arrow(l, r) = t else { panic!() };
        assert!(matches!(*l, TypeExpr::App(ref n, _) if n == "list"));
        assert!(matches!(*r, TypeExpr::Tuple(ref parts) if parts.len() == 2));
    }

    #[test]
    fn parses_unit_and_ascription() {
        assert_eq!(parse_expr_str("()").unwrap(), Expr::Unit);
        assert!(parse_expr_str("(x : int)").is_ok());
    }

    #[test]
    fn deep_nesting_is_a_typed_error_not_a_stack_overflow() {
        let deep = format!("{}1{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = parse_expr_str(&deep).unwrap_err();
        assert!(e.msg.contains("depth limit"), "{e}");

        let nots = format!("{}true", "not ".repeat(100_000));
        assert!(parse_expr_str(&nots).is_err());

        let ty = format!("{}int{}", "(".repeat(100_000), ")".repeat(100_000));
        assert!(parse_type_str(&ty).is_err());

        // Moderate nesting must still parse.
        let ok = format!("{}1{}", "(".repeat(60), ")".repeat(60));
        assert!(parse_expr_str(&ok).is_ok());
    }

    #[test]
    fn long_flat_programs_are_not_depth_limited() {
        // Sequences, cons chains, and arrow types fold iteratively;
        // only *nesting* is bounded.
        let seq = vec!["assert (0 <= 1)"; 5_000].join("; ");
        assert!(parse_expr_str(&seq).is_ok());

        let cons = format!("{}[]", "1 :: ".repeat(5_000));
        assert!(parse_expr_str(&cons).is_ok());

        let arrows = format!("{}int", "int -> ".repeat(5_000));
        assert!(parse_type_str(&arrows).is_ok());
    }

    #[test]
    fn integer_overflow_is_a_typed_error_with_line() {
        let e = parse_expr_str("\n99999999999999999999999999").unwrap_err();
        assert!(e.msg.contains("overflow"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn truncated_inputs_are_typed_errors() {
        for src in [
            "let x = ",
            "let rec f x =",
            "if x then",
            "match xs with",
            "fun",
            "let (a, b",
            "type t =",
        ] {
            assert!(parse_program(src).is_err(), "{src:?} should fail to parse");
        }
    }
}
