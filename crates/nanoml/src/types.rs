//! ML types, schemes, and the datatype environment.

use crate::ast::{DataDecl, TypeExpr};
use dsolve_logic::Symbol;
use std::collections::HashMap;
use std::fmt;

/// A monomorphic ML type (possibly containing unification variables).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MlType {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// A type variable (unification variable or quantified variable).
    Var(u32),
    /// `t1 -> t2`
    Arrow(Box<MlType>, Box<MlType>),
    /// `t1 * ... * tn` (n ≥ 2)
    Tuple(Vec<MlType>),
    /// `(t1, ..., tn) name` — includes `list` and the built-in `map`.
    Data(Symbol, Vec<MlType>),
}

impl MlType {
    /// The built-in list type.
    pub fn list(elem: MlType) -> MlType {
        MlType::Data(Symbol::new("list"), vec![elem])
    }

    /// The built-in finite-map type of §5.
    pub fn map(k: MlType, v: MlType) -> MlType {
        MlType::Data(Symbol::new("map"), vec![k, v])
    }

    /// Free type variables in order of first occurrence.
    pub fn free_vars(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<u32>) {
        match self {
            MlType::Int | MlType::Bool | MlType::Unit => {}
            MlType::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            MlType::Arrow(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            MlType::Tuple(ts) | MlType::Data(_, ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
        }
    }

    /// Simultaneous substitution of type variables.
    pub fn apply(&self, map: &HashMap<u32, MlType>) -> MlType {
        match self {
            MlType::Int | MlType::Bool | MlType::Unit => self.clone(),
            MlType::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            MlType::Arrow(a, b) => {
                MlType::Arrow(Box::new(a.apply(map)), Box::new(b.apply(map)))
            }
            MlType::Tuple(ts) => MlType::Tuple(ts.iter().map(|t| t.apply(map)).collect()),
            MlType::Data(n, ts) => {
                MlType::Data(*n, ts.iter().map(|t| t.apply(map)).collect())
            }
        }
    }
}

impl fmt::Display for MlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlType::Int => write!(f, "int"),
            MlType::Bool => write!(f, "bool"),
            MlType::Unit => write!(f, "unit"),
            MlType::Var(v) => write!(f, "'t{v}"),
            MlType::Arrow(a, b) => write!(f, "({a} -> {b})"),
            MlType::Tuple(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            MlType::Data(n, ts) => {
                if ts.is_empty() {
                    write!(f, "{n}")
                } else {
                    write!(f, "(")?;
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ") {n}")
                }
            }
        }
    }
}

/// A type scheme `∀ vars. ty`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scheme {
    /// Quantified variables in a canonical order.
    pub vars: Vec<u32>,
    /// Body type.
    pub ty: MlType,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: MlType) -> Scheme {
        Scheme { vars: vec![], ty }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            write!(f, "forall")?;
            for v in &self.vars {
                write!(f, " 't{v}")?;
            }
            write!(f, ". ")?;
        }
        write!(f, "{}", self.ty)
    }
}

/// A constructor's signature within its datatype: field types over the
/// datatype's parameters (`MlType::Var(i)` is the i-th parameter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CtorSig {
    /// The datatype this constructor belongs to.
    pub datatype: Symbol,
    /// Index of the constructor within the declaration.
    pub index: usize,
    /// Number of datatype parameters.
    pub arity_params: usize,
    /// Field types (over parameter variables `0..arity_params`).
    pub fields: Vec<MlType>,
}

/// The datatype environment: declarations plus constructor signatures.
#[derive(Clone, Debug, Default)]
pub struct DataEnv {
    decls: HashMap<Symbol, DeclSig>,
    ctors: HashMap<Symbol, CtorSig>,
}

/// An elaborated datatype declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeclSig {
    /// Type constructor name.
    pub name: Symbol,
    /// Number of type parameters.
    pub params: usize,
    /// Constructor names in declaration order.
    pub ctor_names: Vec<Symbol>,
    /// Field types per constructor (over parameter variables).
    pub ctor_fields: Vec<Vec<MlType>>,
}

/// An error elaborating datatype declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataError(pub String);

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "datatype error: {}", self.0)
    }
}

impl std::error::Error for DataError {}

impl DataEnv {
    /// Creates an environment containing the built-in `list` datatype and
    /// the abstract `map` type.
    pub fn with_builtins() -> DataEnv {
        let mut env = DataEnv::default();
        let list = Symbol::new("list");
        env.decls.insert(
            list,
            DeclSig {
                name: list,
                params: 1,
                ctor_names: vec![Symbol::new("Nil"), Symbol::new("Cons")],
                ctor_fields: vec![
                    vec![],
                    vec![MlType::Var(0), MlType::Data(list, vec![MlType::Var(0)])],
                ],
            },
        );
        env.ctors.insert(
            Symbol::new("Nil"),
            CtorSig {
                datatype: list,
                index: 0,
                arity_params: 1,
                fields: vec![],
            },
        );
        env.ctors.insert(
            Symbol::new("Cons"),
            CtorSig {
                datatype: list,
                index: 1,
                arity_params: 1,
                fields: vec![MlType::Var(0), MlType::Data(list, vec![MlType::Var(0)])],
            },
        );
        // `map` is abstract: no constructors (values are built by the
        // `new`/`set` primitives).
        env.decls.insert(
            Symbol::new("map"),
            DeclSig {
                name: Symbol::new("map"),
                params: 2,
                ctor_names: vec![],
                ctor_fields: vec![],
            },
        );
        env
    }

    /// Adds the declarations of a parsed program.
    ///
    /// # Errors
    ///
    /// Reports duplicate type or constructor names, unknown types in field
    /// positions, and arity mismatches.
    pub fn add_program(&mut self, datatypes: &[DataDecl]) -> Result<(), DataError> {
        // First pass: register names/arities so recursive references work.
        for d in datatypes {
            if self.decls.contains_key(&d.name) {
                return Err(DataError(format!("duplicate datatype `{}`", d.name)));
            }
            self.decls.insert(
                d.name,
                DeclSig {
                    name: d.name,
                    params: d.params.len(),
                    ctor_names: d.ctors.iter().map(|c| c.name).collect(),
                    ctor_fields: vec![],
                },
            );
        }
        // Second pass: elaborate field types.
        for d in datatypes {
            let param_ix: HashMap<&str, u32> = d
                .params
                .iter()
                .enumerate()
                .map(|(i, p)| (p.as_str(), i as u32))
                .collect();
            let mut all_fields = Vec::new();
            for (index, c) in d.ctors.iter().enumerate() {
                if self.ctors.contains_key(&c.name) {
                    return Err(DataError(format!("duplicate constructor `{}`", c.name)));
                }
                let fields: Vec<MlType> = c
                    .fields
                    .iter()
                    .map(|t| self.elaborate(t, &param_ix))
                    .collect::<Result<_, _>>()?;
                self.ctors.insert(
                    c.name,
                    CtorSig {
                        datatype: d.name,
                        index,
                        arity_params: d.params.len(),
                        fields: fields.clone(),
                    },
                );
                all_fields.push(fields);
            }
            self.decls
                .get_mut(&d.name)
                .expect("registered in first pass")
                .ctor_fields = all_fields;
        }
        Ok(())
    }

    /// Elaborates a surface type over a parameter mapping.
    pub fn elaborate(
        &self,
        t: &TypeExpr,
        params: &HashMap<&str, u32>,
    ) -> Result<MlType, DataError> {
        match t {
            TypeExpr::Int => Ok(MlType::Int),
            TypeExpr::Bool => Ok(MlType::Bool),
            TypeExpr::Unit => Ok(MlType::Unit),
            TypeExpr::Var(v) => params
                .get(v.as_str())
                .map(|i| MlType::Var(*i))
                .ok_or_else(|| DataError(format!("unbound type variable '{v}"))),
            TypeExpr::Arrow(a, b) => Ok(MlType::Arrow(
                Box::new(self.elaborate(a, params)?),
                Box::new(self.elaborate(b, params)?),
            )),
            TypeExpr::Tuple(ts) => Ok(MlType::Tuple(
                ts.iter()
                    .map(|t| self.elaborate(t, params))
                    .collect::<Result<_, _>>()?,
            )),
            TypeExpr::App(name, args) => {
                let sym = Symbol::new(name);
                let decl = self
                    .decls
                    .get(&sym)
                    .ok_or_else(|| DataError(format!("unknown type `{name}`")))?;
                if decl.params != args.len() {
                    return Err(DataError(format!(
                        "type `{name}` expects {} parameter(s), got {}",
                        decl.params,
                        args.len()
                    )));
                }
                Ok(MlType::Data(
                    sym,
                    args.iter()
                        .map(|t| self.elaborate(t, params))
                        .collect::<Result<_, _>>()?,
                ))
            }
        }
    }

    /// Looks up a constructor.
    pub fn ctor(&self, name: Symbol) -> Option<&CtorSig> {
        self.ctors.get(&name)
    }

    /// Looks up a datatype declaration.
    pub fn decl(&self, name: Symbol) -> Option<&DeclSig> {
        self.decls.get(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn builtin_list_is_registered() {
        let env = DataEnv::with_builtins();
        let cons = env.ctor(Symbol::new("Cons")).unwrap();
        assert_eq!(cons.datatype, Symbol::new("list"));
        assert_eq!(cons.fields.len(), 2);
    }

    #[test]
    fn elaborates_avl_map_decl() {
        let prog = parse_program(
            "type ('a, 'b) t = E | N of 'a * 'b * ('a, 'b) t * ('a, 'b) t * int",
        )
        .unwrap();
        let mut env = DataEnv::with_builtins();
        env.add_program(&prog.datatypes).unwrap();
        let n = env.ctor(Symbol::new("N")).unwrap();
        assert_eq!(n.fields.len(), 5);
        assert_eq!(n.fields[0], MlType::Var(0));
        assert_eq!(n.fields[4], MlType::Int);
        assert!(matches!(&n.fields[2], MlType::Data(s, args) if *s == Symbol::new("t") && args.len() == 2));
    }

    #[test]
    fn duplicate_ctor_rejected() {
        let prog = parse_program("type t1 = A\ntype t2 = A").unwrap();
        let mut env = DataEnv::with_builtins();
        assert!(env.add_program(&prog.datatypes).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let prog = parse_program("type t = A of mystery").unwrap();
        let mut env = DataEnv::with_builtins();
        assert!(env.add_program(&prog.datatypes).is_err());
    }

    #[test]
    fn scheme_display() {
        let s = Scheme {
            vars: vec![0],
            ty: MlType::Arrow(Box::new(MlType::Var(0)), Box::new(MlType::Var(0))),
        };
        assert_eq!(s.to_string(), "forall 't0. ('t0 -> 't0)");
    }

    #[test]
    fn type_apply_substitutes() {
        let t = MlType::list(MlType::Var(3));
        let mut m = HashMap::new();
        m.insert(3, MlType::Int);
        assert_eq!(t.apply(&m), MlType::list(MlType::Int));
    }
}
