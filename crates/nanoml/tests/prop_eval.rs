//! Property tests for the NanoML front end and interpreter:
//! arithmetic agrees with Rust, sorting programs really sort, and
//! inference is stable across runs.

use dsolve_nanoml::{
    builtin_env, infer_program, parse_program, resolve_program, DataEnv, Evaluator,
    TypeEnv, Value,
};
use dsolve_logic::Symbol;
use proptest::prelude::*;

/// A random arithmetic expression over two fixed variables, rendered as
/// both NanoML source and a Rust closure.
#[derive(Clone, Debug)]
enum Arith {
    A,
    B,
    Lit(i8),
    Add(Box<Arith>, Box<Arith>),
    Sub(Box<Arith>, Box<Arith>),
    Mul(Box<Arith>, Box<Arith>),
}

impl Arith {
    fn source(&self) -> String {
        match self {
            Arith::A => "a".into(),
            Arith::B => "b".into(),
            Arith::Lit(v) => {
                if *v < 0 {
                    format!("(0 - {})", -(*v as i64))
                } else {
                    v.to_string()
                }
            }
            Arith::Add(x, y) => format!("({} + {})", x.source(), y.source()),
            Arith::Sub(x, y) => format!("({} - {})", x.source(), y.source()),
            Arith::Mul(x, y) => format!("({} * {})", x.source(), y.source()),
        }
    }

    fn eval(&self, a: i64, b: i64) -> i64 {
        match self {
            Arith::A => a,
            Arith::B => b,
            Arith::Lit(v) => *v as i64,
            Arith::Add(x, y) => x.eval(a, b).wrapping_add(y.eval(a, b)),
            Arith::Sub(x, y) => x.eval(a, b).wrapping_sub(y.eval(a, b)),
            Arith::Mul(x, y) => x.eval(a, b).wrapping_mul(y.eval(a, b)),
        }
    }
}

fn arb_arith() -> impl Strategy<Value = Arith> {
    let leaf = prop_oneof![
        Just(Arith::A),
        Just(Arith::B),
        any::<i8>().prop_map(Arith::Lit),
    ];
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Arith::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone())
                .prop_map(|(x, y)| Arith::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner)
                .prop_map(|(x, y)| Arith::Mul(Box::new(x), Box::new(y))),
        ]
    })
}

fn run_program(src: &str, name: &str) -> Value {
    let prog = parse_program(src).unwrap();
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).unwrap();
    let prog = resolve_program(&prog, &data).unwrap();
    let env = Evaluator::new().eval_program(&prog, &builtin_env()).unwrap();
    env[&Symbol::new(name)].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter's arithmetic agrees with Rust's.
    #[test]
    fn arithmetic_matches_rust(e in arb_arith(), a in -50i64..50, b in -50i64..50) {
        let src = format!("let f a b = {}\nlet result = f ({}) ({})",
            e.source(),
            if a < 0 { format!("0 - {}", -a) } else { a.to_string() },
            if b < 0 { format!("0 - {}", -b) } else { b.to_string() });
        let got = run_program(&src, "result");
        prop_assert_eq!(got, Value::Int(e.eval(a, b)));
    }

    /// Insertion sort in NanoML sorts, for arbitrary inputs.
    #[test]
    fn insertsort_sorts(xs in prop::collection::vec(-100i64..100, 0..24)) {
        let items = xs
            .iter()
            .map(|v| if *v < 0 { format!("0 - {}", -v) } else { v.to_string() })
            .collect::<Vec<_>>()
            .join("; ");
        let src = format!(
            r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec insertsort l =
  match l with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
let result = insertsort [{items}]
"#
        );
        let got: Vec<i64> = run_program(&src, "result")
            .as_list()
            .unwrap()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Type inference is deterministic: two runs give the same scheme.
    #[test]
    fn inference_is_deterministic(n in 0usize..5) {
        let src = format!(
            "let rec iter k f x = if k <= {n} then x else iter (k - 1) f (f x)"
        );
        let parse = || {
            let prog = parse_program(&src).unwrap();
            let mut data = DataEnv::with_builtins();
            data.add_program(&prog.datatypes).unwrap();
            let prog = resolve_program(&prog, &data).unwrap();
            infer_program(&prog, &data, &TypeEnv::new()).unwrap()
        };
        let a = parse();
        let b = parse();
        prop_assert_eq!(
            a.lets[0].binds[0].scheme.ty.to_string(),
            b.lets[0].binds[0].scheme.ty.to_string()
        );
    }

    /// Comparison chains evaluate consistently with Rust.
    #[test]
    fn comparisons_match_rust(a in -20i64..20, b in -20i64..20) {
        let fmt = |v: i64| if v < 0 { format!("(0 - {})", -v) } else { v.to_string() };
        let src = format!(
            "let result = if {a} < {b} then 1 else if {a} = {b} then 0 else 0 - 1",
            a = fmt(a),
            b = fmt(b)
        );
        let want = match a.cmp(&b) {
            std::cmp::Ordering::Less => 1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => -1,
        };
        prop_assert_eq!(run_program(&src, "result"), Value::Int(want));
    }
}
