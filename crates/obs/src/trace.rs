//! Chrome `trace_event` sink and validator.
//!
//! Events are written in the JSON Array Format that `chrome://tracing`
//! and Perfetto consume: an opening `[`, then one event object per line
//! (each line after the first prefixed with `,`), then a closing `]`
//! written by [`TraceSink::finish`]. Both viewers tolerate a missing
//! `]`, so a trace from a crashed run still loads — and our own
//! [`validate_trace`] accepts the truncated form too.
//!
//! Only complete `"ph":"X"` events are emitted for spans: the duration
//! is known when the span guard drops, so there is no risk of an
//! unmatched `B`/`E` pair even when a panic unwinds through open spans.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Global source of small trace thread ids (`tid` fields). Thread ids
/// from the OS are large and unstable; these are dense and stable
/// within a process, which keeps the viewer's track list tidy.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static MY_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// The calling thread's dense trace id.
pub fn trace_tid() -> u64 {
    MY_TID.with(|&t| t)
}

/// An argument value attached to a trace event.
#[derive(Clone, Debug)]
pub enum Arg {
    /// Unsigned integer argument.
    U64(u64),
    /// String argument.
    Str(String),
}

impl From<u64> for Arg {
    fn from(v: u64) -> Arg {
        Arg::U64(v)
    }
}

impl From<&str> for Arg {
    fn from(v: &str) -> Arg {
        Arg::Str(v.to_string())
    }
}

impl From<String> for Arg {
    fn from(v: String) -> Arg {
        Arg::Str(v)
    }
}

/// Escapes `s` into `out` as JSON string contents (no surrounding
/// quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct TraceWriter {
    out: BufWriter<File>,
    first: bool,
    finished: bool,
}

/// A thread-safe Chrome trace_event writer anchored at its creation
/// instant (all timestamps are microseconds since then).
pub struct TraceSink {
    w: Mutex<TraceWriter>,
    start: Instant,
    fail_io: std::sync::atomic::AtomicBool,
    dropped: AtomicU64,
}

impl TraceSink {
    /// Opens `path` for writing and emits the array opener plus a
    /// process-name metadata event.
    pub fn create(path: &Path) -> std::io::Result<TraceSink> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(b"[\n")?;
        let sink = TraceSink {
            w: Mutex::new(TraceWriter {
                out,
                first: true,
                finished: false,
            }),
            start: Instant::now(),
            fail_io: std::sync::atomic::AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        };
        sink.emit_raw(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"dsolve\"}}",
        );
        Ok(sink)
    }

    /// Microseconds elapsed since the sink was created at `t`.
    pub fn ts_us(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.start).as_micros() as u64
    }

    /// Simulates a trace-writer I/O failure (the `trace-io` fault
    /// point): every subsequent event write and the closing bracket are
    /// dropped, exactly as a really failed `write` is. Verification must
    /// be unaffected — the trace file is simply truncated.
    pub fn simulate_io_failure(&self) {
        self.fail_io.store(true, Ordering::Relaxed);
    }

    /// Events dropped because the writer was (simulated-)failing.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn emit_raw(&self, line: &str) {
        if self.fail_io.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut w = self.w.lock().unwrap_or_else(|e| e.into_inner());
        if w.finished {
            return;
        }
        let prefix: &[u8] = if w.first { b"" } else { b",\n" };
        w.first = false;
        // Trace IO failure must never fail verification; drop the event.
        let _ = w.out.write_all(prefix);
        let _ = w.out.write_all(line.as_bytes());
    }

    fn render_common(name: &str, cat: &str, tid: u64) -> String {
        let mut line = String::with_capacity(128);
        line.push_str("{\"name\":\"");
        escape_into(&mut line, name);
        line.push_str("\",\"cat\":\"");
        escape_into(&mut line, cat);
        let _ = write!(line, "\",\"pid\":1,\"tid\":{tid}");
        line
    }

    fn render_args(line: &mut String, args: &[(&str, Arg)]) {
        if args.is_empty() {
            return;
        }
        line.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            escape_into(line, k);
            line.push_str("\":");
            match v {
                Arg::U64(n) => {
                    let _ = write!(line, "{n}");
                }
                Arg::Str(s) => {
                    line.push('"');
                    escape_into(line, s);
                    line.push('"');
                }
            }
        }
        line.push('}');
    }

    /// Emits a complete (`"ph":"X"`) span event.
    pub fn emit_complete(
        &self,
        name: &str,
        cat: &str,
        start: Instant,
        dur_us: u64,
        args: &[(&str, Arg)],
    ) {
        let mut line = Self::render_common(name, cat, trace_tid());
        let _ = write!(
            line,
            ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
            self.ts_us(start),
            dur_us
        );
        Self::render_args(&mut line, args);
        line.push('}');
        self.emit_raw(&line);
    }

    /// Emits an instant (`"ph":"i"`) event.
    pub fn emit_instant(&self, name: &str, cat: &str, args: &[(&str, Arg)]) {
        let mut line = Self::render_common(name, cat, trace_tid());
        let _ = write!(
            line,
            ",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}",
            self.ts_us(Instant::now())
        );
        Self::render_args(&mut line, args);
        line.push('}');
        self.emit_raw(&line);
    }

    /// Closes the JSON array and flushes. Further events are dropped.
    pub fn finish(&self) {
        let mut w = self.w.lock().unwrap_or_else(|e| e.into_inner());
        if w.finished {
            return;
        }
        w.finished = true;
        if self.fail_io.load(Ordering::Relaxed) {
            return;
        }
        let _ = w.out.write_all(b"\n]\n");
        let _ = w.out.flush();
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------
// Validation: a minimal JSON parser plus trace_event schema checks,
// used by the schema tests and the check.sh trace smoke.
// ---------------------------------------------------------------------

/// A parsed JSON value (just enough for trace validation).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {}", self.i, msg)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .s
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // Multi-byte UTF-8: copy the whole sequence through.
                    let len = match c {
                        c if c < 0x80 => 1,
                        c if c >= 0xf0 => 4,
                        c if c >= 0xe0 => 3,
                        _ => 2,
                    };
                    let chunk = self
                        .s
                        .get(self.i..self.i + len)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?,
                    );
                    self.i += len;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                // A trace from a crashed run may simply end here.
                None => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Summary of a validated trace.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Complete (`X`) span events.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Metadata (`M`) events.
    pub metadata: usize,
    /// Distinct span names seen.
    pub names: Vec<String>,
}

impl TraceSummary {
    /// Whether any span with this exact name was seen.
    pub fn has_span(&self, name: &str) -> bool {
        self.names.iter().any(|n| n == name)
    }

    /// Whether any span name starts with `prefix`.
    pub fn has_span_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Validates trace text against the Chrome trace_event schema: the
/// document must parse as a JSON array (a missing closing `]` is
/// tolerated, matching the viewers), every element must be an object
/// with string `name`/`ph` fields, and every `X` event must carry
/// numeric non-negative `ts` and `dur`.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text.trim_end().trim_end_matches(','))?;
    let events = match doc {
        Json::Arr(events) => events,
        _ => return Err("trace is not a JSON array".into()),
    };
    let mut summary = TraceSummary::default();
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        let name = match ev.get("name").and_then(Json::as_str) {
            Some(n) => n,
            None => return fail("missing string 'name'"),
        };
        let ph = match ev.get("ph").and_then(Json::as_str) {
            Some(p) => p,
            None => return fail("missing string 'ph'"),
        };
        summary.events += 1;
        match ph {
            "X" => {
                for field in ["ts", "dur"] {
                    match ev.get(field).and_then(Json::as_num) {
                        Some(v) if v >= 0.0 => {}
                        _ => return fail(&format!("'X' event missing numeric '{field}'")),
                    }
                }
                summary.spans += 1;
                if !summary.names.iter().any(|n| n == name) {
                    summary.names.push(name.to_string());
                }
            }
            "i" => summary.instants += 1,
            "M" => summary.metadata += 1,
            other => return fail(&format!("unsupported phase '{other}'")),
        }
    }
    Ok(summary)
}

/// Reads and validates a trace file.
pub fn validate_trace_file(path: &Path) -> Result<TraceSummary, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    validate_trace(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_special_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn parses_round_trip() {
        let v = parse_json(r#"{"a":[1,2.5,"x\"y"],"b":null,"c":true}"#).unwrap();
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[1].as_num(), Some(2.5));
                assert_eq!(items[2].as_str(), Some("x\"y"));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn truncated_array_is_tolerated() {
        let text = "[\n{\"name\":\"p\",\"ph\":\"M\",\"pid\":1}\n,{\"name\":\"s\",\
                    \"ph\":\"X\",\"ts\":1,\"dur\":2}";
        let summary = validate_trace(text).unwrap();
        assert_eq!(summary.events, 2);
        assert_eq!(summary.spans, 1);
    }

    #[test]
    fn rejects_span_without_duration() {
        let text = "[{\"name\":\"s\",\"ph\":\"X\",\"ts\":1}]";
        assert!(validate_trace(text).is_err());
    }
}
