//! Thread-local theory timers.
//!
//! The theory layer's entry points are free functions
//! (`check_assignment` and friends) with no solver handle in scope, so
//! per-theory time is accumulated in a thread-local array and drained
//! into the owning [`crate::Obs`] registry when the enclosing SMT query
//! records itself. Residue left by a query that never records (e.g. a
//! standalone session check in a unit test) is simply attributed to the
//! next query on the same thread — bounded, and irrelevant in the
//! pipeline where every charged query records.

use crate::metrics::{TheoryKind, NTHEORIES};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

thread_local! {
    static ACC: Cell<[u64; NTHEORIES]> = const { Cell::new([0; NTHEORIES]) };
}

/// Global switch for the timers. On by default; the overhead guard
/// flips it off to measure an un-instrumented baseline.
static TIMERS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables theory timing globally.
pub fn set_timers_enabled(on: bool) {
    TIMERS_ENABLED.store(on, Ordering::Relaxed);
}

/// Adds `ns` nanoseconds to the calling thread's accumulator for
/// `kind`.
#[inline]
pub fn add(kind: TheoryKind, ns: u64) {
    ACC.with(|acc| {
        let mut a = acc.get();
        a[kind.index()] += ns;
        acc.set(a);
    });
}

/// Times `f` against `kind`. When timers are disabled this is a single
/// relaxed load plus the call.
#[inline]
pub fn time<T>(kind: TheoryKind, f: impl FnOnce() -> T) -> T {
    if !TIMERS_ENABLED.load(Ordering::Relaxed) {
        return f();
    }
    let start = Instant::now();
    let r = f();
    add(kind, start.elapsed().as_nanos() as u64);
    r
}

/// Takes and zeroes the calling thread's accumulator.
pub fn drain() -> [u64; NTHEORIES] {
    ACC.with(|acc| acc.replace([0; NTHEORIES]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates_and_drains() {
        drain();
        let v = time(TheoryKind::Euf, || 41 + 1);
        assert_eq!(v, 42);
        add(TheoryKind::Sat, 100);
        let a = drain();
        assert_eq!(a[TheoryKind::Sat.index()], 100);
        assert_eq!(drain(), [0; NTHEORIES]);
    }

    #[test]
    fn disabled_timers_record_nothing() {
        drain();
        set_timers_enabled(false);
        time(TheoryKind::Simplex, || std::thread::sleep(std::time::Duration::from_millis(1)));
        assert_eq!(drain()[TheoryKind::Simplex.index()], 0);
        set_timers_enabled(true);
    }
}
