//! # dsolve-obs
//!
//! Zero-dependency observability for the verification pipeline:
//!
//! * **Spans** — hierarchical timing regions emitted as Chrome
//!   `trace_event` complete events when a trace sink is attached
//!   ([`Obs::span`], [`Obs::phase_span`]); phase spans also accumulate
//!   into the metrics registry, so metrics work with tracing off.
//! * **Metrics** — a typed registry of lock-striped counters, gauges,
//!   and log-scale histograms ([`Metrics`]), snapshot into plain data
//!   ([`Snapshot`]) with hand-rolled JSON rendering for `figure10`.
//! * **Provenance** — every solved SMT query is attributed to the
//!   constraint that asked for it ([`QueryOrigin`], [`CostTable`]), so
//!   `--stats` can rank constraints by solver time and the trace names
//!   query events after NanoML source locations.
//! * **Logging** — a leveled stderr sink ([`log`]) replacing scattered
//!   `eprintln!` lines, filtered by `DSOLVE_LOG` and `--quiet`.
//!
//! One [`Obs`] handle exists per verification job, cloned (cheaply, it
//! is an `Arc`) into each layer. Span guards emit on `Drop`, so traces
//! stay balanced when a panic or budget exhaustion unwinds the stack.

#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod theory;
pub mod trace;

mod provenance;

pub use metrics::{
    bucket_floor_us, Counter, Gauge, Histogram, Metrics, ObsPhase, TheoryKind, HIST_BUCKETS,
    NPHASES, NTHEORIES,
};
pub use provenance::{ConstraintCost, CostTable, QueryOrigin};
pub use trace::{validate_trace, validate_trace_file, Arg, TraceSink, TraceSummary};

use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

struct Inner {
    enabled: bool,
    metrics: Metrics,
    costs: CostTable,
    trace: Option<TraceSink>,
}

/// A shared observability handle: metrics registry + cost table +
/// optional trace sink. Clones share the same registry.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.inner.enabled)
            .field("trace", &self.inner.trace.is_some())
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// A live handle with metrics recording on and no trace sink — the
    /// default for every job.
    pub fn new() -> Obs {
        Obs {
            inner: Arc::new(Inner {
                enabled: true,
                metrics: Metrics::new(),
                costs: CostTable::new(),
                trace: None,
            }),
        }
    }

    /// A disabled handle: every record call is a no-op. All callers
    /// share one static instance, so this allocates nothing — solver
    /// constructors use it as their placeholder before the pipeline
    /// hands them the job's live handle.
    pub fn off() -> Obs {
        static OFF: OnceLock<Obs> = OnceLock::new();
        OFF.get_or_init(|| Obs {
            inner: Arc::new(Inner {
                enabled: false,
                metrics: Metrics::new(),
                costs: CostTable::new(),
                trace: None,
            }),
        })
        .clone()
    }

    /// A live handle that additionally streams Chrome trace events to
    /// `path`. Call [`Obs::finish`] at process exit to close the JSON
    /// array (viewers tolerate a missing close after a crash).
    pub fn with_trace(path: &Path) -> std::io::Result<Obs> {
        Ok(Obs {
            inner: Arc::new(Inner {
                enabled: true,
                metrics: Metrics::new(),
                costs: CostTable::new(),
                trace: Some(TraceSink::create(path)?),
            }),
        })
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The per-constraint cost table.
    pub fn costs(&self) -> &CostTable {
        &self.inner.costs
    }

    /// Whether a trace sink is attached.
    pub fn tracing(&self) -> bool {
        self.inner.trace.is_some()
    }

    /// Whether this handle records at all.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Simulates a trace-writer I/O failure from now on (no-op without a
    /// sink) — the `trace-io` fault point. Subsequent events are dropped
    /// the same way a really failed write is.
    pub fn simulate_trace_io_failure(&self) {
        if let Some(t) = &self.inner.trace {
            t.simulate_io_failure();
        }
    }

    /// Closes the trace array (no-op without a sink).
    pub fn finish(&self) {
        if let Some(t) = &self.inner.trace {
            t.finish();
        }
    }

    /// Opens a span in category `cat`. The event (and any metrics) are
    /// recorded when the returned guard drops, which keeps traces
    /// balanced across panics and early returns.
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> Span {
        if !self.inner.enabled {
            return Span::disabled();
        }
        Span {
            obs: Some(self.clone()),
            cat,
            name: name.into(),
            phase: None,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Opens a span for a pipeline phase: the duration lands in
    /// `metrics.phase_ns[phase]` and, when tracing, a `cat:"phase"`
    /// event.
    pub fn phase_span(&self, phase: ObsPhase) -> Span {
        if !self.inner.enabled {
            return Span::disabled();
        }
        Span {
            obs: Some(self.clone()),
            cat: "phase",
            name: phase.name().to_string(),
            phase: Some(phase),
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Emits an instant event (no-op without a trace sink).
    pub fn instant(&self, cat: &'static str, name: &str, args: &[(&str, Arg)]) {
        if let Some(t) = &self.inner.trace {
            t.emit_instant(name, cat, args);
        }
    }

    /// Records one solved SMT query: drains the thread's theory
    /// timers, updates the latency histogram, attributes cost to the
    /// origin, and (when tracing) emits a query event named after the
    /// origin's source label.
    ///
    /// The thread-local theory accumulator is drained even on disabled
    /// handles so residue never bleeds between jobs.
    pub fn record_query(&self, origin: Option<&QueryOrigin>, start: Instant, verdict: &str) {
        let dur = start.elapsed();
        let theory = theory::drain();
        if !self.inner.enabled {
            return;
        }
        let m = self.metrics();
        m.query_time.record(dur);
        for (i, &ns) in theory.iter().enumerate() {
            if ns > 0 {
                m.theory_ns[i].add(ns);
            }
        }
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        if let Some(o) = origin {
            self.inner.costs.add(o, ns);
        }
        if let Some(t) = &self.inner.trace {
            let name: &str = origin.map(|o| &*o.label).unwrap_or("smt-check");
            let mut args: Vec<(&str, Arg)> = vec![("verdict", Arg::Str(verdict.to_string()))];
            if let Some(o) = origin {
                args.push(("constraint", Arg::U64(o.constraint as u64)));
                args.push(("round", Arg::U64(o.round)));
                args.push(("worker", Arg::U64(o.worker as u64)));
            }
            t.emit_complete(name, "smt", start, dur.as_micros() as u64, &args);
        }
    }

    /// Snapshots the registry and the top-`k` most expensive
    /// constraints into plain data.
    pub fn snapshot(&self, top_k: usize) -> Snapshot {
        let m = self.metrics();
        let mut phase_ns = [0u64; NPHASES];
        for (o, c) in phase_ns.iter_mut().zip(&m.phase_ns) {
            *o = c.get();
        }
        let mut theory_ns = [0u64; NTHEORIES];
        for (o, c) in theory_ns.iter_mut().zip(&m.theory_ns) {
            *o = c.get();
        }
        Snapshot {
            checks: m.smt_checks.get(),
            cache_hits: m.smt_cache_hits.get(),
            cache_misses: m.smt_cache_misses.get(),
            queries: m.smt_queries.get(),
            refused: m.smt_refused.get(),
            sessions: m.smt_sessions.get(),
            scoped_checks: m.smt_scoped_checks.get(),
            certs_checked: m.smt_certs_checked.get(),
            certs_failed: m.smt_certs_failed.get(),
            cache_poison_recoveries: m.cache_poison_recoveries.get(),
            workers_quarantined: m.workers_quarantined.get(),
            fixpoint_iterations: m.fixpoint_iterations.get(),
            fixpoint_rounds: m.fixpoint_rounds.get(),
            phase_ns,
            theory_ns,
            query_time_buckets: m.query_time.buckets(),
            query_time_count: m.query_time.count(),
            query_time_sum_ns: m.query_time.sum_ns(),
            top_constraints: self.inner.costs.top(top_k),
        }
    }
}

/// An open span; emits on drop. Obtained from [`Obs::span`] /
/// [`Obs::phase_span`].
pub struct Span {
    obs: Option<Obs>,
    cat: &'static str,
    name: String,
    phase: Option<ObsPhase>,
    start: Instant,
    args: Vec<(&'static str, Arg)>,
}

impl Span {
    fn disabled() -> Span {
        Span {
            obs: None,
            cat: "",
            name: String::new(),
            phase: None,
            start: Instant::now(),
            args: Vec::new(),
        }
    }

    /// Attaches an argument shown in the trace viewer.
    pub fn arg(mut self, key: &'static str, value: impl Into<Arg>) -> Span {
        if self.obs.is_some() {
            self.args.push((key, value.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(obs) = &self.obs else { return };
        let dur = self.start.elapsed();
        if let Some(p) = self.phase {
            obs.metrics().phase_ns[p.index()]
                .add(dur.as_nanos().min(u64::MAX as u128) as u64);
        }
        if let Some(t) = &obs.inner.trace {
            t.emit_complete(
                &self.name,
                self.cat,
                self.start,
                dur.as_micros() as u64,
                &self.args,
            );
        }
    }
}

/// Plain-data snapshot of a job's metrics, renderable as JSON.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Validity checks requested (cache hits included).
    pub checks: u64,
    /// Checks answered from the query cache.
    pub cache_hits: u64,
    /// Checks not answered from the cache.
    pub cache_misses: u64,
    /// Queries actually solved (the charged count).
    pub queries: u64,
    /// Queries refused on entry by budget exhaustion.
    pub refused: u64,
    /// Incremental sessions opened.
    pub sessions: u64,
    /// Scoped checks inside sessions.
    pub scoped_checks: u64,
    /// Verdicts whose certificate replayed successfully (`--certify`).
    pub certs_checked: u64,
    /// Verdicts downgraded because their certificate failed (`--certify`).
    pub certs_failed: u64,
    /// Query-cache shard locks found poisoned and recovered.
    pub cache_poison_recoveries: u64,
    /// Workers quarantined after a panic (partitions weakened).
    pub workers_quarantined: u64,
    /// Fixpoint weakening iterations.
    pub fixpoint_iterations: u64,
    /// Fixpoint rounds.
    pub fixpoint_rounds: u64,
    /// Per-phase wall time, nanoseconds, indexed by [`ObsPhase`].
    pub phase_ns: [u64; NPHASES],
    /// Per-theory solve time, nanoseconds, indexed by [`TheoryKind`].
    pub theory_ns: [u64; NTHEORIES],
    /// Query latency histogram bucket counts (log2 µs buckets).
    pub query_time_buckets: [u64; HIST_BUCKETS],
    /// Query latency histogram sample count.
    pub query_time_count: u64,
    /// Query latency histogram sum, nanoseconds.
    pub query_time_sum_ns: u64,
    /// Most expensive constraints by attributed solver time.
    pub top_constraints: Vec<ConstraintCost>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Snapshot {
    /// Fraction of cache-consulted checks answered by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.checks == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.checks as f64
        }
    }

    /// Renders the snapshot as a JSON object, `indent` spaces deep,
    /// matching the repo's hand-rolled JSON style.
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let inner = " ".repeat(indent + 2);
        let mut s = String::from("{\n");
        let phases: Vec<String> = ObsPhase::NAMES
            .iter()
            .zip(&self.phase_ns)
            .map(|(n, ns)| format!("\"{n}\": {ns}"))
            .collect();
        let _ = writeln!(s, "{inner}\"phase_ns\": {{ {} }},", phases.join(", "));
        let _ = writeln!(s, "{inner}\"checks\": {},", self.checks);
        let _ = writeln!(s, "{inner}\"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(s, "{inner}\"cache_misses\": {},", self.cache_misses);
        let _ = writeln!(s, "{inner}\"cache_hit_rate\": {:.4},", self.cache_hit_rate());
        let _ = writeln!(s, "{inner}\"queries\": {},", self.queries);
        let _ = writeln!(s, "{inner}\"refused\": {},", self.refused);
        let _ = writeln!(s, "{inner}\"sessions\": {},", self.sessions);
        let _ = writeln!(s, "{inner}\"scoped_checks\": {},", self.scoped_checks);
        let _ = writeln!(s, "{inner}\"certs_checked\": {},", self.certs_checked);
        let _ = writeln!(s, "{inner}\"certs_failed\": {},", self.certs_failed);
        let _ = writeln!(
            s,
            "{inner}\"cache_poison_recoveries\": {},",
            self.cache_poison_recoveries
        );
        let _ = writeln!(
            s,
            "{inner}\"workers_quarantined\": {},",
            self.workers_quarantined
        );
        let _ = writeln!(
            s,
            "{inner}\"fixpoint_iterations\": {},",
            self.fixpoint_iterations
        );
        let _ = writeln!(s, "{inner}\"fixpoint_rounds\": {},", self.fixpoint_rounds);
        let theories: Vec<String> = TheoryKind::NAMES
            .iter()
            .zip(&self.theory_ns)
            .map(|(n, ns)| format!("\"{n}\": {ns}"))
            .collect();
        let _ = writeln!(s, "{inner}\"theory_ns\": {{ {} }},", theories.join(", "));
        // Trim trailing empty buckets so rows stay readable.
        let last = self
            .query_time_buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let buckets: Vec<String> = self.query_time_buckets[..last]
            .iter()
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(
            s,
            "{inner}\"query_time_us\": {{ \"count\": {}, \"sum_ns\": {}, \"buckets\": [{}] }},",
            self.query_time_count,
            self.query_time_sum_ns,
            buckets.join(", ")
        );
        let tops: Vec<String> = self
            .top_constraints
            .iter()
            .map(|c| {
                format!(
                    "{{ \"constraint\": {}, \"label\": \"{}\", \"total_ns\": {}, \"queries\": {} }}",
                    c.constraint,
                    json_escape(&c.label),
                    c.total_ns,
                    c.queries
                )
            })
            .collect();
        let _ = writeln!(s, "{inner}\"top_constraints\": [{}]", tops.join(", "));
        let _ = write!(s, "{pad}}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let obs = Obs::off();
        obs.metrics().smt_queries.add(0); // registry exists but stays unread
        obs.record_query(None, Instant::now(), "valid");
        let snap = obs.snapshot(5);
        assert_eq!(snap.query_time_count, 0);
        drop(obs.span("x", "y"));
    }

    #[test]
    fn snapshot_json_parses_back() {
        let obs = Obs::new();
        obs.metrics().smt_checks.add(10);
        obs.metrics().smt_cache_hits.add(4);
        obs.metrics().smt_cache_misses.add(6);
        obs.metrics().smt_queries.add(6);
        obs.record_query(
            Some(&QueryOrigin {
                constraint: 2,
                label: Arc::from("assert on line 3"),
                round: 1,
                worker: 0,
            }),
            Instant::now(),
            "valid",
        );
        let snap = obs.snapshot(5);
        let json = snap.to_json(0);
        let doc = trace::parse_json(&json).expect("snapshot json parses");
        assert_eq!(doc.get("checks").and_then(trace::Json::as_num), Some(10.0));
        assert_eq!(
            doc.get("cache_hit_rate").and_then(trace::Json::as_num),
            Some(0.4)
        );
        assert!(doc.get("top_constraints").is_some());
    }

    #[test]
    fn spans_emit_to_trace_file() {
        let dir = std::env::temp_dir().join("obs-lib-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace-{}.json", std::process::id()));
        {
            let obs = Obs::with_trace(&path).unwrap();
            {
                let _s = obs.phase_span(ObsPhase::Parse);
                let _inner = obs.span("fixpoint", "round 0").arg("constraints", 3u64);
            }
            obs.record_query(None, Instant::now(), "valid");
            obs.finish();
        }
        let summary = validate_trace_file(&path).unwrap();
        assert!(summary.spans >= 3);
        assert!(summary.has_span("parse"));
        assert!(summary.has_span("round 0"));
        let _ = std::fs::remove_file(&path);
    }
}
