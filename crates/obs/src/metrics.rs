//! Typed metrics registry: lock-striped counters, gauges, and log-scale
//! histograms.
//!
//! Every instrument is wait-free for writers. [`Counter`] stripes its
//! total over cache-line-aligned atomics indexed by a per-thread stripe
//! id, so `--jobs N` workers bump disjoint lines instead of bouncing one
//! hot word between cores. Reads ([`Counter::get`]) sum the stripes and
//! are only used at reporting boundaries, never in hot paths.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of counter stripes. A small power of two: enough to separate
/// the handful of worker threads the fixpoint spawns, cheap to sum.
pub const STRIPES: usize = 16;

/// One cache line worth of counter, so adjacent stripes never share a
/// line and concurrent workers do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

/// Global source of per-thread stripe indices. Threads claim stripes
/// round-robin at first use; with `STRIPES` ≥ worker count each worker
/// effectively owns a line.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// Monotone counter striped over cache lines.
#[derive(Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        MY_STRIPE.with(|&s| self.stripes[s].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sums all stripes. Reporting-path only; values written by other
    /// threads before a happens-before edge (e.g. a join) are included.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-writer-wins gauge (instantaneous level, e.g. queue depth).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Reads the level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` counts samples whose
/// microsecond value has `i` significant bits: bucket 0 holds `0µs`,
/// bucket `i` holds `[2^(i-1), 2^i)` µs, and the last bucket absorbs
/// everything from ~17 s up.
pub const HIST_BUCKETS: usize = 26;

/// Fixed log2-bucket latency histogram over microseconds.
///
/// Buckets are plain (unstriped) atomics: one histogram record per SMT
/// query is orders of magnitude rarer than the solver work producing
/// it, so contention is negligible while the sum stays exact.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample of `us` microseconds.
#[inline]
pub fn bucket_of(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound (µs) of bucket `i`.
pub fn bucket_floor_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Copies out the bucket counts.
    pub fn buckets(&self) -> [u64; HIST_BUCKETS] {
        let mut out = [0u64; HIST_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// Pipeline phases with dedicated wall-time accumulators. The order is
/// the pipeline order; `NAMES` must stay in sync.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsPhase {
    /// NanoML parsing.
    Parse,
    /// Datatype registration and name resolution.
    Resolve,
    /// Hindley–Milner type inference.
    Infer,
    /// `.mlq` spec parsing and specialization.
    Spec,
    /// Liquid constraint generation and splitting.
    ConstraintGen,
    /// Iterative-weakening fixpoint.
    Fixpoint,
    /// Concrete obligation checks under the solved assignment.
    Obligations,
}

/// Number of [`ObsPhase`] variants.
pub const NPHASES: usize = 7;

impl ObsPhase {
    /// Snake-case names used in trace events and JSON snapshots.
    pub const NAMES: [&'static str; NPHASES] = [
        "parse",
        "resolve",
        "infer",
        "spec",
        "constraint_gen",
        "fixpoint",
        "obligations",
    ];

    /// Index into phase-keyed arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake-case name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self.index()]
    }
}

/// Theory components with dedicated solve-time accumulators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TheoryKind {
    /// CDCL propositional search.
    Sat,
    /// Congruence closure.
    Euf,
    /// Linear integer arithmetic (branch-and-bound simplex).
    Simplex,
    /// Array axiom instantiation.
    Arrays,
    /// Set canonicalization and saturation lemmas.
    Sets,
}

/// Number of [`TheoryKind`] variants.
pub const NTHEORIES: usize = 5;

impl TheoryKind {
    /// Snake-case names used in JSON snapshots.
    pub const NAMES: [&'static str; NTHEORIES] = ["sat", "euf", "simplex", "arrays", "sets"];

    /// Index into theory-keyed arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The snake-case name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self.index()]
    }
}

/// The typed metrics registry: every instrument the pipeline records
/// into, by name. One registry per verification job.
#[derive(Default)]
pub struct Metrics {
    /// Validity checks requested of the SMT layer (cache hits included).
    pub smt_checks: Counter,
    /// Checks answered from the shared query cache.
    pub smt_cache_hits: Counter,
    /// Checks not answered from the cache (solved, or refused on entry).
    pub smt_cache_misses: Counter,
    /// Queries actually solved (charged against `--max-smt-queries`).
    pub smt_queries: Counter,
    /// Queries refused on entry by budget/deadline exhaustion.
    pub smt_refused: Counter,
    /// Incremental sessions opened.
    pub smt_sessions: Counter,
    /// Push/pop-scoped checks inside incremental sessions.
    pub smt_scoped_checks: Counter,
    /// Definite verdicts whose certificate replayed successfully
    /// (`--certify` only).
    pub smt_certs_checked: Counter,
    /// Definite verdicts downgraded to `Unknown` because their
    /// certificate failed to replay (`--certify` only).
    pub smt_certs_failed: Counter,
    /// Query-cache shard locks found poisoned and recovered.
    pub cache_poison_recoveries: Counter,
    /// Fixpoint/obligation workers that panicked and were quarantined
    /// (their partitions conservatively weakened).
    pub workers_quarantined: Counter,
    /// Fixpoint weakening iterations (constraint re-checks).
    pub fixpoint_iterations: Counter,
    /// Fixpoint rounds (BFS levels sequentially, barriers in parallel).
    pub fixpoint_rounds: Counter,
    /// Current fixpoint worklist depth.
    pub queue_depth: Gauge,
    /// Wall time per solved SMT query.
    pub query_time: Histogram,
    /// Wall time per pipeline phase, nanoseconds, indexed by [`ObsPhase`].
    pub phase_ns: [Counter; NPHASES],
    /// Solve time per theory component, nanoseconds, indexed by
    /// [`TheoryKind`].
    pub theory_ns: [Counter; NTHEORIES],
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn histogram_buckets_are_log2_of_us() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_floor_us(0), 0);
        assert_eq!(bucket_floor_us(1), 1);
        assert_eq!(bucket_floor_us(11), 1024);
    }

    #[test]
    fn histogram_totals_match() {
        let h = Histogram::new();
        for us in [0u64, 1, 5, 1000, 2_000_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets().iter().sum::<u64>(), 5);
        assert_eq!(h.sum_ns(), (1 + 5 + 1000 + 2_000_000) * 1000);
    }
}
