//! Query provenance: where an SMT query came from, and a sharded cost
//! table aggregating solver time per originating constraint.
//!
//! The liquid solver stamps each solver handle with a [`QueryOrigin`]
//! before discharging a constraint; the SMT layer attributes every
//! *solved* query (cache hits cost nothing and are not attributed) to
//! that origin in the [`CostTable`]. `--stats` renders the top-K and
//! the trace names each query event after the origin label.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Identity of the program point a query discharges.
#[derive(Clone, Debug)]
pub struct QueryOrigin {
    /// Index of the subtyping constraint or obligation in the split
    /// constraint list.
    pub constraint: u32,
    /// Human-readable NanoML source location, rendered from the
    /// constraint's `Origin` (e.g. `assert on line 12`,
    /// ``argument of `insert` ``).
    pub label: Arc<str>,
    /// Fixpoint round the query was issued in (0 before the first
    /// round and during obligation checking).
    pub round: u64,
    /// Worker index that issued the query (0 under `--jobs 1`).
    pub worker: u32,
}

/// Aggregated cost of one originating constraint.
#[derive(Clone, Debug)]
pub struct ConstraintCost {
    /// Constraint index.
    pub constraint: u32,
    /// Source label (see [`QueryOrigin::label`]).
    pub label: String,
    /// Total solver wall time attributed, nanoseconds.
    pub total_ns: u64,
    /// Solved queries attributed.
    pub queries: u64,
}

#[derive(Default)]
struct Cost {
    ns: u64,
    queries: u64,
    label: Option<Arc<str>>,
}

const COST_SHARDS: usize = 16;

/// Lock-striped map from constraint index to accumulated solver cost.
/// Sharded by constraint index so parallel workers discharging
/// different constraints rarely contend.
pub struct CostTable {
    shards: [Mutex<HashMap<u32, Cost>>; COST_SHARDS],
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable {
            shards: [(); COST_SHARDS].map(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl CostTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        CostTable::default()
    }

    /// Attributes `ns` nanoseconds of solver time to `origin`.
    pub fn add(&self, origin: &QueryOrigin, ns: u64) {
        let shard = &self.shards[origin.constraint as usize % COST_SHARDS];
        let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
        let cost = map.entry(origin.constraint).or_default();
        cost.ns += ns;
        cost.queries += 1;
        if cost.label.is_none() {
            cost.label = Some(Arc::clone(&origin.label));
        }
    }

    /// The `k` most expensive constraints by attributed time, ties
    /// broken by constraint index so equal-cost entries order
    /// deterministically.
    pub fn top(&self, k: usize) -> Vec<ConstraintCost> {
        let mut all: Vec<ConstraintCost> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            all.extend(map.iter().map(|(&constraint, cost)| ConstraintCost {
                constraint,
                label: cost
                    .label
                    .as_deref()
                    .unwrap_or("<unknown>")
                    .to_string(),
                total_ns: cost.ns,
                queries: cost.queries,
            }));
        }
        all.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then(a.constraint.cmp(&b.constraint))
        });
        all.truncate(k);
        all
    }

    /// Total attributed time and query count across all constraints.
    pub fn totals(&self) -> (u64, u64) {
        let mut ns = 0;
        let mut queries = 0;
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            for cost in map.values() {
                ns += cost.ns;
                queries += cost.queries;
            }
        }
        (ns, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin(c: u32, label: &str) -> QueryOrigin {
        QueryOrigin {
            constraint: c,
            label: Arc::from(label),
            round: 0,
            worker: 0,
        }
    }

    #[test]
    fn top_sorts_by_time_then_index() {
        let t = CostTable::new();
        t.add(&origin(3, "c3"), 50);
        t.add(&origin(1, "c1"), 100);
        t.add(&origin(2, "c2"), 100);
        let top = t.top(2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].constraint, top[0].total_ns), (1, 100));
        assert_eq!((top[1].constraint, top[1].total_ns), (2, 100));
        assert_eq!(t.totals(), (250, 3));
    }

    #[test]
    fn accumulates_per_constraint() {
        let t = CostTable::new();
        for _ in 0..4 {
            t.add(&origin(7, "assert on line 9"), 10);
        }
        let top = t.top(5);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].queries, 4);
        assert_eq!(top[0].total_ns, 40);
        assert_eq!(top[0].label, "assert on line 9");
    }
}
