//! Leveled stderr event sink replacing ad-hoc `eprintln!` progress and
//! debug lines.
//!
//! The level is process-global, initialized lazily from the
//! environment and overridable by the CLI (`--quiet`):
//!
//! * `DSOLVE_LOG=error|warn|info|debug` picks the level explicitly;
//! * otherwise `DSOLVE_TRACE`/`DSOLVE_DEBUG` imply `debug` and
//!   `DSOLVE_PROGRESS` implies `info` (backward compatible with the
//!   pre-obs env switches);
//! * otherwise the default is `warn`, matching the pipeline's historic
//!   silent-by-default behavior.
//!
//! Call sites guard on [`enabled`] before formatting, so a disabled
//! level costs one relaxed atomic load.

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures the user must see.
    Error = 0,
    /// Suspicious but recoverable conditions.
    Warn = 1,
    /// Progress reporting (solve headers, round summaries).
    Info = 2,
    /// Per-iteration internals (weakening dumps).
    Debug = 3,
}

const UNINIT: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNINIT);

fn parse_level(s: &str) -> Option<Level> {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "info" => Some(Level::Info),
        "debug" | "trace" => Some(Level::Debug),
        _ => None,
    }
}

fn level_from_env() -> Level {
    if let Ok(v) = std::env::var("DSOLVE_LOG") {
        if let Some(l) = parse_level(&v) {
            return l;
        }
    }
    if std::env::var("DSOLVE_TRACE").is_ok() || std::env::var("DSOLVE_DEBUG").is_ok() {
        return Level::Debug;
    }
    if std::env::var("DSOLVE_PROGRESS").is_ok() {
        return Level::Info;
    }
    Level::Warn
}

fn current() -> u8 {
    let l = LEVEL.load(Ordering::Relaxed);
    if l != UNINIT {
        return l;
    }
    let init = level_from_env() as u8;
    // Racing initializers compute the same value; last store wins.
    LEVEL.store(init, Ordering::Relaxed);
    init
}

/// Overrides the level (e.g. `--quiet` sets [`Level::Error`]).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    (l as u8) <= current()
}

/// Writes one message to stderr if the level passes the filter.
pub fn emit(l: Level, msg: &str) {
    if enabled(l) {
        eprintln!("{msg}");
    }
}

/// Logs at error level (always shown, even under `--quiet`).
#[macro_export]
macro_rules! log_error {
    ($($t:tt)*) => {
        $crate::log::emit($crate::log::Level::Error, &format!($($t)*))
    };
}

/// Logs at warn level.
#[macro_export]
macro_rules! log_warn {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, &format!($($t)*));
        }
    };
}

/// Logs at info level (progress reporting).
#[macro_export]
macro_rules! log_info {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, &format!($($t)*));
        }
    };
}

/// Logs at debug level (per-iteration internals).
#[macro_export]
macro_rules! log_debug {
    ($($t:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, &format!($($t)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(parse_level("INFO"), Some(Level::Info));
        assert_eq!(parse_level("trace"), Some(Level::Debug));
        assert_eq!(parse_level("bogus"), None);
    }

    #[test]
    fn set_level_filters() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        set_level(Level::Warn);
    }
}
