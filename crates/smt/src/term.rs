//! Hash-consed first-order terms shared by the theory solvers.
//!
//! `logic::Expr` trees are flattened into a term DAG. Interpreted
//! structure (linear arithmetic) is split off into [`LinExpr`]s whose
//! "atoms" are ids of non-arithmetic terms; everything else (measures,
//! `Sel`/`Upd`, set constructors, non-linear products) becomes an
//! uninterpreted application handled by congruence closure.

use crate::Rat;
use dsolve_logic::{Binop, Expr, Sort, SortEnv, Symbol};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a hash-consed term in a [`TermArena`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Index form, for dense arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A flattened term node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// Integer constant.
    Int(i64),
    /// Boolean constant (an EUF individual; `true ≠ false` is built in).
    Bool(bool),
    /// Free variable with its sort.
    Var(Symbol, Sort),
    /// Uninterpreted application (measures, `Sel`, `Upd`, set ops,
    /// non-linear arithmetic). Reserved head symbols are produced by
    /// [`TermArena::flatten`]: `$sel`, `$upd`, `$union`, `$single`,
    /// `$empty`, `$mul`, `$div`, `$mod`, `$in`.
    App(Symbol, Vec<TermId>),
}

/// Arena of hash-consed terms.
#[derive(Default)]
pub struct TermArena {
    terms: Vec<Term>,
    sorts: Vec<Sort>,
    dedup: HashMap<Term, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a term with an explicit sort.
    pub fn intern(&mut self, t: Term, sort: Sort) -> TermId {
        if let Some(&id) = self.dedup.get(&t) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term arena overflow"));
        self.dedup.insert(t.clone(), id);
        self.terms.push(t);
        self.sorts.push(sort);
        id
    }

    /// The node for `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// The sort of `id`.
    pub fn sort(&self, id: TermId) -> &Sort {
        &self.sorts[id.index()]
    }

    /// All ids, in creation order.
    pub fn ids(&self) -> impl Iterator<Item = TermId> {
        (0..self.terms.len() as u32).map(TermId)
    }

    /// Flattens a `logic` expression into the arena.
    ///
    /// `Ite` must have been eliminated by preprocessing.
    ///
    /// # Panics
    ///
    /// Panics on `Expr::Ite` (the solver lifts those first) and on
    /// variables missing from `env` (callers bind every free variable).
    pub fn flatten(&mut self, e: &Expr, env: &SortEnv) -> TermId {
        match e {
            Expr::Int(v) => self.intern(Term::Int(*v), Sort::Int),
            Expr::Bool(b) => self.intern(Term::Bool(*b), Sort::Bool),
            Expr::Var(x) => {
                let sort = env
                    .sort_of_var(*x)
                    .cloned()
                    .unwrap_or_else(|| panic!("unbound variable `{x}` reached the solver"));
                self.intern(Term::Var(*x, sort.clone()), sort)
            }
            Expr::Neg(a) => {
                // -a = 0 - a; keep arithmetic interpreted via LinExpr, but
                // when an arena term is needed, represent as $mul(-1, a).
                let ta = self.flatten(a, env);
                let m1 = self.intern(Term::Int(-1), Sort::Int);
                self.intern(Term::App(Symbol::new("$mul"), vec![m1, ta]), Sort::Int)
            }
            Expr::Binop(op, a, b) => {
                let ta = self.flatten(a, env);
                let tb = self.flatten(b, env);
                let head = match op {
                    Binop::Add => "$add",
                    Binop::Sub => "$sub",
                    Binop::Mul => "$mul",
                    Binop::Div => "$div",
                    Binop::Mod => "$mod",
                };
                self.intern(Term::App(Symbol::new(head), vec![ta, tb]), Sort::Int)
            }
            Expr::Ite(..) => panic!("Ite must be eliminated before flattening"),
            Expr::App(f, args) => {
                let targs: Vec<TermId> = args.iter().map(|a| self.flatten(a, env)).collect();
                let ret = env
                    .sort_of_func(*f)
                    .map(|fs| fs.ret.clone())
                    .unwrap_or(Sort::Obj(Symbol::new("unknown")));
                self.intern(Term::App(*f, targs), ret)
            }
            Expr::Sel(m, i) => {
                let tm = self.flatten(m, env);
                let ti = self.flatten(i, env);
                self.intern(Term::App(Symbol::new("$sel"), vec![tm, ti]), Sort::Int)
            }
            Expr::Upd(m, i, v) => {
                let tm = self.flatten(m, env);
                let ti = self.flatten(i, env);
                let tv = self.flatten(v, env);
                self.intern(Term::App(Symbol::new("$upd"), vec![tm, ti, tv]), Sort::Map)
            }
            Expr::SetEmpty => self.intern(Term::App(Symbol::new("$empty"), vec![]), Sort::Set),
            Expr::SetSingle(x) => {
                let tx = self.flatten(x, env);
                self.intern(Term::App(Symbol::new("$single"), vec![tx]), Sort::Set)
            }
            Expr::SetUnion(a, b) => {
                let ta = self.flatten(a, env);
                let tb = self.flatten(b, env);
                self.intern(Term::App(Symbol::new("$union"), vec![ta, tb]), Sort::Set)
            }
        }
    }

    /// Linearizes an integer expression into `constant + Σ coeff·atom`.
    ///
    /// Non-arithmetic subterms (variables, applications) become atoms keyed
    /// by their arena id; products with a constant side distribute, other
    /// products fall back to an uninterpreted `$mul` atom.
    pub fn linearize(&mut self, e: &Expr, env: &SortEnv) -> LinExpr {
        match e {
            Expr::Int(v) => LinExpr::constant(Rat::from_int(*v)),
            Expr::Neg(a) => self.linearize(a, env).scale(Rat::from_int(-1)),
            Expr::Binop(Binop::Add, a, b) => {
                let mut la = self.linearize(a, env);
                la.add_assign(&self.linearize(b, env));
                la
            }
            Expr::Binop(Binop::Sub, a, b) => {
                let mut la = self.linearize(a, env);
                la.add_assign(&self.linearize(b, env).scale(Rat::from_int(-1)));
                la
            }
            Expr::Binop(Binop::Mul, a, b) => {
                let la = self.linearize(a, env);
                let lb = self.linearize(b, env);
                if let Some(c) = la.as_constant() {
                    lb.scale(c)
                } else if let Some(c) = lb.as_constant() {
                    la.scale(c)
                } else {
                    // Non-linear: opaque atom.
                    let id = self.flatten(e, env);
                    LinExpr::atom(id)
                }
            }
            Expr::Binop(Binop::Div | Binop::Mod, _, _) => {
                let id = self.flatten(e, env);
                LinExpr::atom(id)
            }
            _ => {
                let id = self.flatten(e, env);
                LinExpr::atom(id)
            }
        }
    }

    /// Renders a term for diagnostics.
    pub fn display(&self, id: TermId) -> String {
        match self.term(id) {
            Term::Int(v) => v.to_string(),
            Term::Bool(b) => b.to_string(),
            Term::Var(x, _) => x.to_string(),
            Term::App(f, args) => {
                let parts: Vec<String> = args.iter().map(|a| self.display(*a)).collect();
                format!("{f}({})", parts.join(", "))
            }
        }
    }
}

impl fmt::Debug for TermArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "TermArena[{} terms]", self.terms.len())
    }
}

/// A linear combination `constant + Σ coeff·atom` over term atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinExpr {
    /// Constant offset.
    pub constant: Rat,
    /// Coefficients per atom id (no zero coefficients are stored).
    pub terms: BTreeMap<TermId, Rat>,
}

impl LinExpr {
    /// The constant linear expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            constant: c,
            terms: BTreeMap::new(),
        }
    }

    /// A single atom with coefficient one.
    pub fn atom(id: TermId) -> LinExpr {
        let mut terms = BTreeMap::new();
        terms.insert(id, Rat::ONE);
        LinExpr {
            constant: Rat::ZERO,
            terms,
        }
    }

    /// If the expression is a constant, returns it.
    pub fn as_constant(&self) -> Option<Rat> {
        if self.terms.is_empty() {
            Some(self.constant)
        } else {
            None
        }
    }

    /// Scales by a rational.
    #[must_use]
    pub fn scale(mut self, c: Rat) -> LinExpr {
        if c.is_zero() {
            return LinExpr::constant(Rat::ZERO);
        }
        self.constant = self.constant * c;
        for v in self.terms.values_mut() {
            *v = *v * c;
        }
        self
    }

    /// Adds another linear expression in place.
    pub fn add_assign(&mut self, other: &LinExpr) {
        self.constant += other.constant;
        for (id, c) in &other.terms {
            let entry = self.terms.entry(*id).or_insert(Rat::ZERO);
            *entry += *c;
            if entry.is_zero() {
                self.terms.remove(id);
            }
        }
    }

    /// `self - other`.
    #[must_use]
    pub fn minus(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        out.add_assign(&other.clone().scale(Rat::from_int(-1)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_expr;

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        for v in ["x", "y", "z", "i", "j"] {
            env.bind(Symbol::new(v), Sort::Int);
        }
        env.bind(Symbol::new("m"), Sort::Map);
        env
    }

    #[test]
    fn hash_consing_dedupes() {
        let mut a = TermArena::new();
        let env = env();
        let e = parse_expr("x + y").unwrap();
        let t1 = a.flatten(&e, &env);
        let t2 = a.flatten(&e, &env);
        assert_eq!(t1, t2);
    }

    #[test]
    fn linearize_combines_terms() {
        let mut a = TermArena::new();
        let env = env();
        let e = parse_expr("x + 2 * x + 3 - 1").unwrap();
        let l = a.linearize(&e, &env);
        assert_eq!(l.constant, Rat::from_int(2));
        assert_eq!(l.terms.len(), 1);
        let coeff = *l.terms.values().next().unwrap();
        assert_eq!(coeff, Rat::from_int(3));
    }

    #[test]
    fn linearize_cancellation() {
        let mut a = TermArena::new();
        let env = env();
        let e = parse_expr("x - x").unwrap();
        let l = a.linearize(&e, &env);
        assert_eq!(l.as_constant(), Some(Rat::ZERO));
    }

    #[test]
    fn nonlinear_becomes_atom() {
        let mut a = TermArena::new();
        let env = env();
        let e = parse_expr("x * y").unwrap();
        let l = a.linearize(&e, &env);
        assert!(l.as_constant().is_none());
        assert_eq!(l.terms.len(), 1);
        let (id, _) = l.terms.iter().next().unwrap();
        assert!(matches!(a.term(*id), Term::App(f, _) if f.as_str() == "$mul"));
    }

    #[test]
    fn sel_is_an_int_atom() {
        let mut a = TermArena::new();
        let env = env();
        let e = parse_expr("Sel(m, i) + 1").unwrap();
        let l = a.linearize(&e, &env);
        assert_eq!(l.constant, Rat::from_int(1));
        assert_eq!(l.terms.len(), 1);
    }

    #[test]
    fn minus_subtracts() {
        let mut a = TermArena::new();
        let env = env();
        let l1 = a.linearize(&parse_expr("x + 3").unwrap(), &env);
        let l2 = a.linearize(&parse_expr("x + 1").unwrap(), &env);
        let d = l1.minus(&l2);
        assert_eq!(d.as_constant(), Some(Rat::from_int(2)));
    }
}
