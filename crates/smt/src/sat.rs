//! A CDCL SAT solver.
//!
//! Implements the standard loop: unit propagation with two watched
//! literals, first-UIP conflict analysis with clause learning, activity
//! (VSIDS-style) branching, and geometric restarts. The theory layer
//! drives it lazily: each full propositional model is checked against the
//! theories and refuted with a blocking clause when theory-inconsistent.

use dsolve_logic::deadline_expired;
use std::fmt;
use std::time::Instant;

/// A propositional variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BVar(pub u32);

/// A literal: a variable with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `v`.
    pub fn pos(v: BVar) -> Lit {
        Lit(v.0 << 1)
    }

    /// Negative literal of `v`.
    pub fn neg(v: BVar) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Literal of `v` with the given sign (`true` = positive).
    pub fn new(v: BVar, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> BVar {
        BVar(self.0 >> 1)
    }

    /// Whether this is a positive literal.
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.sign() { "" } else { "~" }, self.var().0)
    }
}

/// Result of a SAT search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// A model was found (consult [`CdclSolver::model_value`]).
    Sat,
    /// The clause set is unsatisfiable.
    Unsat,
    /// The search budget (deadline or conflict cap) ran out first.
    Unknown,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Assign {
    Unassigned,
    True,
    False,
}

type ClauseRef = usize;

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use dsolve_smt::{BVar, CdclSolver, Lit, SatResult};
/// let mut s = CdclSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(vec![Lit::neg(a)]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.model_value(b), true);
/// ```
pub struct CdclSolver {
    nvars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Watch lists indexed by literal.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<Assign>,
    /// Decision level per variable.
    level: Vec<u32>,
    /// Antecedent clause per variable (for conflict analysis).
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    /// Empty clause added directly.
    unsat: bool,
    /// Original literals of lemmas added while a scope was open, kept
    /// so [`CdclSolver::pop_scope`] can replay them unsimplified (the
    /// in-place clause may have had literals stripped against scoped
    /// level-0 units, which would bake scoped assumptions into a
    /// clause that outlives the scope).
    lemma_store: Vec<Vec<Lit>>,
    /// Open scopes: clause count, root-trail length, lemma-store
    /// length, and the `unsat` flag at push time.
    scope_marks: Vec<(usize, usize, usize, bool)>,
}

impl Default for CdclSolver {
    fn default() -> CdclSolver {
        CdclSolver::new()
    }
}

impl CdclSolver {
    /// Creates an empty solver.
    pub fn new() -> CdclSolver {
        CdclSolver {
            nvars: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: Vec::new(),
            act_inc: 1.0,
            unsat: false,
            lemma_store: Vec::new(),
            scope_marks: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> BVar {
        let v = BVar(u32::try_from(self.nvars).expect("too many SAT variables"));
        self.nvars += 1;
        self.assign.push(Assign::Unassigned);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.nvars
    }

    /// Adds a clause. May only be called between `solve` calls (the solver
    /// backtracks to level 0 before returning, and blocking clauses are
    /// added there). Clauses added while a scope is open are discarded by
    /// the matching [`CdclSolver::pop_scope`].
    pub fn add_clause(&mut self, lits: Vec<Lit>) {
        self.add_clause_inner(lits);
    }

    /// Adds a *lemma*: a clause the caller guarantees is valid in the
    /// background theory (a theory blocking clause, an axiom instance, a
    /// saturation lemma). Lemmas survive [`CdclSolver::pop_scope`] — on
    /// pop they are replayed from their original literals, so scoped
    /// level-0 simplification cannot leak into the retained clause.
    pub fn add_lemma(&mut self, lits: Vec<Lit>) {
        if !self.scope_marks.is_empty() {
            self.lemma_store.push(lits.clone());
        }
        self.add_clause_inner(lits);
    }

    /// Opens an assertion scope. The solver first backtracks to level 0,
    /// so the scope mark cleanly separates root-level state.
    pub fn push_scope(&mut self) {
        self.reset_to_root();
        self.scope_marks.push((
            self.clauses.len(),
            self.trail.len(),
            self.lemma_store.len(),
            self.unsat,
        ));
    }

    /// Closes the innermost scope: drops every clause added since the
    /// matching [`CdclSolver::push_scope`] (scoped asserts *and* learned
    /// clauses, which may depend on them), unassigns root-trail entries
    /// made since, and replays retained lemmas. Unit propagation is
    /// restarted from the trail head, restoring the propagation fixpoint
    /// of the surviving clause set.
    pub fn pop_scope(&mut self) {
        self.reset_to_root();
        let (clause_mark, trail_mark, lemma_mark, was_unsat) =
            self.scope_marks.pop().expect("pop without matching push");
        // Unassign root-level assignments made inside the scope. Reasons
        // of surviving prefix entries always predate the scope's clauses
        // (a reason is recorded at enqueue time), so truncation below
        // cannot dangle them.
        while self.trail.len() > trail_mark {
            let l = self.trail.pop().expect("nonempty trail");
            let v = l.var().0 as usize;
            self.assign[v] = Assign::Unassigned;
            self.reason[v] = None;
        }
        self.prop_head = 0;
        // Drop scoped clauses and any watch-list entries pointing at them.
        for w in &mut self.watches {
            w.retain(|&cref| cref < clause_mark);
        }
        self.clauses.truncate(clause_mark);
        self.unsat = was_unsat;
        // Replay lemmas recorded inside the scope; if an enclosing scope
        // is still open, add_lemma re-records them for its pop.
        let replay: Vec<Vec<Lit>> = self.lemma_store.split_off(lemma_mark);
        for lits in replay {
            self.add_lemma(lits);
        }
    }

    fn add_clause_inner(&mut self, mut lits: Vec<Lit>) {
        debug_assert!(self.trail_lim.is_empty(), "add_clause above level 0");
        // Simplify: dedupe, drop tautologies and false literals.
        lits.sort();
        lits.dedup();
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return; // x ∨ ¬x: tautology
            }
            i += 1;
        }
        lits.retain(|l| self.value(*l) != Assign::False || self.level[l.var().0 as usize] > 0);
        if lits.iter().any(|l| self.value(*l) == Assign::True && self.level[l.var().0 as usize] == 0) {
            return; // already satisfied at level 0
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) {
                    self.unsat = true;
                }
            }
            _ => {
                let cref = self.clauses.len();
                self.watches[lits[0].negate().index()].push(cref);
                self.watches[lits[1].negate().index()].push(cref);
                self.clauses.push(lits);
            }
        }
    }

    fn value(&self, l: Lit) -> Assign {
        match self.assign[l.var().0 as usize] {
            Assign::Unassigned => Assign::Unassigned,
            Assign::True => {
                if l.sign() {
                    Assign::True
                } else {
                    Assign::False
                }
            }
            Assign::False => {
                if l.sign() {
                    Assign::False
                } else {
                    Assign::True
                }
            }
        }
    }

    /// The model value of `v` after `solve` returned `Sat`.
    pub fn model_value(&self, v: BVar) -> bool {
        matches!(self.assign[v.0 as usize], Assign::True)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) -> bool {
        match self.value(l) {
            Assign::True => true,
            Assign::False => false,
            Assign::Unassigned => {
                let v = l.var().0 as usize;
                self.assign[v] = if l.sign() { Assign::True } else { Assign::False };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.prop_head < self.trail.len() {
            let l = self.trail[self.prop_head];
            self.prop_head += 1;
            // Clauses watching ¬l need attention.
            let mut ws = std::mem::take(&mut self.watches[l.index()]);
            let mut keep = Vec::with_capacity(ws.len());
            let mut conflict = None;
            while let Some(cref) = ws.pop() {
                if conflict.is_some() {
                    keep.push(cref);
                    continue;
                }
                let false_lit = l.negate();
                // Normalize: watched literals are clause[0] and clause[1].
                {
                    let c = &mut self.clauses[cref];
                    if c[0] == false_lit {
                        c.swap(0, 1);
                    }
                }
                if self.value(self.clauses[cref][0]) == Assign::True {
                    keep.push(cref);
                    continue;
                }
                // Find a new watch.
                let mut found = false;
                for k in 2..self.clauses[cref].len() {
                    if self.value(self.clauses[cref][k]) != Assign::False {
                        self.clauses[cref].swap(1, k);
                        let w = self.clauses[cref][1].negate().index();
                        self.watches[w].push(cref);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                keep.push(cref);
                let first = self.clauses[cref][0];
                if !self.enqueue(first, Some(cref)) {
                    conflict = Some(cref);
                }
            }
            self.watches[l.index()].extend(keep);
            if let Some(c) = conflict {
                return Some(c);
            }
        }
        None
    }

    fn bump(&mut self, v: BVar) {
        self.activity[v.0 as usize] += self.act_inc;
        if self.activity[v.0 as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backtrack level).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.nvars];
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = confl;
        let mut trail_idx = self.trail.len();

        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[cref][start..].to_vec();
            for q in lits {
                let v = q.var();
                if !seen[v.0 as usize] && self.level[v.0 as usize] > 0 {
                    seen[v.0 as usize] = true;
                    self.bump(v);
                    if self.level[v.0 as usize] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal from the trail.
            loop {
                trail_idx -= 1;
                let l = self.trail[trail_idx];
                if seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found UIP candidate").var();
            seen[pv.0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            cref = self.reason[pv.0 as usize].expect("non-decision has a reason");
        }
        let uip = p.expect("first UIP").negate();
        let mut clause = vec![uip];
        clause.extend(learnt);
        // Backtrack level: second-highest level in the clause.
        let bt = clause[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backtrack level at position 1 for watching.
        if clause.len() > 1 {
            let pos = clause[1..]
                .iter()
                .position(|l| self.level[l.var().0 as usize] == bt)
                .expect("literal at backtrack level")
                + 1;
            clause.swap(1, pos);
        }
        (clause, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var().0 as usize;
                self.assign[v] = Assign::Unassigned;
                self.reason[v] = None;
            }
            self.prop_head = self.trail.len().min(self.prop_head);
        }
        self.prop_head = self.trail.len().min(self.prop_head);
    }

    /// Backtracks to decision level 0 (used by the theory layer before
    /// adding a blocking clause).
    pub fn reset_to_root(&mut self) {
        self.backtrack(0);
        self.prop_head = 0;
    }

    fn decide(&mut self) -> Option<Lit> {
        let mut best: Option<BVar> = None;
        for v in 0..self.nvars {
            if self.assign[v] == Assign::Unassigned {
                match best {
                    None => best = Some(BVar(v as u32)),
                    Some(b) => {
                        if self.activity[v] > self.activity[b.0 as usize] {
                            best = Some(BVar(v as u32));
                        }
                    }
                }
            }
        }
        // Default phase: negative (tends to keep atoms "false", which
        // suits blocking-clause enumeration over mostly-conjunctive VCs).
        best.map(Lit::neg)
    }

    /// Runs the CDCL search to completion with no budget.
    pub fn solve(&mut self) -> SatResult {
        self.solve_within(None, u64::MAX)
    }

    /// Runs the CDCL search, giving up with [`SatResult::Unknown`] when
    /// the deadline passes or more than `max_conflicts` conflicts occur.
    ///
    /// The deadline is polled every [`DEADLINE_POLL_CONFLICTS`] conflicts
    /// (and at each restart), so expiry is detected promptly on hard
    /// instances without a syscall per propagation. On `Unknown` the
    /// solver backtracks to level 0 and stays usable.
    pub fn solve_within(&mut self, deadline: Option<Instant>, max_conflicts: u64) -> SatResult {
        /// How many conflicts pass between deadline polls.
        const DEADLINE_POLL_CONFLICTS: u64 = 64;

        if self.unsat {
            return SatResult::Unsat;
        }
        if deadline_expired(deadline) {
            return SatResult::Unknown;
        }
        let mut conflicts_total = 0u64;
        let mut conflicts_since_restart = 0usize;
        let mut restart_limit = 100usize;
        loop {
            if let Some(confl) = self.propagate() {
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                conflicts_total += 1;
                if conflicts_total > max_conflicts
                    || (conflicts_total.is_multiple_of(DEADLINE_POLL_CONFLICTS)
                        && deadline_expired(deadline))
                {
                    self.backtrack(0);
                    self.prop_head = 0;
                    return SatResult::Unknown;
                }
                conflicts_since_restart += 1;
                self.act_inc *= 1.05;
                let (clause, bt) = self.analyze(confl);
                self.backtrack(bt);
                if clause.len() == 1 {
                    if !self.enqueue(clause[0], None) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let cref = self.clauses.len();
                    self.watches[clause[0].negate().index()].push(cref);
                    self.watches[clause[1].negate().index()].push(cref);
                    let unit = clause[0];
                    self.clauses.push(clause);
                    if !self.enqueue(unit, Some(cref)) {
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                }
            } else if conflicts_since_restart >= restart_limit {
                conflicts_since_restart = 0;
                restart_limit = restart_limit * 3 / 2;
                self.backtrack(0);
            } else {
                match self.decide() {
                    None => return SatResult::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision literal was assigned");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut CdclSolver, n: usize) -> Vec<BVar> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn empty_problem_is_sat() {
        let mut s = CdclSolver::new();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn unit_conflict() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 1);
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn simple_propagation_chain() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(vec![Lit::neg(v[1]), Lit::pos(v[2])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]) && s.model_value(v[1]) && s.model_value(v[2]));
    }

    #[test]
    fn pigeonhole_two_in_one() {
        // 2 pigeons, 1 hole: p00, p10, ¬p00∨¬p10 — unsat.
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::pos(v[1])]);
        s.add_clause(vec![Lit::neg(v[0]), Lit::neg(v[1])]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_pigeons_2_holes() {
        // PHP(3,2): unsat and requires real search.
        let mut s = CdclSolver::new();
        // p[i][j]: pigeon i in hole j.
        let p: Vec<Vec<BVar>> = (0..3).map(|_| lits(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(vec![Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn satisfiable_3cnf() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 4);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.add_clause(vec![Lit::neg(v[0]), Lit::pos(v[3])]);
        s.add_clause(vec![Lit::neg(v[1]), Lit::neg(v[3])]);
        s.add_clause(vec![Lit::neg(v[2]), Lit::pos(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Verify the model satisfies every clause.
        let model = |l: Lit| s.model_value(l.var()) == l.sign();
        assert!(model(Lit::pos(v[0])) || model(Lit::pos(v[1])) || model(Lit::pos(v[2])));
    }

    #[test]
    fn incremental_blocking_clauses() {
        // Enumerate models of (a ∨ b) by blocking each; exactly 3 models.
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        let mut count = 0;
        while s.solve() == SatResult::Sat {
            count += 1;
            assert!(count <= 3, "too many models");
            let block: Vec<Lit> = v
                .iter()
                .map(|&x| Lit::new(x, !s.model_value(x)))
                .collect();
            s.reset_to_root();
            s.add_clause(block);
        }
        assert_eq!(count, 3);
    }

    #[test]
    fn conflict_cap_reports_unknown_and_keeps_solver_usable() {
        // PHP(4,3) takes more than one conflict to refute.
        let mut s = CdclSolver::new();
        let p: Vec<Vec<BVar>> = (0..4).map(|_| lits(&mut s, 3)).collect();
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)).collect());
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..3 {
            for i1 in 0..4 {
                for i2 in (i1 + 1)..4 {
                    s.add_clause(vec![Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert_eq!(s.solve_within(None, 1), SatResult::Unknown);
        // The same solver, given full budget, still decides the instance.
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn expired_deadline_reports_unknown() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(s.solve_within(Some(past), u64::MAX), SatResult::Unknown);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn pop_discards_scoped_clauses() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        s.push_scope();
        s.add_clause(vec![Lit::neg(v[0])]);
        s.add_clause(vec![Lit::neg(v[1])]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop_scope();
        // The base instance is satisfiable again.
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]) || s.model_value(v[1]));
        // And a fresh scoped constraint can still flip each variable.
        s.push_scope();
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[1]));
        s.pop_scope();
    }

    #[test]
    fn lemmas_survive_pop() {
        // Block a model inside a scope via add_lemma; after pop the
        // blocking clause still constrains the search.
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        s.push_scope();
        s.add_lemma(vec![Lit::neg(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.pop_scope();
        s.add_clause(vec![Lit::pos(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        // The retained lemma ¬a ∨ b forces b once a holds.
        assert!(s.model_value(v[1]));
    }

    #[test]
    fn unit_lemma_survives_pop() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        s.push_scope();
        s.add_lemma(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[1]));
        s.pop_scope();
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(!s.model_value(v[0]), "unit lemma lost across pop");
    }

    #[test]
    fn lemma_simplified_under_scoped_unit_replays_unsimplified() {
        // Inside the scope, unit ¬a lets add_lemma strip `a` from the
        // stored clause (a ∨ b → b). After pop the lemma must act as the
        // original a ∨ b: with ¬b asserted, a must still be available.
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.push_scope();
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.reset_to_root();
        s.add_lemma(vec![Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[1]));
        s.pop_scope();
        s.add_clause(vec![Lit::neg(v[1])]);
        assert_eq!(
            s.solve(),
            SatResult::Sat,
            "a truncated lemma would make this unsat"
        );
        assert!(s.model_value(v[0]));
    }

    #[test]
    fn nested_scopes_with_search_between() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[1]), Lit::pos(v[2])]);
        s.push_scope();
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.push_scope();
        s.add_clause(vec![Lit::neg(v[1])]);
        s.add_clause(vec![Lit::neg(v[2])]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop_scope();
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[1]) || s.model_value(v[2]));
        s.pop_scope();
        s.add_clause(vec![Lit::neg(v[1]), Lit::neg(v[2])]);
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn scoped_unsat_flag_restores() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 1);
        s.push_scope();
        s.add_clause(vec![Lit::pos(v[0])]);
        s.add_clause(vec![Lit::neg(v[0])]);
        assert_eq!(s.solve(), SatResult::Unsat);
        s.pop_scope();
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn new_vars_inside_scope_stay_usable_after_pop() {
        let mut s = CdclSolver::new();
        let a = s.new_var();
        s.push_scope();
        let b = s.new_var();
        s.add_clause(vec![Lit::pos(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(b));
        s.pop_scope();
        // b still exists as a free variable.
        s.add_clause(vec![Lit::neg(b), Lit::pos(a)]);
        s.add_clause(vec![Lit::pos(b)]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(a));
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = CdclSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause(vec![Lit::pos(v[0]), Lit::pos(v[0])]);
        s.add_clause(vec![Lit::pos(v[1]), Lit::neg(v[1])]); // tautology: ignored
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.model_value(v[0]));
    }
}
