//! Theory combination: EUF + linear integer arithmetic (+ ground arrays
//! and canonicalized sets riding on EUF).
//!
//! A full propositional model is checked by asserting each theory atom to
//! the congruence closure and/or the simplex and propagating equalities
//! between the two in a Nelson–Oppen style loop:
//!
//! * EUF-derived equalities over shared integer terms become simplex rows;
//! * simplex-implied equalities (pairs that can be separated in neither
//!   direction) are pushed back into EUF.
//!
//! On conflict, a small core is extracted by greedy deletion-based
//! minimization (theory checks at this scale are microseconds, so
//! re-checking subsets is cheaper than proof-producing engines).

use crate::cnf::{Atom, AtomId, Atoms};
use crate::euf::{Euf, EufResult};
use crate::simplex::{LpResult, Simplex};
use crate::term::{Term, TermId};
use crate::Rat;
use dsolve_logic::{deadline_expired, Budget, Resource, Sort};
use dsolve_obs::{theory as theory_timer, TheoryKind};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Resource limits for one theory check (per propositional model).
#[derive(Clone, Copy, Debug)]
pub struct TheoryBudget {
    /// Branch-and-bound node cap for each integer feasibility check.
    pub bb_nodes: u64,
    /// Absolute wall-clock deadline, if any.
    pub deadline: Option<Instant>,
}

impl Default for TheoryBudget {
    fn default() -> TheoryBudget {
        TheoryBudget {
            bb_nodes: Budget::default().max_bb_nodes,
            deadline: None,
        }
    }
}

/// Outcome of a theory check over a full assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TheoryResult {
    /// The assignment is theory-consistent.
    Sat,
    /// Conflict; the payload lists indices into the assignment slice that
    /// together are inconsistent (a minimized core).
    Unsat(Vec<usize>),
    /// The check's budget ran out before consistency was decided; the
    /// payload names the exhausted resource.
    Unknown(Resource),
}

/// Internal verdict of one consistency probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Consistency {
    Sat,
    Unsat,
    Unknown(Resource),
}

/// Checks a full atom assignment for theory consistency.
///
/// `minimize` requests deletion-based core minimization; callers skip it
/// when one blocking clause of any size already ends the search (purely
/// conjunctive queries).
pub fn check_assignment(
    atoms: &Atoms,
    assignment: &[(AtomId, bool)],
    minimize: bool,
    budget: &TheoryBudget,
) -> TheoryResult {
    let all: Vec<usize> = (0..assignment.len()).collect();
    match consistent(atoms, assignment, &all, budget) {
        Consistency::Sat => return TheoryResult::Sat,
        // The full check could not be decided: neither verdict is safe.
        Consistency::Unknown(r) => return TheoryResult::Unknown(r),
        Consistency::Unsat => {}
    }
    if !minimize {
        return TheoryResult::Unsat(all);
    }
    // Chunked deletion minimization: drop halves while the conflict
    // persists, then shrink the chunk size — O(core·log n) checks
    // instead of O(n) for the typical small core. An Unknown trial keeps
    // the chunk (the core stays a superset of a real conflict, which is
    // sound — just less minimal).
    let mut core = all;
    let mut chunk = (core.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        while i < core.len() {
            let hi = (i + chunk).min(core.len());
            let mut trial = Vec::with_capacity(core.len());
            trial.extend_from_slice(&core[..i]);
            trial.extend_from_slice(&core[hi..]);
            if consistent(atoms, assignment, &trial, budget) == Consistency::Unsat {
                core = trial;
            } else {
                i = hi;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    TheoryResult::Unsat(core)
}

/// Whether the subset (`indices` into `assignment`) is theory-consistent.
fn consistent(
    atoms: &Atoms,
    assignment: &[(AtomId, bool)],
    indices: &[usize],
    budget: &TheoryBudget,
) -> Consistency {
    let arena = &atoms.arena;
    let mut euf = Euf::new(arena);
    let mut simplex = Simplex::new();
    let mut var_of: HashMap<TermId, usize> = HashMap::new();
    let mut shared: Vec<TermId> = Vec::new();

    let mut sx_var = |simplex: &mut Simplex,
                      var_of: &mut HashMap<TermId, usize>,
                      shared: &mut Vec<TermId>,
                      t: TermId|
     -> usize {
        *var_of.entry(t).or_insert_with(|| {
            let is_int = *arena.sort(t) == Sort::Int;
            let v = simplex.new_var(is_int);
            shared.push(t);
            v
        })
    };

    // Pre-seed integer constants so implied equalities with literals are
    // discoverable (e.g. x ≤ 0 ∧ x ≥ 0 ⟹ x = 0 reaching EUF).
    for t in arena.ids() {
        if let Term::Int(k) = arena.term(t) {
            let v = sx_var(&mut simplex, &mut var_of, &mut shared, t);
            let ok = simplex.assert_lower(v, Rat::from_int(*k))
                && simplex.assert_upper(v, Rat::from_int(*k));
            debug_assert!(ok, "constant bounds are consistent");
        }
    }

    let true_id = atoms.bool_const(true);
    let false_id = atoms.bool_const(false);

    // Assert each literal to the relevant solver(s).
    let mut diseq_terms: Vec<TermId> = Vec::new();
    for &ix in indices {
        let (aid, val) = assignment[ix];
        match atoms.atom(aid) {
            Atom::Eq { a, b, lin } => {
                if val {
                    euf.assert_eq(*a, *b);
                    if let Some(lin) = lin {
                        if !assert_lin_eq(&mut simplex, &mut var_of, &mut shared, lin, &mut sx_var)
                        {
                            return Consistency::Unsat;
                        }
                    }
                } else {
                    euf.assert_ne(*a, *b);
                    diseq_terms.push(*a);
                    diseq_terms.push(*b);
                }
            }
            Atom::IntLe(lin) => {
                let bound_ok = if val {
                    // lin ≤ 0
                    assert_lin_le(&mut simplex, &mut var_of, &mut shared, lin, &mut sx_var)
                } else {
                    // ¬(lin ≤ 0) ⟺ lin ≥ 1 over integers.
                    let neg = lin.clone().scale(Rat::from_int(-1));
                    let mut neg = neg;
                    neg.constant += Rat::ONE;
                    assert_lin_le(&mut simplex, &mut var_of, &mut shared, &neg, &mut sx_var)
                };
                if !bound_ok {
                    return Consistency::Unsat;
                }
            }
            Atom::BoolTerm(t) => {
                let target = if val { true_id } else { false_id };
                euf.assert_eq(*t, target);
            }
        }
    }

    // Nelson–Oppen propagation loop.
    let mut sent_to_simplex: HashSet<(TermId, TermId)> = HashSet::new();
    loop {
        if theory_timer::time(TheoryKind::Euf, || euf.check(arena)) == EufResult::Unsat {
            return Consistency::Unsat;
        }
        // EUF → simplex.
        let mut changed = false;
        for (a, b) in euf.equalities_among(&shared) {
            let key = if a <= b { (a, b) } else { (b, a) };
            if sent_to_simplex.insert(key) {
                let va = var_of[&a];
                let vb = var_of[&b];
                let row = simplex.add_row(&[(va, Rat::ONE), (vb, Rat::from_int(-1))]);
                if !(simplex.assert_lower(row, Rat::ZERO)
                    && simplex.assert_upper(row, Rat::ZERO))
                {
                    return Consistency::Unsat;
                }
                changed = true;
            }
        }
        let lp_verdict = theory_timer::time(TheoryKind::Simplex, || {
            simplex.check_int_within(budget.bb_nodes, budget.deadline)
        });
        match lp_verdict {
            LpResult::Unsat => return Consistency::Unsat,
            LpResult::Unknown => {
                let r = if deadline_expired(budget.deadline) {
                    Resource::Deadline
                } else {
                    Resource::BranchBoundNodes
                };
                return Consistency::Unknown(r);
            }
            LpResult::Sat => {}
        }
        // Simplex → EUF: implied equalities among shared terms. Only
        // pairs EUF could *use* matter: arguments of uninterpreted
        // applications and sides of disequalities. The scan is simplex
        // work (each candidate pair probes cloned tableaux), so it is
        // timed as such.
        let new_eq = theory_timer::time(TheoryKind::Simplex, || {
            let mut new_eq = false;
            let mut interesting = interesting_terms(arena);
            interesting.extend(diseq_terms.iter().copied());
            let candidates: Vec<TermId> = shared
                .iter()
                .copied()
                .filter(|t| interesting.contains(t))
                .collect();
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    let (a, b) = (candidates[i], candidates[j]);
                    if euf.same_class(a, b) {
                        continue;
                    }
                    let (va, vb) = (var_of[&a], var_of[&b]);
                    if simplex.value(va) != simplex.value(vb) {
                        continue;
                    }
                    if !separable(&simplex, va, vb) {
                        euf.assert_eq(a, b);
                        new_eq = true;
                    }
                }
            }
            new_eq
        });
        if !new_eq && !changed {
            return Consistency::Sat;
        }
        if !new_eq && changed {
            // Equalities were forwarded but nothing came back; one more
            // euf/simplex round settles it.
            continue;
        }
    }
}

/// Terms whose discovered equalities can advance congruence closure:
/// arguments of applications, plus every constant (so `x = 3` facts
/// propagate).
fn interesting_terms(arena: &crate::TermArena) -> std::collections::HashSet<TermId> {
    let mut out = std::collections::HashSet::new();
    for id in arena.ids() {
        match arena.term(id) {
            Term::App(_, args) => {
                for a in args {
                    out.insert(*a);
                }
            }
            Term::Int(_) => {
                out.insert(id);
            }
            _ => {}
        }
    }
    out
}

/// Whether `va` and `vb` can take different values (tested in both strict
/// directions over the rationals; rational inseparability implies integer
/// equality).
fn separable(simplex: &Simplex, va: usize, vb: usize) -> bool {
    for (lo, hi) in [(va, vb), (vb, va)] {
        let mut s = simplex.clone();
        let row = s.add_row(&[(lo, Rat::ONE), (hi, Rat::from_int(-1))]);
        // lo - hi <= -1 (integer separation; all our terms are integers).
        if s.assert_upper(row, Rat::from_int(-1)) && s.check() == LpResult::Sat {
            return true;
        }
    }
    false
}

fn assert_lin_le(
    simplex: &mut Simplex,
    var_of: &mut HashMap<TermId, usize>,
    shared: &mut Vec<TermId>,
    lin: &crate::LinExpr,
    sx_var: &mut impl FnMut(&mut Simplex, &mut HashMap<TermId, usize>, &mut Vec<TermId>, TermId) -> usize,
) -> bool {
    if let Some(c) = lin.as_constant() {
        return c <= Rat::ZERO;
    }
    let combo: Vec<(usize, Rat)> = lin
        .terms
        .iter()
        .map(|(t, c)| (sx_var(simplex, var_of, shared, *t), *c))
        .collect();
    let row = simplex.add_row(&combo);
    simplex.assert_upper(row, -lin.constant)
}

fn assert_lin_eq(
    simplex: &mut Simplex,
    var_of: &mut HashMap<TermId, usize>,
    shared: &mut Vec<TermId>,
    lin: &crate::LinExpr,
    sx_var: &mut impl FnMut(&mut Simplex, &mut HashMap<TermId, usize>, &mut Vec<TermId>, TermId) -> usize,
) -> bool {
    if let Some(c) = lin.as_constant() {
        return c.is_zero();
    }
    let combo: Vec<(usize, Rat)> = lin
        .terms
        .iter()
        .map(|(t, c)| (sx_var(simplex, var_of, shared, *t), *c))
        .collect();
    let row = simplex.add_row(&combo);
    simplex.assert_upper(row, -lin.constant) && simplex.assert_lower(row, -lin.constant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{parse_pred, Pred, SortEnv, Symbol};

    fn lits_of(preds: &[&str], env: &SortEnv) -> (Atoms, Vec<(AtomId, bool)>) {
        let mut atoms = Atoms::new();
        let mut out = Vec::new();
        for s in preds {
            let p = parse_pred(s).unwrap();
            match p {
                Pred::Atom(rel, a, b) => {
                    let (id, pos) = atoms.atom_of_rel(rel, &a, &b, env);
                    out.push((id, pos));
                }
                Pred::Not(inner) => {
                    let Pred::Atom(rel, a, b) = *inner else { panic!() };
                    let (id, pos) = atoms.atom_of_rel(rel, &a, &b, env);
                    out.push((id, !pos));
                }
                Pred::Term(e) => {
                    let id = atoms.atom_of_term(&e, env);
                    out.push((id, true));
                }
                _ => panic!("test literals must be atoms"),
            }
        }
        (atoms, out)
    }

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        for v in ["x", "y", "z", "w"] {
            env.bind(Symbol::new(v), Sort::Int);
        }
        env.bind(Symbol::new("p"), Sort::Obj(Symbol::new("t")));
        env.bind(Symbol::new("q"), Sort::Obj(Symbol::new("t")));
        env.declare_func(
            Symbol::new("f"),
            dsolve_logic::FuncSort::new(vec![Sort::Int], Sort::Int),
        );
        env
    }

    #[test]
    fn arithmetic_conflict() {
        let env = env();
        let (atoms, lits) = lits_of(&["x < y", "y < x"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn arithmetic_sat() {
        let env = env();
        let (atoms, lits) = lits_of(&["x < y", "y < z"], &env);
        assert_eq!(check_assignment(&atoms, &lits, true, &TheoryBudget::default()), TheoryResult::Sat);
    }

    #[test]
    fn euf_congruence_conflict() {
        let env = env();
        let (atoms, lits) = lits_of(&["x = y", "f(x) != f(y)"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn cross_theory_equality_propagation() {
        // x <= y, y <= x (arith) forces x = y, so f(x) != f(y) conflicts.
        let env = env();
        let (atoms, lits) = lits_of(&["x <= y", "y <= x", "f(x) != f(y)"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn constant_equality_propagation() {
        // x <= 0 and x >= 0 implies x = 0.
        let env = env();
        let (atoms, lits) = lits_of(&["x <= 0", "0 <= x", "x != 0"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn equality_feeds_arithmetic() {
        // x = y (EUF+lin), y < x is a conflict through the linear form.
        let env = env();
        let (atoms, lits) = lits_of(&["x = y", "y < x"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn minimized_core_is_small() {
        let env = env();
        let (atoms, lits) = lits_of(&["x < y", "z < w", "y < x"], &env);
        let TheoryResult::Unsat(core) = check_assignment(&atoms, &lits, true, &TheoryBudget::default()) else {
            panic!("expected conflict");
        };
        // The z < w literal is irrelevant.
        assert_eq!(core.len(), 2);
        assert!(core.contains(&0) && core.contains(&2));
    }

    #[test]
    fn exhausted_bb_budget_is_unknown_not_sat() {
        // 2x = 1 (as x + x = 1) forces integer branching; a zero-node
        // budget must answer Unknown, never a silent Sat.
        let env = env();
        let (atoms, lits) = lits_of(&["x + x = 1"], &env);
        let starved = TheoryBudget {
            bb_nodes: 0,
            deadline: None,
        };
        assert_eq!(
            check_assignment(&atoms, &lits, true, &starved),
            TheoryResult::Unknown(Resource::BranchBoundNodes)
        );
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }

    #[test]
    fn obj_disequality_sat() {
        let env = env();
        let (atoms, lits) = lits_of(&["p != q"], &env);
        assert_eq!(check_assignment(&atoms, &lits, true, &TheoryBudget::default()), TheoryResult::Sat);
    }

    #[test]
    fn transitive_obj_equality_conflict() {
        let env = env();
        let (atoms, lits) = lits_of(&["p = q", "p != q"], &env);
        assert!(matches!(
            check_assignment(&atoms, &lits, true, &TheoryBudget::default()),
            TheoryResult::Unsat(_)
        ));
    }
}
