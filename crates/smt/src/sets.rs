//! Canonicalization for the finite-set theory.
//!
//! The paper's `elts`-style measures use the SMT solver's "decidable
//! theory of sets" built from `empty`, `single`, and `union`. Union is
//! associative, commutative, and idempotent with unit `empty` (ACI1), so
//! we rewrite every set-sorted term into a canonical right-nested union of
//! sorted, de-duplicated leaves. After canonicalization, terms equal
//! modulo ACI1 are *syntactically identical* and congruence closure
//! finishes the job.
//!
//! Membership atoms over constructor-built sets are expanded:
//! `e ∈ single(a)` becomes `e = a`, `e ∈ union(s,t)` distributes, and
//! `e ∈ empty` is `false`; membership in an opaque set term stays as an
//! uninterpreted atom.

use dsolve_logic::{Expr, Pred, Rel};

/// Rewrites all set-sorted subterms of `p` into ACI1 canonical form and
/// expands membership over constructor-built sets.
pub fn canonicalize_sets(p: &Pred) -> Pred {
    match p {
        Pred::True | Pred::False => p.clone(),
        Pred::Atom(Rel::In, e, s) => {
            let e = canon_expr(e);
            let s = canon_expr(s);
            expand_membership(&e, &s)
        }
        Pred::Atom(rel, a, b) => Pred::Atom(*rel, canon_expr(a), canon_expr(b)),
        Pred::And(ps) => Pred::And(ps.iter().map(canonicalize_sets).collect()),
        Pred::Or(ps) => Pred::Or(ps.iter().map(canonicalize_sets).collect()),
        Pred::Not(q) => Pred::Not(Box::new(canonicalize_sets(q))),
        Pred::Imp(a, b) => Pred::Imp(
            Box::new(canonicalize_sets(a)),
            Box::new(canonicalize_sets(b)),
        ),
        Pred::Iff(a, b) => Pred::Iff(
            Box::new(canonicalize_sets(a)),
            Box::new(canonicalize_sets(b)),
        ),
        Pred::Term(e) => Pred::Term(canon_expr(e)),
    }
}

fn expand_membership(e: &Expr, s: &Expr) -> Pred {
    match s {
        Expr::SetEmpty => Pred::False,
        Expr::SetSingle(a) => Pred::eq(e.clone(), (**a).clone()),
        Expr::SetUnion(l, r) => Pred::or(vec![
            expand_membership(e, l),
            expand_membership(e, r),
        ]),
        opaque => Pred::mem(e.clone(), opaque.clone()),
    }
}

/// Canonicalizes an expression (recursing into non-set structure too).
fn canon_expr(e: &Expr) -> Expr {
    match e {
        Expr::SetEmpty | Expr::SetSingle(_) | Expr::SetUnion(_, _) => canon_set(e),
        Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) => e.clone(),
        Expr::Binop(op, a, b) => {
            Expr::Binop(*op, Box::new(canon_expr(a)), Box::new(canon_expr(b)))
        }
        Expr::Neg(a) => Expr::Neg(Box::new(canon_expr(a))),
        Expr::Ite(c, t, f) => Expr::Ite(
            Box::new(canonicalize_sets(c)),
            Box::new(canon_expr(t)),
            Box::new(canon_expr(f)),
        ),
        Expr::App(f, args) => Expr::App(*f, args.iter().map(canon_expr).collect()),
        Expr::Sel(m, i) => Expr::sel(canon_expr(m), canon_expr(i)),
        Expr::Upd(m, i, v) => Expr::upd(canon_expr(m), canon_expr(i), canon_expr(v)),
    }
}

/// Flattens a set term to sorted, de-duplicated leaves and rebuilds a
/// right-nested union.
fn canon_set(e: &Expr) -> Expr {
    let mut leaves: Vec<Expr> = Vec::new();
    flatten_set(e, &mut leaves);
    // Sort by display form (stable, deterministic) and de-duplicate.
    leaves.sort_by_key(|l| l.to_string());
    leaves.dedup();
    match leaves.len() {
        0 => Expr::SetEmpty,
        _ => {
            let mut it = leaves.into_iter().rev();
            let mut acc = it.next().expect("nonempty");
            for l in it {
                acc = Expr::union(l, acc);
            }
            acc
        }
    }
}

fn flatten_set(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::SetEmpty => {}
        Expr::SetUnion(a, b) => {
            flatten_set(a, out);
            flatten_set(b, out);
        }
        Expr::SetSingle(x) => out.push(Expr::single(canon_expr(x))),
        // Opaque leaf (variable or measure application): canonicalize its
        // arguments but keep it atomic.
        other => out.push(canon_expr(other)),
    }
}

/// Conjoins ground *leaf-substitution* lemmas for the set theory.
///
/// ACI1 canonicalization is syntactic, so an equality discovered at solve
/// time (`elts xs = empty`, `elts zs = union(elts xs, elts ys)`) cannot
/// re-flatten the union terms that mention its left-hand side. This pass
/// closes the gap with guarded ground instances: for every canonical union
/// term `u` with leaf `x`, and every set equality atom `s = t` in the
/// formula with `s` syntactically equal to `x` (either orientation),
///
/// ```text
/// s = t  ⇒  u = canon(u[x := t])
/// ```
///
/// New union terms produced on the right enter the worklist, bounded by
/// the `max_lemmas` saturation budget. Singleton injectivity
/// (`single a = single b ⇒ a = b`) is instantiated for the singleton
/// leaves present.
///
/// Returns the strengthened formula plus a flag that is `true` when the
/// lemma budget ran out before saturation completed. A truncated lemma
/// set only ever *weakens* the formula, so `Unsat` answers derived from
/// it remain sound — but a `Sat` answer may be spurious, and callers
/// must report the truncation rather than trust it.
///
/// Call on a formula that is already in canonical form (see
/// [`canonicalize_sets`]).
pub fn set_saturation_lemmas(p: &Pred, max_lemmas: u64) -> (Pred, bool) {
    let (lemmas, truncated) = set_saturation_lemma_list(p, max_lemmas);
    let strengthened = if lemmas.is_empty() {
        p.clone()
    } else {
        let mut parts = vec![p.clone()];
        parts.extend(lemmas);
        Pred::and(parts)
    };
    (strengthened, truncated)
}

/// The lemma list behind [`set_saturation_lemmas`], without conjoining:
/// returns the guarded ground instances (each one a valid fact of the
/// set theory) and the truncation flag. Incremental callers feed these
/// to the SAT core as retained lemma clauses instead of rebuilding the
/// strengthened conjunction.
///
/// The traversal order is identical to [`set_saturation_lemmas`], so
/// for a fixed formula the two produce the same lemmas in the same
/// order.
pub fn set_saturation_lemma_list(p: &Pred, max_lemmas: u64) -> (Vec<Pred>, bool) {
    use std::collections::BTreeSet;

    // Collect equality pairs over set-shaped sides and all union terms.
    let mut pairs: BTreeSet<(Expr, Expr)> = BTreeSet::new();
    let mut unions: BTreeSet<Expr> = BTreeSet::new();
    let mut singles: BTreeSet<Expr> = BTreeSet::new();
    collect(p, &mut pairs, &mut unions, &mut singles);

    let mut lemmas: Vec<Pred> = Vec::new();
    let mut seen: BTreeSet<Expr> = unions.clone();
    let mut work: Vec<Expr> = unions.into_iter().collect();
    let mut budget = max_lemmas;
    let mut truncated = false;

    'saturate: while let Some(u) = work.pop() {
        let mut leaves = Vec::new();
        flatten_set(&u, &mut leaves);
        for x in &leaves {
            for (s, t) in &pairs {
                if s == x {
                    if budget == 0 {
                        truncated = true;
                        break 'saturate;
                    }
                    budget -= 1;
                    // Rebuild with x replaced by the leaves of t.
                    let rest: Vec<Expr> =
                        leaves.iter().filter(|l| *l != x).cloned().collect();
                    let mut repl = rest;
                    flatten_set(t, &mut repl);
                    let rebuilt = canon_of_leaves(repl);
                    if rebuilt != u {
                        lemmas.push(Pred::imp(
                            Pred::eq(s.clone(), t.clone()),
                            Pred::eq(u.clone(), rebuilt.clone()),
                        ));
                        if matches!(rebuilt, Expr::SetUnion(..)) && seen.insert(rebuilt.clone())
                        {
                            work.push(rebuilt);
                        }
                    }
                }
            }
        }
    }

    // Non-emptiness: any canonical set containing a singleton leaf is
    // distinct from `empty` (an axiom of the finite-set theory the
    // measure examples of §4.2 rely on for dead-branch detection).
    for u in &seen {
        let mut leaves = Vec::new();
        flatten_set(u, &mut leaves);
        if leaves.iter().any(|l| matches!(l, Expr::SetSingle(_))) {
            lemmas.push(Pred::ne(u.clone(), Expr::SetEmpty));
        }
    }
    for s in &singles {
        lemmas.push(Pred::ne(s.clone(), Expr::SetEmpty));
    }

    // Singleton injectivity.
    let singles: Vec<Expr> = singles.into_iter().collect();
    for (i, a) in singles.iter().enumerate() {
        for b in &singles[i + 1..] {
            if let (Expr::SetSingle(ea), Expr::SetSingle(eb)) = (a, b) {
                lemmas.push(Pred::imp(
                    Pred::eq(a.clone(), b.clone()),
                    Pred::eq((**ea).clone(), (**eb).clone()),
                ));
            }
        }
    }

    (lemmas, truncated)
}

fn canon_of_leaves(mut leaves: Vec<Expr>) -> Expr {
    leaves.sort_by_key(|l| l.to_string());
    leaves.dedup();
    match leaves.len() {
        0 => Expr::SetEmpty,
        _ => {
            let mut it = leaves.into_iter().rev();
            let mut acc = it.next().expect("nonempty");
            for l in it {
                acc = Expr::union(l, acc);
            }
            acc
        }
    }
}

fn collect(
    p: &Pred,
    pairs: &mut std::collections::BTreeSet<(Expr, Expr)>,
    unions: &mut std::collections::BTreeSet<Expr>,
    singles: &mut std::collections::BTreeSet<Expr>,
) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Atom(rel, a, b) => {
            collect_sets_expr(a, unions, singles);
            collect_sets_expr(b, unions, singles);
            if matches!(rel, Rel::Eq | Rel::Ne) && is_setish(a) && is_setish(b) {
                pairs.insert((a.clone(), b.clone()));
                pairs.insert((b.clone(), a.clone()));
            }
        }
        Pred::And(ps) | Pred::Or(ps) => {
            for q in ps {
                collect(q, pairs, unions, singles);
            }
        }
        Pred::Not(q) => collect(q, pairs, unions, singles),
        Pred::Imp(a, b) | Pred::Iff(a, b) => {
            collect(a, pairs, unions, singles);
            collect(b, pairs, unions, singles);
        }
        Pred::Term(e) => collect_sets_expr(e, unions, singles),
    }
}

/// Conservative syntactic set-ness: constructors are definitely sets;
/// variables and applications might be. A spurious pair over non-set terms
/// only generates lemmas when its side occurs as a union leaf, so the
/// over-approximation is harmless.
fn is_setish(e: &Expr) -> bool {
    matches!(
        e,
        Expr::SetEmpty | Expr::SetSingle(_) | Expr::SetUnion(..) | Expr::Var(_) | Expr::App(..)
    )
}

fn collect_sets_expr(
    e: &Expr,
    unions: &mut std::collections::BTreeSet<Expr>,
    singles: &mut std::collections::BTreeSet<Expr>,
) {
    match e {
        Expr::SetUnion(a, b) => {
            unions.insert(e.clone());
            collect_sets_expr(a, unions, singles);
            collect_sets_expr(b, unions, singles);
        }
        Expr::SetSingle(x) => {
            singles.insert(e.clone());
            collect_sets_expr(x, unions, singles);
        }
        Expr::SetEmpty | Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) => {}
        Expr::Binop(_, a, b) => {
            collect_sets_expr(a, unions, singles);
            collect_sets_expr(b, unions, singles);
        }
        Expr::Neg(a) => collect_sets_expr(a, unions, singles),
        Expr::Ite(c, t, f) => {
            let mut pairs = std::collections::BTreeSet::new();
            collect(c, &mut pairs, unions, singles);
            collect_sets_expr(t, unions, singles);
            collect_sets_expr(f, unions, singles);
        }
        Expr::App(_, args) => {
            for a in args {
                collect_sets_expr(a, unions, singles);
            }
        }
        Expr::Sel(m, i) => {
            collect_sets_expr(m, unions, singles);
            collect_sets_expr(i, unions, singles);
        }
        Expr::Upd(m, i, v) => {
            collect_sets_expr(m, unions, singles);
            collect_sets_expr(i, unions, singles);
            collect_sets_expr(v, unions, singles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_pred;

    fn canon(s: &str) -> String {
        canonicalize_sets(&parse_pred(s).unwrap()).to_string()
    }

    #[test]
    fn commutativity_collapses() {
        assert_eq!(canon("union(a, b) = union(b, a)"), canon("union(a, b) = union(a, b)"));
    }

    #[test]
    fn associativity_collapses() {
        assert_eq!(
            canon("union(union(a, b), c) = d"),
            canon("union(a, union(b, c)) = d")
        );
    }

    #[test]
    fn idempotence_and_unit() {
        assert_eq!(canon("union(a, a) = a"), "(a = a)");
        assert_eq!(canon("union(a, empty) = a"), "(a = a)");
        assert_eq!(canon("union(empty, empty) = empty"), "(empty = empty)");
    }

    #[test]
    fn singles_sort_with_measures() {
        // The classic elts fact: union(single x, elts xs) in any order.
        let a = canon("elts(VV) = union(single(x), elts(xs))");
        let b = canon("elts(VV) = union(elts(xs), single(x))");
        assert_eq!(a, b);
    }

    #[test]
    fn membership_expansion() {
        assert_eq!(canon("x in empty"), "false");
        assert_eq!(canon("x in single(y)"), "(x = y)");
        assert_eq!(canon("x in union(single(y), s)"), "((x in s) || (x = y))");
        assert_eq!(canon("x in s"), "(x in s)");
    }

    #[test]
    fn saturation_budget_reports_truncation() {
        // An equality whose right side mentions a union keeps producing
        // fresh union terms; a tiny budget must flag truncation.
        let p = parse_pred("s = union(single(x), t) && union(s, u) = w").unwrap();
        let (_, truncated_tiny) = set_saturation_lemmas(&p, 0);
        assert!(truncated_tiny, "zero lemma budget must report truncation");
        let (full, truncated_full) = set_saturation_lemmas(&p, 200);
        assert!(!truncated_full, "default budget saturates this formula");
        // The strengthened formula still contains the original.
        assert!(full.to_string().contains("single(x)"));
    }

    #[test]
    fn nested_sets_inside_apps() {
        let a = canon("f(union(b, a)) = f(union(a, b))");
        // Both sides identical after canonicalization.
        let Pred::Atom(_, l, r) = canonicalize_sets(&parse_pred("f(union(b, a)) = f(union(a, b))").unwrap()) else {
            panic!()
        };
        assert_eq!(l, r);
        assert!(a.contains("union(a, b)"));
    }
}
