//! Congruence closure for equality with uninterpreted functions.
//!
//! The classic union-find + signature-table algorithm: asserted equalities
//! merge classes, congruent applications (same head, pairwise-equal
//! arguments) are merged transitively, and a conflict is reported when a
//! disequality spans one class or a class contains two distinct constants
//! (integer literals, `true`/`false`).

use crate::{Term, TermArena, TermId};
use std::collections::HashMap;

/// Result of a congruence-closure run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EufResult {
    /// The asserted literals are consistent in EUF.
    Sat,
    /// A conflict was detected (merged disequality or clashing constants).
    Unsat,
}

/// Congruence closure engine over a [`TermArena`].
///
/// The engine supports assertion scopes: [`Euf::push`] snapshots the
/// state and [`Euf::pop`] rolls back every merge, disequality, and
/// pending assertion made since, by replaying a union undo trail in
/// reverse. Union is by rank *without* path compression — compressed
/// parent pointers could skip across a scope boundary and survive the
/// rollback — so `find` stays O(log n) instead of O(α(n)), a fine trade
/// at this scale.
pub struct Euf {
    parent: Vec<u32>,
    rank: Vec<u32>,
    /// Asserted disequalities.
    diseqs: Vec<(TermId, TermId)>,
    /// Asserted equalities, append-only; `applied` marks how many have
    /// been merged into the union-find so far. A rollback rewinds
    /// `applied` instead of losing assertions that were merged late.
    eqs: Vec<(TermId, TermId)>,
    applied: usize,
    /// Undo trail of performed merges: `(child_root, root, rank_bumped)`.
    undo: Vec<(u32, u32, bool)>,
    /// Scope marks: watermarks into `undo`, `diseqs`, and `eqs`, plus
    /// the `applied` cursor at push time.
    scopes: Vec<(usize, usize, usize, usize)>,
}

impl Euf {
    /// Creates a closure engine over all terms currently in the arena.
    pub fn new(arena: &TermArena) -> Euf {
        let n = arena.len();
        Euf {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            diseqs: Vec::new(),
            eqs: Vec::new(),
            applied: 0,
            undo: Vec::new(),
            scopes: Vec::new(),
        }
    }

    /// Extends the union-find to cover terms interned since construction
    /// (new terms start as singleton classes).
    pub fn grow(&mut self, arena: &TermArena) {
        let n = arena.len();
        while self.parent.len() < n {
            self.parent.push(self.parent.len() as u32);
            self.rank.push(0);
        }
    }

    /// Opens an assertion scope; [`Euf::pop`] undoes everything asserted
    /// and merged after this call.
    pub fn push(&mut self) {
        self.scopes.push((
            self.undo.len(),
            self.diseqs.len(),
            self.eqs.len(),
            self.applied,
        ));
    }

    /// Closes the innermost scope, rolling back merges in reverse trail
    /// order and discarding scoped disequalities and equalities. The
    /// `applied` cursor rewinds to its push-time value, so pre-scope
    /// equalities that were merged *inside* the scope (and hence rolled
    /// back with it) are re-merged by the next [`Euf::check`].
    ///
    /// Terms interned (and [`Euf::grow`]n) inside the scope are kept as
    /// singleton classes: stale terms are harmless and the arena itself
    /// is monotone.
    pub fn pop(&mut self) {
        let (undo_mark, diseq_mark, eqs_mark, applied_mark) =
            self.scopes.pop().expect("pop without matching push");
        while self.undo.len() > undo_mark {
            let (child, root, bumped) = self.undo.pop().expect("nonempty undo");
            self.parent[child as usize] = child;
            if bumped {
                self.rank[root as usize] -= 1;
            }
        }
        self.diseqs.truncate(diseq_mark);
        self.eqs.truncate(eqs_mark);
        self.applied = applied_mark;
    }

    /// Representative of `t`'s class.
    pub fn find(&mut self, t: TermId) -> TermId {
        let mut r = t.0;
        while self.parent[r as usize] != r {
            r = self.parent[r as usize];
        }
        TermId(r)
    }

    /// Asserts `a = b`.
    pub fn assert_eq(&mut self, a: TermId, b: TermId) {
        self.eqs.push((a, b));
    }

    /// Asserts `a != b`.
    pub fn assert_ne(&mut self, a: TermId, b: TermId) {
        self.diseqs.push((a, b));
    }

    /// Computes the closure and checks consistency.
    pub fn check(&mut self, arena: &TermArena) -> EufResult {
        // Fixpoint: merge unapplied asserted pairs, then recompute
        // congruences until no new merge appears. Congruence-derived
        // merges go straight into the union-find (recorded on the undo
        // trail), not into `eqs`, so a rollback never replays them.
        loop {
            while self.applied < self.eqs.len() {
                let (a, b) = self.eqs[self.applied];
                self.applied += 1;
                self.merge(a, b);
            }
            if !self.propagate_congruences(arena) {
                break;
            }
        }
        if self.has_conflict(arena) {
            EufResult::Unsat
        } else {
            EufResult::Sat
        }
    }

    /// Whether `a` and `b` are in the same class (call after [`Euf::check`]).
    pub fn same_class(&mut self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    fn merge(&mut self, a: TermId, b: TermId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (child, root) = if self.rank[ra.index()] < self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let bumped = self.rank[child.index()] == self.rank[root.index()];
        if bumped {
            self.rank[root.index()] += 1;
        }
        self.parent[child.0 as usize] = root.0;
        self.undo.push((child.0, root.0, bumped));
    }

    /// One congruence pass; returns true if any merge was performed.
    fn propagate_congruences(&mut self, arena: &TermArena) -> bool {
        let mut sigs: HashMap<(dsolve_logic::Symbol, Vec<TermId>), TermId> = HashMap::new();
        let mut merges: Vec<(TermId, TermId)> = Vec::new();
        for id in arena.ids() {
            if let Term::App(f, args) = arena.term(id) {
                let canon: Vec<TermId> = args.iter().map(|a| self.find(*a)).collect();
                match sigs.entry((*f, canon)) {
                    std::collections::hash_map::Entry::Occupied(prev) => {
                        let other = *prev.get();
                        if self.find(other) != self.find(id) {
                            merges.push((other, id));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }
        let changed = !merges.is_empty();
        for (a, b) in merges {
            self.merge(a, b);
        }
        changed
    }

    fn has_conflict(&mut self, arena: &TermArena) -> bool {
        // Disequality merged into one class.
        for i in 0..self.diseqs.len() {
            let (a, b) = self.diseqs[i];
            if self.find(a) == self.find(b) {
                return true;
            }
        }
        // Two distinct constants in one class.
        let mut const_of_class: HashMap<TermId, TermId> = HashMap::new();
        for id in arena.ids() {
            let t = arena.term(id);
            if matches!(t, Term::Int(_) | Term::Bool(_)) {
                let root = self.find(id);
                if let Some(prev) = const_of_class.get(&root) {
                    if *arena.term(*prev) != *t {
                        return true;
                    }
                } else {
                    const_of_class.insert(root, id);
                }
            }
        }
        false
    }

    /// All pairs of distinct representatives that were merged, restricted
    /// to the given terms — used for Nelson–Oppen equality propagation.
    pub fn equalities_among(&mut self, terms: &[TermId]) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for (i, &a) in terms.iter().enumerate() {
            for &b in &terms[i + 1..] {
                if self.find(a) == self.find(b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{Sort, Symbol};

    fn setup() -> (TermArena, Vec<TermId>) {
        let mut a = TermArena::new();
        let s = Sort::Int;
        let x = a.intern(Term::Var(Symbol::new("x"), s.clone()), s.clone());
        let y = a.intern(Term::Var(Symbol::new("y"), s.clone()), s.clone());
        let z = a.intern(Term::Var(Symbol::new("z"), s.clone()), s.clone());
        let fx = a.intern(Term::App(Symbol::new("f"), vec![x]), s.clone());
        let fy = a.intern(Term::App(Symbol::new("f"), vec![y]), s.clone());
        let ffx = a.intern(Term::App(Symbol::new("f"), vec![fx]), s.clone());
        (a, vec![x, y, z, fx, fy, ffx])
    }

    #[test]
    fn congruence_merges_applications() {
        let (arena, ids) = setup();
        let (x, y, _, fx, fy, _) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(fx, fy));
    }

    #[test]
    fn transitivity_and_conflict() {
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        euf.assert_eq(y, z);
        euf.assert_ne(x, z);
        assert_eq!(euf.check(&arena), EufResult::Unsat);
    }

    #[test]
    fn congruence_chain_conflict() {
        // x = f(x), plus f(f(x)) != x is a conflict: f(x)=f(f(x)) by
        // congruence from x=f(x), hence x = f(x) = f(f(x)).
        let (arena, ids) = setup();
        let (x, fx, ffx) = (ids[0], ids[3], ids[5]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, fx);
        euf.assert_ne(ffx, x);
        assert_eq!(euf.check(&arena), EufResult::Unsat);
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut a = TermArena::new();
        let one = a.intern(Term::Int(1), Sort::Int);
        let two = a.intern(Term::Int(2), Sort::Int);
        let x = a.intern(Term::Var(Symbol::new("x"), Sort::Int), Sort::Int);
        let mut euf = Euf::new(&a);
        euf.assert_eq(x, one);
        euf.assert_eq(x, two);
        assert_eq!(euf.check(&a), EufResult::Unsat);
    }

    #[test]
    fn bool_constants_distinct() {
        let mut a = TermArena::new();
        let t = a.intern(Term::Bool(true), Sort::Bool);
        let f = a.intern(Term::Bool(false), Sort::Bool);
        let mut euf = Euf::new(&a);
        euf.assert_eq(t, f);
        assert_eq!(euf.check(&a), EufResult::Unsat);
    }

    #[test]
    fn consistent_disequalities() {
        let (arena, ids) = setup();
        let (x, y) = (ids[0], ids[1]);
        let mut euf = Euf::new(&arena);
        euf.assert_ne(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(!euf.same_class(x, y));
    }

    #[test]
    fn equalities_among_interface_terms() {
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        let eqs = euf.equalities_among(&[x, y, z]);
        assert_eq!(eqs, vec![(x, y)]);
    }

    #[test]
    fn pop_rolls_back_scoped_merges() {
        let (arena, ids) = setup();
        let (x, y, z, fx, fy) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        euf.push();
        euf.assert_eq(y, z);
        euf.assert_ne(x, z);
        assert_eq!(euf.check(&arena), EufResult::Unsat);
        euf.pop();
        // Base-scope facts survive, scoped ones are gone.
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(x, y));
        assert!(euf.same_class(fx, fy));
        assert!(!euf.same_class(x, z));
    }

    #[test]
    fn pop_replays_unchecked_base_equalities() {
        // An equality asserted *before* push but first merged (by check)
        // *inside* the scope must survive the pop: the applied cursor
        // rewinds with the scope and the next check re-merges it.
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        euf.push();
        euf.assert_eq(y, z);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        euf.pop();
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(x, y));
        assert!(!euf.same_class(x, z));
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.push();
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        euf.push();
        euf.assert_eq(y, z);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(x, z));
        euf.pop();
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(x, y));
        assert!(!euf.same_class(x, z));
        euf.pop();
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(!euf.same_class(x, y));
    }

    #[test]
    fn grow_covers_new_terms() {
        let (mut arena, ids) = setup();
        let (x, y) = (ids[0], ids[1]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        // Intern a new application after construction; grow() must cover
        // it and congruence must still fire.
        let gx = arena.intern(Term::App(Symbol::new("g"), vec![x]), Sort::Int);
        let gy = arena.intern(Term::App(Symbol::new("g"), vec![y]), Sort::Int);
        euf.grow(&arena);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(gx, gy));
    }

    #[test]
    fn congruence_merges_do_not_survive_pop() {
        // Congruence-derived merges are recorded only on the undo trail,
        // never in the assertion log, so pop must fully undo them.
        let (arena, ids) = setup();
        let (x, y, fx, fy) = (ids[0], ids[1], ids[3], ids[4]);
        let mut euf = Euf::new(&arena);
        euf.push();
        euf.assert_eq(x, y);
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(euf.same_class(fx, fy));
        euf.pop();
        assert_eq!(euf.check(&arena), EufResult::Sat);
        assert!(!euf.same_class(fx, fy));
        assert!(!euf.same_class(x, y));
    }
}
