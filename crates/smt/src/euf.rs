//! Congruence closure for equality with uninterpreted functions.
//!
//! The classic union-find + signature-table algorithm: asserted equalities
//! merge classes, congruent applications (same head, pairwise-equal
//! arguments) are merged transitively, and a conflict is reported when a
//! disequality spans one class or a class contains two distinct constants
//! (integer literals, `true`/`false`).

use crate::{Term, TermArena, TermId};
use std::collections::HashMap;

/// Result of a congruence-closure run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EufResult {
    /// The asserted literals are consistent in EUF.
    Sat,
    /// A conflict was detected (merged disequality or clashing constants).
    Unsat,
}

/// Congruence closure engine over a [`TermArena`].
///
/// The engine is rebuilt per theory check (the fleet of checks is large
/// but each is small, so non-incremental closure keeps the code simple
/// and auditable).
pub struct Euf<'a> {
    arena: &'a TermArena,
    parent: Vec<u32>,
    rank: Vec<u32>,
    /// Asserted disequalities.
    diseqs: Vec<(TermId, TermId)>,
    /// Pending merges.
    pending: Vec<(TermId, TermId)>,
}

impl<'a> Euf<'a> {
    /// Creates a closure engine over all terms currently in the arena.
    pub fn new(arena: &'a TermArena) -> Euf<'a> {
        let n = arena.len();
        Euf {
            arena,
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            diseqs: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Representative of `t`'s class.
    pub fn find(&mut self, t: TermId) -> TermId {
        let mut r = t.0;
        while self.parent[r as usize] != r {
            // Path halving.
            self.parent[r as usize] = self.parent[self.parent[r as usize] as usize];
            r = self.parent[r as usize];
        }
        TermId(r)
    }

    /// Asserts `a = b`.
    pub fn assert_eq(&mut self, a: TermId, b: TermId) {
        self.pending.push((a, b));
    }

    /// Asserts `a != b`.
    pub fn assert_ne(&mut self, a: TermId, b: TermId) {
        self.diseqs.push((a, b));
    }

    /// Computes the closure and checks consistency.
    pub fn check(&mut self) -> EufResult {
        // Fixpoint: merge pending pairs, then recompute congruences until
        // no new merge appears.
        loop {
            while let Some((a, b)) = self.pending.pop() {
                self.merge(a, b);
            }
            if !self.propagate_congruences() {
                break;
            }
        }
        if self.has_conflict() {
            EufResult::Unsat
        } else {
            EufResult::Sat
        }
    }

    /// Whether `a` and `b` are in the same class (call after [`Euf::check`]).
    pub fn same_class(&mut self, a: TermId, b: TermId) -> bool {
        self.find(a) == self.find(b)
    }

    fn merge(&mut self, a: TermId, b: TermId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (child, root) = if self.rank[ra.index()] < self.rank[rb.index()] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[child.index()] == self.rank[root.index()] {
            self.rank[root.index()] += 1;
        }
        self.parent[child.0 as usize] = root.0;
    }

    /// One congruence pass; returns true if any merge was queued.
    fn propagate_congruences(&mut self) -> bool {
        let mut sigs: HashMap<(dsolve_logic::Symbol, Vec<TermId>), TermId> = HashMap::new();
        let mut changed = false;
        for id in self.arena.ids() {
            if let Term::App(f, args) = self.arena.term(id) {
                let canon: Vec<TermId> = args.iter().map(|a| self.find(*a)).collect();
                match sigs.entry((*f, canon)) {
                    std::collections::hash_map::Entry::Occupied(prev) => {
                        let other = *prev.get();
                        if self.find(other) != self.find(id) {
                            self.pending.push((other, id));
                            changed = true;
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(id);
                    }
                }
            }
        }
        changed
    }

    fn has_conflict(&mut self) -> bool {
        // Disequality merged into one class.
        let diseqs = self.diseqs.clone();
        for (a, b) in diseqs {
            if self.find(a) == self.find(b) {
                return true;
            }
        }
        // Two distinct constants in one class.
        let mut const_of_class: HashMap<TermId, &Term> = HashMap::new();
        for id in self.arena.ids() {
            let t = self.arena.term(id);
            if matches!(t, Term::Int(_) | Term::Bool(_)) {
                let root = self.find(id);
                if let Some(prev) = const_of_class.get(&root) {
                    if **prev != *t {
                        return true;
                    }
                } else {
                    const_of_class.insert(root, t);
                }
            }
        }
        false
    }

    /// All pairs of distinct representatives that were merged, restricted
    /// to the given terms — used for Nelson–Oppen equality propagation.
    pub fn equalities_among(&mut self, terms: &[TermId]) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for (i, &a) in terms.iter().enumerate() {
            for &b in &terms[i + 1..] {
                if self.find(a) == self.find(b) {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{Sort, Symbol};

    fn setup() -> (TermArena, Vec<TermId>) {
        let mut a = TermArena::new();
        let s = Sort::Int;
        let x = a.intern(Term::Var(Symbol::new("x"), s.clone()), s.clone());
        let y = a.intern(Term::Var(Symbol::new("y"), s.clone()), s.clone());
        let z = a.intern(Term::Var(Symbol::new("z"), s.clone()), s.clone());
        let fx = a.intern(Term::App(Symbol::new("f"), vec![x]), s.clone());
        let fy = a.intern(Term::App(Symbol::new("f"), vec![y]), s.clone());
        let ffx = a.intern(Term::App(Symbol::new("f"), vec![fx]), s.clone());
        (a, vec![x, y, z, fx, fy, ffx])
    }

    #[test]
    fn congruence_merges_applications() {
        let (arena, ids) = setup();
        let (x, y, _, fx, fy, _) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(), EufResult::Sat);
        assert!(euf.same_class(fx, fy));
    }

    #[test]
    fn transitivity_and_conflict() {
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        euf.assert_eq(y, z);
        euf.assert_ne(x, z);
        assert_eq!(euf.check(), EufResult::Unsat);
    }

    #[test]
    fn congruence_chain_conflict() {
        // x = f(x), plus f(f(x)) != x is a conflict: f(x)=f(f(x)) by
        // congruence from x=f(x), hence x = f(x) = f(f(x)).
        let (arena, ids) = setup();
        let (x, fx, ffx) = (ids[0], ids[3], ids[5]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, fx);
        euf.assert_ne(ffx, x);
        assert_eq!(euf.check(), EufResult::Unsat);
    }

    #[test]
    fn distinct_constants_conflict() {
        let mut a = TermArena::new();
        let one = a.intern(Term::Int(1), Sort::Int);
        let two = a.intern(Term::Int(2), Sort::Int);
        let x = a.intern(Term::Var(Symbol::new("x"), Sort::Int), Sort::Int);
        let mut euf = Euf::new(&a);
        euf.assert_eq(x, one);
        euf.assert_eq(x, two);
        assert_eq!(euf.check(), EufResult::Unsat);
    }

    #[test]
    fn bool_constants_distinct() {
        let mut a = TermArena::new();
        let t = a.intern(Term::Bool(true), Sort::Bool);
        let f = a.intern(Term::Bool(false), Sort::Bool);
        let mut euf = Euf::new(&a);
        euf.assert_eq(t, f);
        assert_eq!(euf.check(), EufResult::Unsat);
    }

    #[test]
    fn consistent_disequalities() {
        let (arena, ids) = setup();
        let (x, y) = (ids[0], ids[1]);
        let mut euf = Euf::new(&arena);
        euf.assert_ne(x, y);
        assert_eq!(euf.check(), EufResult::Sat);
        assert!(!euf.same_class(x, y));
    }

    #[test]
    fn equalities_among_interface_terms() {
        let (arena, ids) = setup();
        let (x, y, z) = (ids[0], ids[1], ids[2]);
        let mut euf = Euf::new(&arena);
        euf.assert_eq(x, y);
        assert_eq!(euf.check(), EufResult::Sat);
        let eqs = euf.equalities_among(&[x, y, z]);
        assert_eq!(eqs, vec![(x, y)]);
    }
}
