//! Incremental solving sessions: a persistent encoder + SAT core with
//! assertion scopes.
//!
//! A [`Session`] keeps the atom table, term arena, CNF variable map,
//! and the CDCL clause database alive across many related queries, so
//! that checking dozens of consequents under one antecedent re-encodes
//! only the consequent instead of the whole formula. Scoped assertions
//! are undone by [`Session::pop`] via the SAT core's clause watermark;
//! everything *definitional or theory-valid* — Tseitin variables for
//! split equalities, set-saturation lemmas, array-axiom instances, and
//! theory blocking clauses — is retained across pops, because a valid
//! clause can never change a verdict, only speed it up.
//!
//! The preprocessing pipeline mirrors the scratch solver's
//! (`canonicalize sets → saturate set lemmas → instantiate array
//! axioms → eliminate ite → encode`), restructured so the lemma passes
//! yield *lists* regenerated from the full asserted conjunction at each
//! check (deduplicated against a monotone seen-set — the instantiation
//! watermark), and set canonicalization runs per asserted predicate
//! (sound because it distributes over conjunction).

use crate::arrays::array_axiom_lemmas;
use crate::cnf::{encode_incremental, AtomId, Atoms, EncodeCtx};
use crate::sat::{CdclSolver, Lit, SatResult};
use crate::sets::{canonicalize_sets, set_saturation_lemma_list};
use crate::solver::{eliminate_ite, SmtResult, SolverStats};
use crate::theory::{check_assignment, TheoryBudget, TheoryResult};
use dsolve_logic::{deadline_expired, Budget, Exhaustion, Phase, Pred, Resource, SortEnv};
use dsolve_obs::{theory as theory_timer, TheoryKind};
use std::collections::HashSet;
use std::time::Instant;

/// Persistent state for one incremental solving session.
pub(crate) struct Session {
    /// Sort environment, extended by fresh `ite` definition variables.
    env: SortEnv,
    atoms: Atoms,
    ctx: EncodeCtx,
    sat: CdclSolver,
    array_axioms: bool,
    /// Canonicalized asserted predicates, in assertion order. Scopes
    /// truncate this on pop.
    asserted: Vec<Pred>,
    /// How many of `asserted` have been encoded into the SAT core.
    encoded_upto: usize,
    /// Open scopes: `(asserted length, choice flag)` at push time.
    scopes: Vec<(usize, bool)>,
    /// Lemma predicates already encoded, across the whole session.
    /// Monotone: retained lemma clauses survive pops, so this never
    /// shrinks.
    lemma_seen: HashSet<Pred>,
    /// Whether the current clause database leaves the SAT solver any
    /// real choice (some clause with more than one literal) — used to
    /// skip conflict-core minimization on purely conjunctive queries.
    choice: bool,
    /// Like `choice`, but set only by retained (lemma) clauses; pops
    /// restore `choice` to its push-time value OR'd with this.
    lemma_choice: bool,
    /// Whether to independently certify definite verdicts (replaying
    /// `Sat` models through the predicate evaluator and `Unsat` theory
    /// cores through the theory stack).
    certify: bool,
    /// The ite-eliminated form of each encoded assertion, in encoding
    /// order (`elim.len() == encoded_upto`). Only maintained under
    /// `certify`: it is the formula the `Sat`-model evaluator replays,
    /// since the raw assertions may contain `ite` terms the encoder
    /// rewrote away.
    elim: Vec<Pred>,
}

impl Session {
    /// Creates an empty session over (a clone of) `env`.
    pub(crate) fn new(env: SortEnv, array_axioms: bool, certify: bool) -> Session {
        Session {
            env,
            atoms: Atoms::new(),
            ctx: EncodeCtx::new(),
            sat: CdclSolver::new(),
            array_axioms,
            asserted: Vec::new(),
            encoded_upto: 0,
            scopes: Vec::new(),
            lemma_seen: HashSet::new(),
            choice: false,
            lemma_choice: false,
            certify,
            elim: Vec::new(),
        }
    }

    /// The session's sort environment (extended by `ite` definitions).
    pub(crate) fn env(&self) -> &SortEnv {
        &self.env
    }

    /// The asserted conjunction, for re-solving from scratch when the
    /// incremental path is abandoned (fault-injection retries).
    pub(crate) fn conjunction(&self) -> Pred {
        match self.asserted.len() {
            0 => Pred::True,
            1 => self.asserted[0].clone(),
            _ => Pred::and(self.asserted.clone()),
        }
    }

    /// Opens an assertion scope.
    ///
    /// Encoding of pending assertions is flushed *first*: clauses for a
    /// predicate asserted outside this scope must enter the SAT core
    /// below the scope's clause watermark, or [`Session::pop`] would
    /// discard them while `encoded_upto` still counts them as encoded.
    pub(crate) fn push(&mut self) {
        self.encode_pending();
        self.scopes.push((self.asserted.len(), self.choice));
        self.sat.push_scope();
    }

    /// Closes the innermost scope, dropping its assertions (clauses,
    /// root-level units) while keeping every retained lemma.
    pub(crate) fn pop(&mut self) {
        let (mark, choice) = self.scopes.pop().expect("pop without matching push");
        self.asserted.truncate(mark);
        self.encoded_upto = self.encoded_upto.min(mark);
        self.elim.truncate(self.encoded_upto);
        self.sat.pop_scope();
        self.choice = choice || self.lemma_choice;
    }

    /// Asserts `p` (conjoined with everything previously asserted).
    /// Set canonicalization happens here, per predicate; the encoding
    /// itself is deferred to [`Session::check`].
    pub(crate) fn assert_pred(&mut self, p: &Pred) {
        let canon = theory_timer::time(TheoryKind::Sets, || canonicalize_sets(p));
        self.asserted.push(canon);
    }

    fn grow_sat(&mut self) {
        while self.sat.num_vars() < self.ctx.num_vars() {
            self.sat.new_var();
        }
    }

    fn add_lemma_clauses(&mut self, clauses: Vec<Vec<Lit>>) {
        for c in clauses {
            if c.len() > 1 {
                self.choice = true;
                self.lemma_choice = true;
            }
            self.sat.add_lemma(c);
        }
    }

    /// Encodes assertions not yet in the SAT core, at the current scope
    /// depth. Clause additions require root level, so a prior `Sat`
    /// answer's trail is unwound first.
    fn encode_pending(&mut self) {
        if self.encoded_upto == self.asserted.len() {
            return;
        }
        self.sat.reset_to_root();
        while self.encoded_upto < self.asserted.len() {
            let p = self.asserted[self.encoded_upto].clone();
            self.encoded_upto += 1;
            let p = eliminate_ite(&p, &mut self.env);
            if self.certify {
                self.elim.push(p.clone());
            }
            let unit = encode_incremental(&p, &mut self.atoms, &self.env, &mut self.ctx);
            self.grow_sat();
            for c in unit.clauses {
                if c.len() > 1 {
                    self.choice = true;
                }
                self.sat.add_clause(c);
            }
            self.add_lemma_clauses(unit.lemma_clauses);
        }
    }

    /// Decides satisfiability of the asserted conjunction, mirroring the
    /// scratch solver's DPLL(T) loop. Entry budgets (query cap, overall
    /// deadline) are the caller's responsibility.
    pub(crate) fn check(
        &mut self,
        budget: &Budget,
        deadline: Option<Instant>,
        stats: &mut SolverStats,
    ) -> SmtResult {
        // A previous check may have returned Sat with decisions still on
        // the trail; clause additions require root level.
        self.sat.reset_to_root();

        // Lemma generation runs over the *full* current conjunction:
        // saturation interacts across asserted predicates, and the array
        // pass also instantiates over terms the set lemmas introduce,
        // exactly as the scratch pipeline (which strengthens first and
        // instantiates second) does.
        let conj = match self.asserted.len() {
            0 => Pred::True,
            1 => self.asserted[0].clone(),
            _ => Pred::and(self.asserted.clone()),
        };
        let (set_lemmas, saturation_truncated) = theory_timer::time(TheoryKind::Sets, || {
            set_saturation_lemma_list(&conj, budget.max_saturation_lemmas)
        });
        let arr_lemmas = if self.array_axioms {
            theory_timer::time(TheoryKind::Arrays, || {
                let mut parts = vec![conj];
                parts.extend(set_lemmas.iter().cloned());
                array_axiom_lemmas(&Pred::and(parts))
            })
        } else {
            Vec::new()
        };

        // Encode assertions made since the last push/check at the
        // current scope depth.
        self.encode_pending();

        // Encode lemmas not seen before as retained clauses. Each lemma
        // is valid on its own (guarded ground instances), so retention
        // across pops cannot flip a verdict.
        for lem in set_lemmas.into_iter().chain(arr_lemmas) {
            if !self.lemma_seen.insert(lem.clone()) {
                continue;
            }
            let lem = eliminate_ite(&lem, &mut self.env);
            let unit = encode_incremental(&lem, &mut self.atoms, &self.env, &mut self.ctx);
            self.grow_sat();
            self.add_lemma_clauses(unit.clauses);
            self.add_lemma_clauses(unit.lemma_clauses);
        }

        // Every atom needs a SAT variable before model extraction (atoms
        // from popped scopes linger in the table; their values are
        // unconstrained, which is sound — the theory layer refutes any
        // inconsistent polarity with a blocking lemma, and a consistent
        // polarity extension always exists).
        for i in 0..self.atoms.len() {
            let _ = self.ctx.var_of_atom(AtomId(i as u32));
        }
        self.grow_sat();

        let theory_budget = TheoryBudget {
            bb_nodes: budget.max_bb_nodes,
            deadline,
        };
        let sat_verdict = |truncated: bool| {
            if truncated {
                SmtResult::Unknown(Exhaustion::with_detail(
                    Phase::Saturation,
                    Resource::SaturationLemmas,
                    format!("cap {}", budget.max_saturation_lemmas),
                ))
            } else {
                SmtResult::Sat
            }
        };

        let minimize = self.choice;
        // Certificate material for an eventual `Unsat`: the literal sets
        // behind every theory blocking clause learned in this check.
        let mut cores: Vec<Vec<(AtomId, bool)>> = Vec::new();
        let mut conflicts = 0u64;
        loop {
            let sat_verdict_raw = theory_timer::time(TheoryKind::Sat, || {
                self.sat.solve_within(deadline, budget.max_sat_conflicts)
            });
            match sat_verdict_raw {
                SatResult::Unsat => {
                    if self.certify {
                        if let Err(why) =
                            crate::certify::certify_unsat(&self.atoms, &cores, &theory_budget)
                        {
                            return crate::solver::certification_unknown(why);
                        }
                    }
                    return SmtResult::Unsat;
                }
                SatResult::Unknown => {
                    let resource = if deadline_expired(deadline) {
                        Resource::Deadline
                    } else {
                        Resource::SatConflicts
                    };
                    return SmtResult::Unknown(Exhaustion::new(Phase::Sat, resource));
                }
                SatResult::Sat => {
                    let assignment: Vec<(AtomId, bool)> = (0..self.atoms.len())
                        .map(|i| {
                            let aid = AtomId(i as u32);
                            let v = self.ctx.lookup_atom(aid).expect("atom mapped above");
                            (aid, self.sat.model_value(v))
                        })
                        .collect();
                    stats.theory_checks += 1;
                    match check_assignment(&self.atoms, &assignment, minimize, &theory_budget) {
                        TheoryResult::Sat => {
                            let verdict = sat_verdict(saturation_truncated);
                            if self.certify && verdict == SmtResult::Sat {
                                // Every asserted (ite-eliminated) predicate
                                // must hold under the model.
                                for q in &self.elim {
                                    match crate::certify::eval_pred(
                                        q,
                                        &mut self.atoms,
                                        &self.env,
                                        &assignment,
                                    ) {
                                        Some(true) => {}
                                        Some(false) => {
                                            return crate::solver::certification_unknown(
                                                "countermodel does not satisfy an asserted predicate"
                                                    .into(),
                                            );
                                        }
                                        None => {
                                            return crate::solver::certification_unknown(
                                                "countermodel leaves an asserted predicate undetermined"
                                                    .into(),
                                            );
                                        }
                                    }
                                }
                            }
                            return verdict;
                        }
                        TheoryResult::Unknown(resource) => {
                            return SmtResult::Unknown(Exhaustion::new(Phase::Simplex, resource));
                        }
                        TheoryResult::Unsat(core) => {
                            stats.theory_conflicts += 1;
                            if self.certify {
                                cores.push(core.iter().map(|&ix| assignment[ix]).collect());
                            }
                            conflicts += 1;
                            if conflicts > budget.max_theory_conflicts {
                                return SmtResult::Unknown(Exhaustion::with_detail(
                                    Phase::Smt,
                                    Resource::TheoryConflicts,
                                    format!("cap {}", budget.max_theory_conflicts),
                                ));
                            }
                            // Theory blocking clauses are valid facts and
                            // therefore retained lemmas: a refuted atom
                            // combination stays refuted in every scope.
                            let block: Vec<Lit> = core
                                .iter()
                                .map(|&ix| {
                                    let (aid, val) = assignment[ix];
                                    let v =
                                        self.ctx.lookup_atom(aid).expect("atom mapped above");
                                    Lit::new(v, !val)
                                })
                                .collect();
                            self.sat.reset_to_root();
                            self.add_lemma_clauses(vec![block]);
                        }
                    }
                }
            }
        }
    }
}
