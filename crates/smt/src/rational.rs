//! Exact rational arithmetic for the simplex core.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number with an `i128` numerator and denominator.
///
/// Always kept in lowest terms with a strictly positive denominator.
/// Tableau coefficients in the benchmarks stay tiny, so `i128` leaves an
/// enormous safety margin; arithmetic panics on overflow (debug and
/// release) rather than silently wrapping, which would be unsound.
///
/// # Examples
///
/// ```
/// use dsolve_smt::Rat;
/// let a = Rat::new(1, 3);
/// let b = Rat::new(1, 6);
/// assert_eq!(a + b, Rat::new(1, 2));
/// assert!(a > b);
/// assert_eq!((a / b), Rat::from_int(2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    /// Creates the integer `n`.
    pub fn from_int(n: i64) -> Rat {
        Rat {
            num: i128::from(n),
            den: 1,
        }
    }

    /// The numerator (lowest terms, sign-carrying).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// The denominator (lowest terms, positive).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// Whether the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// Whether the value is strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// The floor of the rational as a rational.
    pub fn floor(self) -> Rat {
        Rat::new(self.num.div_euclid(self.den), 1)
    }

    /// The ceiling of the rational as a rational.
    pub fn ceil(self) -> Rat {
        Rat::new(-((-self.num).div_euclid(self.den)), 1)
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(
            self.num
                .checked_mul(rhs.den)
                .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
                .expect("rational overflow in addition"),
            self.den
                .checked_mul(rhs.den)
                .expect("rational overflow in addition"),
        )
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::new(
            self.num
                .checked_mul(rhs.num)
                .expect("rational overflow in multiplication"),
            self.den
                .checked_mul(rhs.den)
                .expect("rational overflow in multiplication"),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    // Division *is* multiplication by the reciprocal here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in comparison");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in comparison");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
        assert_eq!(Rat::new(-3, -6), Rat::new(1, 2));
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a + b, Rat::new(5, 6));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 6));
        assert_eq!(a / b, Rat::new(3, 2));
        assert_eq!(-a, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(2) > Rat::new(3, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), Rat::from_int(3));
        assert_eq!(Rat::new(7, 2).ceil(), Rat::from_int(4));
        assert_eq!(Rat::new(-7, 2).floor(), Rat::from_int(-4));
        assert_eq!(Rat::new(-7, 2).ceil(), Rat::from_int(-3));
        assert_eq!(Rat::from_int(5).floor(), Rat::from_int(5));
    }

    #[test]
    fn integrality() {
        assert!(Rat::from_int(3).is_integer());
        assert!(!Rat::new(1, 2).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
