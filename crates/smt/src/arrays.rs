//! McCarthy array-axiom instantiation.
//!
//! The paper (§5.2) combines polymorphic refinements with the classical
//! `Sel`/`Upd` operators and their read-over-write axioms:
//!
//! ```text
//! ∀m,i,v.   Sel(Upd(m,i,v), i) = v
//! ∀m,i,j,v. i = j ∨ Sel(Upd(m,i,v), j) = Sel(m, j)
//! ```
//!
//! Our ground solver cannot hold quantified facts, so this pass
//! instantiates them eagerly: for every update term `Upd(m,i,v)` and every
//! read index `j` occurring in the formula, it conjoins
//!
//! ```text
//! (j = i  ⇒ Sel(Upd(m,i,v), j) = v) ∧ (j ≠ i ⇒ Sel(Upd(m,i,v), j) = Sel(m, j))
//! ```
//!
//! iterating because the right-hand side introduces reads over the inner
//! map `m` (the nesting depth of updates bounds the iteration). Reads over
//! *variables* equated to update terms are connected by congruence
//! closure, so the unconditional instances above suffice.

use dsolve_logic::{Expr, Pred};
use std::collections::BTreeSet;

/// Conjoins ground instances of the read-over-write axioms to `p`.
///
/// Returns `p` unchanged when the formula contains no `Upd` terms.
pub fn instantiate_array_axioms(p: &Pred) -> Pred {
    let lemmas = array_axiom_lemmas(p);
    if lemmas.is_empty() {
        return p.clone();
    }
    let mut parts = vec![p.clone()];
    parts.extend(lemmas);
    Pred::and(parts)
}

/// The lemma list behind [`instantiate_array_axioms`], without
/// conjoining: every returned predicate is a valid axiom instance on
/// its own, so incremental callers may retain them across assertion
/// scopes. The instantiation order matches [`instantiate_array_axioms`]
/// exactly.
pub fn array_axiom_lemmas(p: &Pred) -> Vec<Pred> {
    let mut upds: BTreeSet<Expr> = BTreeSet::new();
    let mut indices: BTreeSet<Expr> = BTreeSet::new();
    collect_pred(p, &mut upds, &mut indices);
    if upds.is_empty() {
        return Vec::new();
    }

    let mut lemmas: Vec<Pred> = Vec::new();
    let mut done: BTreeSet<(Expr, Expr)> = BTreeSet::new();
    // Iterate: lemmas mention Sel(m, j) for inner maps m which may
    // themselves be updates.
    let mut frontier: Vec<Expr> = upds.iter().cloned().collect();
    while let Some(u) = frontier.pop() {
        let Expr::Upd(m, i, v) = &u else { continue };
        for j in indices.clone() {
            if !done.insert((u.clone(), j.clone())) {
                continue;
            }
            let read = Expr::sel(u.clone(), j.clone());
            let hit = Pred::imp(
                Pred::eq(j.clone(), (**i).clone()),
                Pred::eq(read.clone(), (**v).clone()),
            );
            let inner_read = Expr::sel((**m).clone(), j.clone());
            let miss = Pred::imp(
                Pred::ne(j.clone(), (**i).clone()),
                Pred::eq(read, inner_read),
            );
            lemmas.push(hit);
            lemmas.push(miss);
            if matches!(**m, Expr::Upd(..)) {
                frontier.push((**m).clone());
            }
        }
    }
    lemmas
}

fn collect_pred(p: &Pred, upds: &mut BTreeSet<Expr>, indices: &mut BTreeSet<Expr>) {
    match p {
        Pred::True | Pred::False => {}
        Pred::Atom(_, a, b) => {
            collect_expr(a, upds, indices);
            collect_expr(b, upds, indices);
        }
        Pred::And(ps) | Pred::Or(ps) => {
            for q in ps {
                collect_pred(q, upds, indices);
            }
        }
        Pred::Not(q) => collect_pred(q, upds, indices),
        Pred::Imp(a, b) | Pred::Iff(a, b) => {
            collect_pred(a, upds, indices);
            collect_pred(b, upds, indices);
        }
        Pred::Term(e) => collect_expr(e, upds, indices),
    }
}

fn collect_expr(e: &Expr, upds: &mut BTreeSet<Expr>, indices: &mut BTreeSet<Expr>) {
    match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) | Expr::SetEmpty => {}
        Expr::Binop(_, a, b) | Expr::SetUnion(a, b) => {
            collect_expr(a, upds, indices);
            collect_expr(b, upds, indices);
        }
        Expr::Neg(a) | Expr::SetSingle(a) => collect_expr(a, upds, indices),
        Expr::Ite(c, t, f) => {
            collect_pred(c, upds, indices);
            collect_expr(t, upds, indices);
            collect_expr(f, upds, indices);
        }
        Expr::App(_, args) => {
            for a in args {
                collect_expr(a, upds, indices);
            }
        }
        Expr::Sel(m, i) => {
            indices.insert((**i).clone());
            collect_expr(m, upds, indices);
            collect_expr(i, upds, indices);
        }
        Expr::Upd(m, i, v) => {
            upds.insert(e.clone());
            // Write indices are also interesting read points.
            indices.insert((**i).clone());
            collect_expr(m, upds, indices);
            collect_expr(i, upds, indices);
            collect_expr(v, upds, indices);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_pred;

    #[test]
    fn no_updates_is_identity() {
        let p = parse_pred("Sel(m, i) = 0").unwrap();
        assert_eq!(instantiate_array_axioms(&p), p);
    }

    #[test]
    fn read_over_write_instantiated() {
        let p = parse_pred("mp = Upd(m, k, 1) && Sel(mp, j) = 0").unwrap();
        let out = instantiate_array_axioms(&p);
        let s = out.to_string();
        // The hit case for index j over Upd(m, k, 1) must be present.
        assert!(s.contains("(j = k) => (Sel(Upd(m, k, 1), j) = 1)"), "{s}");
        // And the miss case connecting to the inner map.
        assert!(
            s.contains("(j != k) => (Sel(Upd(m, k, 1), j) = Sel(m, j))"),
            "{s}"
        );
    }

    #[test]
    fn write_index_is_a_read_point() {
        let p = parse_pred("mp = Upd(m, k, 1)").unwrap();
        let out = instantiate_array_axioms(&p);
        let s = out.to_string();
        assert!(s.contains("(k = k) => (Sel(Upd(m, k, 1), k) = 1)"), "{s}");
    }

    #[test]
    fn nested_updates_iterate() {
        let p = parse_pred("mp = Upd(Upd(m, a, 1), b, 2) && Sel(mp, j) = 0").unwrap();
        let out = instantiate_array_axioms(&p);
        let s = out.to_string();
        // Outer miss introduces Sel(Upd(m,a,1), j); the inner update must
        // also be instantiated at j.
        assert!(s.contains("(j != a) => (Sel(Upd(m, a, 1), j) = Sel(m, j))"), "{s}");
    }
}
