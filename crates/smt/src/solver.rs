//! The public SMT interface: satisfiability and validity of
//! quantifier-free EUFA + arrays + sets predicates.
//!
//! Architecture (lazy SMT): preprocess (set canonicalization, array axiom
//! instantiation, if-then-else lifting) → atomize + Tseitin-encode → CDCL
//! enumeration with full-model theory checks and minimized blocking
//! clauses.

use crate::arrays::instantiate_array_axioms;
use crate::cache::QueryCache;
use crate::cnf::{encode, Atoms};
use crate::sat::{CdclSolver, Lit, SatResult};
use crate::sets::{canonicalize_sets, set_saturation_lemmas};
use crate::theory::{check_assignment, TheoryBudget, TheoryResult};
use dsolve_logic::{
    deadline_expired, Budget, Exhaustion, Expr, FaultPlan, FaultPoint, Phase, Pred, Resource,
    Sort, SortEnv, Symbol,
};
use dsolve_obs::{log_error, theory as theory_timer, Obs, QueryOrigin, TheoryKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cumulative statistics over a solver's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Satisfiability queries answered.
    pub sat_queries: u64,
    /// Validity queries answered.
    pub valid_queries: u64,
    /// Validity queries answered from the cache.
    pub cache_hits: u64,
    /// Propositional models submitted to the theory layer.
    pub theory_checks: u64,
    /// Blocking clauses learned from theory conflicts.
    pub theory_conflicts: u64,
    /// Incremental sessions opened ([`SmtSolver::check_valid_many`]
    /// batches and explicit [`SmtSolver::start_incremental`] calls).
    pub sessions: u64,
    /// Scoped checks decided inside incremental sessions; the ratio
    /// `scoped_checks / sessions` is the scope reuse rate — how many
    /// queries each shared encoding served.
    pub scoped_checks: u64,
    /// Queries this solver actually solved (each charged one unit
    /// against `--max-smt-queries`). Unlike the shared counter behind
    /// [`SmtSolver::queries_charged`], this is local to the solver, so
    /// parallel fixpoint workers report per-worker totals from it.
    pub solved_queries: u64,
}

/// Configuration knobs (exposed for the ablation benchmarks).
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Memoize validity queries (structural hash of the implication).
    pub cache: bool,
    /// Instantiate the McCarthy read-over-write axioms.
    pub array_axioms: bool,
    /// Resource limits (deadline, query cap, per-query search caps).
    /// Exhausting any of them yields a reported `Unknown`, never a
    /// silently guessed verdict.
    pub budget: Budget,
    /// Independently certify every definite verdict: replay `Sat`
    /// countermodels through a structural predicate evaluator and `Unsat`
    /// theory cores through the theory stack. A certificate that fails to
    /// replay downgrades the answer to `Unknown` with
    /// [`Resource::Certification`]; it never flips it.
    pub certify: bool,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            cache: true,
            array_axioms: true,
            budget: Budget::default(),
            certify: false,
        }
    }
}

/// Three-valued satisfiability verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SmtResult {
    /// A theory-consistent model exists.
    Sat,
    /// No model exists.
    Unsat,
    /// A budget ran out before the query was decided.
    Unknown(Exhaustion),
}

/// Three-valued validity verdict for `antecedent ⇒ consequent`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Validity {
    /// The implication holds in every model.
    Valid,
    /// A countermodel exists.
    Invalid,
    /// A budget ran out before the query was decided.
    Unknown(Exhaustion),
}

/// A reusable SMT solver for refinement implication checks.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{parse_pred, Sort, SortEnv, Symbol};
/// use dsolve_smt::SmtSolver;
///
/// let mut env = SortEnv::new();
/// env.bind(Symbol::new("x"), Sort::Int);
/// env.bind(Symbol::new("y"), Sort::Int);
///
/// let mut smt = SmtSolver::new();
/// let lhs = parse_pred("x < y").unwrap();
/// let rhs = parse_pred("x != y").unwrap();
/// assert!(smt.is_valid(&env, &lhs, &rhs));
/// assert!(!smt.is_valid(&env, &rhs, &lhs));
/// ```
pub struct SmtSolver {
    /// Statistics (monotone counters).
    pub stats: SolverStats,
    config: SolverConfig,
    /// Validity memo table. Private by default; [`SmtSolver::share_cache`]
    /// installs a handle shared with other solvers (parallel fixpoint
    /// workers, the obligation pass).
    cache: Arc<QueryCache>,
    /// Queries charged against `budget.max_smt_queries`. Shared via
    /// [`SmtSolver::share_query_counter`] so the cap covers the *sum*
    /// across concurrent solvers, not each one separately.
    queries: Arc<AtomicU64>,
    /// Absolute wall-clock deadline for all queries on this solver.
    deadline: Option<Instant>,
    /// Whether `deadline` has been initialized (either explicitly via
    /// [`SmtSolver::set_deadline`] or lazily from `config.budget.timeout`
    /// on the first query).
    deadline_armed: bool,
    /// The active incremental session, if [`SmtSolver::start_incremental`]
    /// opened one.
    session: Option<Box<crate::session::Session>>,
    /// Observability handle: metrics registry, query latency histogram,
    /// and per-constraint cost attribution. Disabled by default;
    /// [`SmtSolver::set_obs`] installs the pipeline's live handle.
    obs: Obs,
    /// Provenance stamped on every subsequently solved query (the
    /// liquid solver sets it before discharging each constraint).
    origin: Option<QueryOrigin>,
    /// Deterministic fault-injection plan (`--inject-fault`). `None` in
    /// production; threaded explicitly instead of process-global so
    /// concurrent solves never observe each other's faults.
    fault: Option<Arc<FaultPlan>>,
}

impl Default for SmtSolver {
    fn default() -> SmtSolver {
        SmtSolver {
            stats: SolverStats::default(),
            config: SolverConfig::default(),
            cache: QueryCache::shared(),
            queries: Arc::new(AtomicU64::new(0)),
            deadline: None,
            deadline_armed: false,
            session: None,
            obs: Obs::off(),
            origin: None,
            fault: None,
        }
    }
}

impl SmtSolver {
    /// Creates a solver with the default configuration.
    pub fn new() -> SmtSolver {
        SmtSolver::default()
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> SmtSolver {
        SmtSolver {
            config,
            ..SmtSolver::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> SolverConfig {
        self.config
    }

    /// Installs a shared validity cache (replacing the private one), so
    /// this solver reuses — and contributes — answers across solvers.
    pub fn share_cache(&mut self, cache: Arc<QueryCache>) {
        self.cache = cache;
    }

    /// The cache handle in use (shared or private).
    pub fn cache_handle(&self) -> Arc<QueryCache> {
        Arc::clone(&self.cache)
    }

    /// Installs a shared query counter: `budget.max_smt_queries` then
    /// caps the total across every solver holding the same counter.
    pub fn share_query_counter(&mut self, queries: Arc<AtomicU64>) {
        self.queries = queries;
    }

    /// Installs an observability handle. Every metrics-relevant event
    /// (check requested, cache hit/miss, query solved or refused,
    /// session opened, scoped check) records into its registry, making
    /// it the single source of truth for query accounting.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The observability handle in use.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Stamps the provenance attributed to subsequently solved queries
    /// (`None` clears it). The liquid fixpoint sets this before each
    /// constraint so query cost rolls up per program location.
    pub fn set_origin(&mut self, origin: Option<QueryOrigin>) {
        self.origin = origin;
    }

    /// Installs a deterministic fault-injection plan (`None` clears it).
    pub fn set_fault(&mut self, fault: Option<Arc<FaultPlan>>) {
        self.fault = fault;
    }

    /// Whether `point` fires now under the installed plan (occurrence
    /// counted; always `false` with no plan).
    fn fault_fires(&self, point: FaultPoint) -> bool {
        self.fault.as_ref().is_some_and(|f| f.fire(point))
    }

    /// The injected verdict for the `query-timeout` fault point.
    fn injected_timeout() -> Exhaustion {
        Exhaustion::with_detail(Phase::Smt, Resource::Deadline, "injected query-timeout")
    }

    /// Queries charged so far against the (possibly shared) cap.
    pub fn queries_charged(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Pins the absolute wall-clock deadline for every subsequent query.
    ///
    /// Callers that share one deadline across several phases (e.g. the
    /// liquid fixpoint) set it here instead of relying on the lazy
    /// conversion of `config.budget.timeout`, which would restart the
    /// clock at the first query.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
        self.deadline_armed = true;
    }

    /// The deadline in effect, arming it from the budget's relative
    /// timeout on first use.
    fn effective_deadline(&mut self) -> Option<Instant> {
        if !self.deadline_armed {
            self.deadline = self.config.budget.deadline_from_now();
            self.deadline_armed = true;
        }
        self.deadline
    }

    /// Whether the query cap has been used up (counting both kinds of
    /// top-level queries, summed across every solver sharing the
    /// counter).
    fn query_budget_exhausted(&self) -> bool {
        self.config
            .budget
            .max_smt_queries
            .is_some_and(|cap| self.queries.load(Ordering::Relaxed) >= cap)
    }

    /// Checks the per-query entry budgets (query cap, deadline). Returns
    /// the exhaustion to report, if any.
    fn entry_exhaustion(&mut self) -> Option<Exhaustion> {
        if self.query_budget_exhausted() {
            let cap = self.config.budget.max_smt_queries.unwrap_or(0);
            return Some(Exhaustion::with_detail(
                Phase::Smt,
                Resource::SmtQueries,
                format!("cap {cap}"),
            ));
        }
        if deadline_expired(self.effective_deadline()) {
            return Some(Exhaustion::new(Phase::Smt, Resource::Deadline));
        }
        None
    }

    /// Decides validity of `antecedent ⇒ consequent` under `env`,
    /// reporting `Unknown` when a budget runs out.
    ///
    /// The cache is consulted *before* any budget is charged: a hit
    /// costs no query from `--max-smt-queries` (it does no solving),
    /// and is served even after the cap is exhausted.
    pub fn check_valid(
        &mut self,
        env: &SortEnv,
        antecedent: &Pred,
        consequent: &Pred,
    ) -> Validity {
        self.stats.valid_queries += 1;
        self.obs.metrics().smt_checks.incr();
        if self.config.cache {
            if let Some(v) = self.cache.get(antecedent, consequent) {
                self.stats.cache_hits += 1;
                self.obs.metrics().smt_cache_hits.incr();
                return if v { Validity::Valid } else { Validity::Invalid };
            }
        }
        self.obs.metrics().smt_cache_misses.incr();
        if let Some(e) = self.entry_exhaustion() {
            self.obs.metrics().smt_refused.incr();
            return Validity::Unknown(e);
        }
        if self.fault_fires(FaultPoint::QueryTimeout) {
            self.obs.metrics().smt_refused.incr();
            return Validity::Unknown(Self::injected_timeout());
        }
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.solved_queries += 1;
        self.obs.metrics().smt_queries.incr();
        let qstart = Instant::now();
        let negated = Pred::and(vec![antecedent.clone(), Pred::not(consequent.clone())]);
        let verdict = self.check_sat_inner(env, &negated);
        self.note_certification(&verdict);
        self.obs
            .record_query(self.origin.as_ref(), qstart, validity_name(&verdict));
        self.settle_validity(antecedent, consequent, verdict)
    }

    /// Maps a solved negation verdict to a [`Validity`], caching definite
    /// answers. (Only definite answers are cached: an `Unknown` under one
    /// budget may well be decidable under a larger one.)
    fn settle_validity(
        &mut self,
        antecedent: &Pred,
        consequent: &Pred,
        verdict: SmtResult,
    ) -> Validity {
        match verdict {
            SmtResult::Unsat => {
                if self.config.cache {
                    self.cache.insert(antecedent, consequent, true);
                }
                Validity::Valid
            }
            SmtResult::Sat => {
                if self.config.cache {
                    self.cache.insert(antecedent, consequent, false);
                }
                Validity::Invalid
            }
            SmtResult::Unknown(e) => Validity::Unknown(e),
        }
    }

    /// Rolls a certification outcome into metrics, logging failures with
    /// query provenance. No-op unless `certify` is on.
    fn note_certification(&self, verdict: &SmtResult) {
        if !self.config.certify {
            return;
        }
        match verdict {
            SmtResult::Sat | SmtResult::Unsat => {
                self.obs.metrics().smt_certs_checked.incr();
            }
            SmtResult::Unknown(e) if e.resource == Resource::Certification => {
                self.obs.metrics().smt_certs_failed.incr();
                match &self.origin {
                    Some(o) => log_error!(
                        "certification failed for constraint {} ({}, round {}, worker {}): {}",
                        o.constraint,
                        o.label,
                        o.round,
                        o.worker,
                        e.detail
                    ),
                    None => log_error!("certification failed: {}", e.detail),
                }
            }
            SmtResult::Unknown(_) => {}
        }
    }

    /// Decides satisfiability of `p` under `env`, reporting `Unknown`
    /// when a budget runs out.
    pub fn check_sat(&mut self, env: &SortEnv, p: &Pred) -> SmtResult {
        self.obs.metrics().smt_checks.incr();
        self.obs.metrics().smt_cache_misses.incr();
        if let Some(e) = self.entry_exhaustion() {
            self.obs.metrics().smt_refused.incr();
            return SmtResult::Unknown(e);
        }
        if self.fault_fires(FaultPoint::QueryTimeout) {
            self.obs.metrics().smt_refused.incr();
            return SmtResult::Unknown(Self::injected_timeout());
        }
        self.stats.sat_queries += 1;
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.solved_queries += 1;
        self.obs.metrics().smt_queries.incr();
        let qstart = Instant::now();
        let verdict = self.check_sat_inner(env, p);
        self.note_certification(&verdict);
        self.obs
            .record_query(self.origin.as_ref(), qstart, smt_name(&verdict));
        verdict
    }

    /// Decides validity of `antecedent ⇒ consequent` under `env`.
    ///
    /// Boolean façade over [`SmtSolver::check_valid`]: incomplete corners
    /// (exhausted budgets, expired deadlines) resolve to *invalid*, never
    /// to *valid* — the verifier stays sound but may lose precision.
    /// Callers that need to distinguish "refuted" from "ran out of
    /// budget" use [`SmtSolver::check_valid`] directly.
    pub fn is_valid(&mut self, env: &SortEnv, antecedent: &Pred, consequent: &Pred) -> bool {
        matches!(
            self.check_valid(env, antecedent, consequent),
            Validity::Valid
        )
    }

    /// Decides satisfiability of `p` under `env`.
    ///
    /// Boolean façade over [`SmtSolver::check_sat`]: `Unknown` resolves
    /// to *satisfiable* (the solver could not refute the formula).
    pub fn is_sat(&mut self, env: &SortEnv, p: &Pred) -> bool {
        !matches!(self.check_sat(env, p), SmtResult::Unsat)
    }

    /// Opens an incremental session over `env`, replacing any session
    /// already active. Until [`SmtSolver::end_incremental`], the scope
    /// API ([`SmtSolver::push`], [`SmtSolver::pop`],
    /// [`SmtSolver::assert_pred`], [`SmtSolver::check_incremental`])
    /// operates on a persistent atom table, CNF variable map, and
    /// clause database, so repeated checks under shared assertions
    /// re-encode only what is new.
    pub fn start_incremental(&mut self, env: &SortEnv) {
        self.session = Some(Box::new(crate::session::Session::new(
            env.clone(),
            self.config.array_axioms,
            self.config.certify,
        )));
        self.stats.sessions += 1;
        self.obs.metrics().smt_sessions.incr();
    }

    /// Closes the active incremental session, if any, releasing its
    /// state.
    pub fn end_incremental(&mut self) {
        self.session = None;
    }

    /// Opens an assertion scope in the active incremental session.
    ///
    /// # Panics
    ///
    /// Panics when no session is active.
    pub fn push(&mut self) {
        self.session
            .as_mut()
            .expect("push: no active incremental session")
            .push();
    }

    /// Closes the innermost assertion scope, undoing every
    /// [`SmtSolver::assert_pred`] since the matching
    /// [`SmtSolver::push`] (retained lemmas survive).
    ///
    /// # Panics
    ///
    /// Panics when no session is active or no scope is open.
    pub fn pop(&mut self) {
        self.session
            .as_mut()
            .expect("pop: no active incremental session")
            .pop();
    }

    /// Asserts `p` in the active incremental session (conjoined with
    /// everything already asserted in the current scope stack).
    ///
    /// # Panics
    ///
    /// Panics when no session is active.
    pub fn assert_pred(&mut self, p: &Pred) {
        self.session
            .as_mut()
            .expect("assert_pred: no active incremental session")
            .assert_pred(p);
    }

    /// Decides satisfiability of the asserted conjunction in the active
    /// incremental session. Charges the query budget like
    /// [`SmtSolver::check_sat`] and reports `Unknown` on exhaustion.
    ///
    /// # Panics
    ///
    /// Panics when no session is active.
    pub fn check_incremental(&mut self) -> SmtResult {
        self.obs.metrics().smt_checks.incr();
        self.obs.metrics().smt_cache_misses.incr();
        if let Some(e) = self.entry_exhaustion() {
            self.obs.metrics().smt_refused.incr();
            return SmtResult::Unknown(e);
        }
        self.stats.sat_queries += 1;
        self.stats.scoped_checks += 1;
        self.obs.metrics().smt_scoped_checks.incr();
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.solved_queries += 1;
        self.obs.metrics().smt_queries.incr();
        let deadline = self.effective_deadline();
        let budget = self.config.budget;
        let mut session = self
            .session
            .take()
            .expect("check_incremental: no active incremental session");
        let qstart = Instant::now();
        let verdict = if self.fault_fires(FaultPoint::SessionFail) {
            // Injected mid-scope session failure: answer this query by
            // retrying once from scratch over the session's asserted
            // conjunction (the session itself survives for later checks).
            let conj = session.conjunction();
            let env = session.env().clone();
            self.check_sat_inner(&env, &conj)
        } else {
            session.check(&budget, deadline, &mut self.stats)
        };
        self.note_certification(&verdict);
        self.obs
            .record_query(self.origin.as_ref(), qstart, smt_name(&verdict));
        self.session = Some(session);
        verdict
    }

    /// Decides validity of `antecedent ⇒ consequentᵢ` for every
    /// consequent, encoding and preprocessing the antecedent *once* and
    /// deciding each consequent under a pushed assertion scope.
    ///
    /// Verdicts agree with per-query [`SmtSolver::check_valid`] (the
    /// scoped path runs the same preprocessing and theory stack), and
    /// definite answers populate the same shared [`QueryCache`], so
    /// parallel workers benefit from each other's batches. Cache hits
    /// are served without charging the query budget; each miss charges
    /// one query against `--max-smt-queries`, exactly like the scalar
    /// path.
    pub fn check_valid_many(
        &mut self,
        env: &SortEnv,
        antecedent: &Pred,
        consequents: &[Pred],
    ) -> Vec<Validity> {
        let mut out = Vec::with_capacity(consequents.len());
        let mut session: Option<Box<crate::session::Session>> = None;
        let budget = self.config.budget;
        for consequent in consequents {
            self.stats.valid_queries += 1;
            self.obs.metrics().smt_checks.incr();
            if self.config.cache {
                if let Some(v) = self.cache.get(antecedent, consequent) {
                    self.stats.cache_hits += 1;
                    self.obs.metrics().smt_cache_hits.incr();
                    out.push(if v { Validity::Valid } else { Validity::Invalid });
                    continue;
                }
            }
            self.obs.metrics().smt_cache_misses.incr();
            if let Some(e) = self.entry_exhaustion() {
                self.obs.metrics().smt_refused.incr();
                out.push(Validity::Unknown(e));
                continue;
            }
            if self.fault_fires(FaultPoint::QueryTimeout) {
                self.obs.metrics().smt_refused.incr();
                out.push(Validity::Unknown(Self::injected_timeout()));
                continue;
            }
            self.queries.fetch_add(1, Ordering::Relaxed);
            self.stats.solved_queries += 1;
            self.obs.metrics().smt_queries.incr();
            let deadline = self.effective_deadline();
            if self.fault_fires(FaultPoint::SessionFail) {
                // Injected session failure mid-batch: drop the shared
                // session (later consequents rebuild it) and retry this
                // query once from scratch before giving anything up.
                session = None;
                let qstart = Instant::now();
                let negated =
                    Pred::and(vec![antecedent.clone(), Pred::not(consequent.clone())]);
                let verdict = self.check_sat_inner(env, &negated);
                self.note_certification(&verdict);
                self.obs
                    .record_query(self.origin.as_ref(), qstart, validity_name(&verdict));
                out.push(self.settle_validity(antecedent, consequent, verdict));
                continue;
            }
            if session.is_none() {
                self.stats.sessions += 1;
                self.obs.metrics().smt_sessions.incr();
                let mut s = Box::new(crate::session::Session::new(
                    env.clone(),
                    self.config.array_axioms,
                    self.config.certify,
                ));
                s.assert_pred(antecedent);
                session = Some(s);
            }
            let s = session.as_mut().expect("session initialized above");
            self.stats.scoped_checks += 1;
            self.obs.metrics().smt_scoped_checks.incr();
            let qstart = Instant::now();
            s.push();
            s.assert_pred(&Pred::not(consequent.clone()));
            let verdict = s.check(&budget, deadline, &mut self.stats);
            s.pop();
            self.note_certification(&verdict);
            self.obs
                .record_query(self.origin.as_ref(), qstart, validity_name(&verdict));
            out.push(self.settle_validity(antecedent, consequent, verdict));
        }
        out
    }

    /// The shared query core: preprocess, encode, and run the lazy
    /// DPLL(T) loop. Entry budgets are the caller's responsibility.
    fn check_sat_inner(&mut self, env: &SortEnv, p: &Pred) -> SmtResult {
        let budget = self.config.budget;
        let deadline = self.effective_deadline();

        // Preprocess. A truncated saturation pass only *weakens* the
        // formula, so an `Unsat` answer below remains sound, but a `Sat`
        // answer could be an artifact of the missing lemmas and must be
        // demoted to `Unknown`.
        let (p, saturation_truncated) = theory_timer::time(TheoryKind::Sets, || {
            let p = canonicalize_sets(p);
            set_saturation_lemmas(&p, budget.max_saturation_lemmas)
        });
        let p = if self.config.array_axioms {
            theory_timer::time(TheoryKind::Arrays, || instantiate_array_axioms(&p))
        } else {
            p
        };
        let mut env = env.clone();
        let p = eliminate_ite(&p, &mut env);

        // Encode.
        let mut atoms = Atoms::new();
        let cnf = encode(&p, &mut atoms, &env);
        let mut sat = CdclSolver::new();
        for _ in 0..cnf.num_vars {
            sat.new_var();
        }
        let cnf_clauses_snapshot: Vec<usize> =
            cnf.clauses.iter().map(Vec::len).collect();
        for c in cnf.clauses {
            sat.add_clause(c);
        }

        let theory_budget = TheoryBudget {
            bb_nodes: budget.max_bb_nodes,
            deadline,
        };
        let sat_verdict = |truncated: bool| {
            if truncated {
                SmtResult::Unknown(Exhaustion::with_detail(
                    Phase::Saturation,
                    Resource::SaturationLemmas,
                    format!("cap {}", budget.max_saturation_lemmas),
                ))
            } else {
                SmtResult::Sat
            }
        };

        // DPLL(T) enumeration. For purely conjunctive queries the SAT
        // model is unique, so core minimization (whose only purpose is a
        // tighter blocking clause) is wasted work.
        let minimize = sat_has_choice(&cnf_clauses_snapshot);
        let certify = self.config.certify;
        // Certificate material for an eventual `Unsat`: the literal sets
        // behind every theory blocking clause.
        let mut cores: Vec<Vec<(crate::AtomId, bool)>> = Vec::new();
        let mut conflicts = 0u64;
        loop {
            let sat_verdict_raw = theory_timer::time(TheoryKind::Sat, || {
                sat.solve_within(deadline, budget.max_sat_conflicts)
            });
            match sat_verdict_raw {
                SatResult::Unsat => {
                    if certify {
                        if let Err(why) =
                            crate::certify::certify_unsat(&atoms, &cores, &theory_budget)
                        {
                            return certification_unknown(why);
                        }
                    }
                    return SmtResult::Unsat;
                }
                SatResult::Unknown => {
                    let resource = if deadline_expired(deadline) {
                        Resource::Deadline
                    } else {
                        Resource::SatConflicts
                    };
                    return SmtResult::Unknown(Exhaustion::new(Phase::Sat, resource));
                }
                SatResult::Sat => {
                    let assignment: Vec<(crate::AtomId, bool)> = (0..atoms.len())
                        .map(|i| {
                            let aid = crate::AtomId(i as u32);
                            (aid, sat.model_value(cnf.atom_vars[i]))
                        })
                        .collect();
                    self.stats.theory_checks += 1;
                    match check_assignment(&atoms, &assignment, minimize, &theory_budget) {
                        TheoryResult::Sat => {
                            let verdict = sat_verdict(saturation_truncated);
                            if certify && verdict == SmtResult::Sat {
                                if let Err(why) = crate::certify::certify_sat(
                                    &p,
                                    &mut atoms,
                                    &env,
                                    &assignment,
                                ) {
                                    return certification_unknown(why);
                                }
                            }
                            return verdict;
                        }
                        TheoryResult::Unknown(resource) => {
                            return SmtResult::Unknown(Exhaustion::new(
                                Phase::Simplex,
                                resource,
                            ));
                        }
                        TheoryResult::Unsat(core) => {
                            self.stats.theory_conflicts += 1;
                            if certify {
                                cores.push(core.iter().map(|&ix| assignment[ix]).collect());
                            }
                            conflicts += 1;
                            if conflicts > budget.max_theory_conflicts {
                                return SmtResult::Unknown(Exhaustion::with_detail(
                                    Phase::Smt,
                                    Resource::TheoryConflicts,
                                    format!("cap {}", budget.max_theory_conflicts),
                                ));
                            }
                            let block: Vec<Lit> = core
                                .iter()
                                .map(|&ix| {
                                    let (aid, val) = assignment[ix];
                                    Lit::new(cnf.atom_vars[aid.index()], !val)
                                })
                                .collect();
                            sat.reset_to_root();
                            sat.add_clause(block);
                        }
                    }
                }
            }
        }
    }
}

/// Whether the clause set leaves the SAT solver any real choice (some
/// clause with more than one literal).
fn sat_has_choice(clause_lens: &[usize]) -> bool {
    clause_lens.iter().any(|&l| l > 1)
}

/// The downgraded verdict for a certificate that failed to replay.
pub(crate) fn certification_unknown(why: String) -> SmtResult {
    SmtResult::Unknown(Exhaustion::with_detail(
        Phase::Smt,
        Resource::Certification,
        why,
    ))
}

/// Trace-event verdict name for a validity query decided by refuting
/// its negation (`Unsat` means the implication is valid).
fn validity_name(r: &SmtResult) -> &'static str {
    match r {
        SmtResult::Unsat => "valid",
        SmtResult::Sat => "invalid",
        SmtResult::Unknown(_) => "unknown",
    }
}

/// Trace-event verdict name for a direct satisfiability query.
fn smt_name(r: &SmtResult) -> &'static str {
    match r {
        SmtResult::Sat => "sat",
        SmtResult::Unsat => "unsat",
        SmtResult::Unknown(_) => "unknown",
    }
}

/// Replaces every term-level `if-then-else` with a fresh defined variable:
/// `ite(c,t,e)` becomes `v` with the global definition
/// `(c ⇒ v = t) ∧ (¬c ⇒ v = e)` (equisatisfiable in any polarity because
/// `v` is fresh and totally defined).
pub(crate) fn eliminate_ite(p: &Pred, env: &mut SortEnv) -> Pred {
    let mut defs: Vec<Pred> = Vec::new();
    let q = elim_pred(p, env, &mut defs);
    if defs.is_empty() {
        q
    } else {
        let mut parts = vec![q];
        parts.extend(defs);
        Pred::and(parts)
    }
}

fn elim_pred(p: &Pred, env: &mut SortEnv, defs: &mut Vec<Pred>) -> Pred {
    match p {
        Pred::True | Pred::False => p.clone(),
        Pred::Atom(rel, a, b) => {
            Pred::Atom(*rel, elim_expr(a, env, defs), elim_expr(b, env, defs))
        }
        Pred::And(ps) => Pred::And(ps.iter().map(|q| elim_pred(q, env, defs)).collect()),
        Pred::Or(ps) => Pred::Or(ps.iter().map(|q| elim_pred(q, env, defs)).collect()),
        Pred::Not(q) => Pred::Not(Box::new(elim_pred(q, env, defs))),
        Pred::Imp(a, b) => Pred::Imp(
            Box::new(elim_pred(a, env, defs)),
            Box::new(elim_pred(b, env, defs)),
        ),
        Pred::Iff(a, b) => Pred::Iff(
            Box::new(elim_pred(a, env, defs)),
            Box::new(elim_pred(b, env, defs)),
        ),
        Pred::Term(e) => Pred::Term(elim_expr(e, env, defs)),
    }
}

fn elim_expr(e: &Expr, env: &mut SortEnv, defs: &mut Vec<Pred>) -> Expr {
    match e {
        Expr::Var(_) | Expr::Int(_) | Expr::Bool(_) | Expr::SetEmpty => e.clone(),
        Expr::Binop(op, a, b) => Expr::Binop(
            *op,
            Box::new(elim_expr(a, env, defs)),
            Box::new(elim_expr(b, env, defs)),
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(elim_expr(a, env, defs))),
        Expr::Ite(c, t, f) => {
            let c = elim_pred(c, env, defs);
            let t = elim_expr(t, env, defs);
            let f = elim_expr(f, env, defs);
            let sort = env
                .sort_of(&t)
                .or_else(|| env.sort_of(&f))
                .unwrap_or(Sort::Int);
            let v = Symbol::fresh("ite");
            env.bind(v, sort);
            let vexpr = Expr::Var(v);
            defs.push(Pred::imp(c.clone(), Pred::eq(vexpr.clone(), t)));
            defs.push(Pred::imp(Pred::not(c), Pred::eq(vexpr.clone(), f)));
            vexpr
        }
        Expr::App(f, args) => Expr::App(
            *f,
            args.iter().map(|a| elim_expr(a, env, defs)).collect(),
        ),
        Expr::Sel(m, i) => Expr::sel(elim_expr(m, env, defs), elim_expr(i, env, defs)),
        Expr::Upd(m, i, v) => Expr::upd(
            elim_expr(m, env, defs),
            elim_expr(i, env, defs),
            elim_expr(v, env, defs),
        ),
        Expr::SetSingle(a) => Expr::single(elim_expr(a, env, defs)),
        Expr::SetUnion(a, b) => {
            Expr::union(elim_expr(a, env, defs), elim_expr(b, env, defs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{parse_pred, FuncSort};

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        for v in ["x", "y", "z", "i", "j", "k", "n", "w"] {
            env.bind(Symbol::new(v), Sort::Int);
        }
        env.bind(Symbol::new("m"), Sort::Map);
        env.bind(Symbol::new("mp"), Sort::Map);
        env.bind(Symbol::new("s"), Sort::Set);
        env.bind(Symbol::new("t"), Sort::Set);
        env.bind(Symbol::new("xs"), Sort::Obj(Symbol::new("list")));
        env.bind(Symbol::new("ys"), Sort::Obj(Symbol::new("list")));
        env.declare_func(
            Symbol::new("elts"),
            FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Set),
        );
        env.declare_func(
            Symbol::new("len"),
            FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Int),
        );
        env
    }

    fn valid(lhs: &str, rhs: &str) -> bool {
        let env = env();
        let mut smt = SmtSolver::new();
        smt.is_valid(
            &env,
            &parse_pred(lhs).unwrap(),
            &parse_pred(rhs).unwrap(),
        )
    }

    #[test]
    fn arithmetic_validities() {
        assert!(valid("x < y", "x <= y"));
        assert!(valid("x < y", "x != y"));
        assert!(valid("x <= y && y <= x", "x = y"));
        assert!(valid("x = y + 1", "y < x"));
        assert!(!valid("x <= y", "x < y"));
        assert!(!valid("true", "x < y"));
    }

    #[test]
    fn integer_tightening() {
        // Over the integers x < y ⇒ x + 1 ≤ y.
        assert!(valid("x < y", "x + 1 <= y"));
        // And x < y ∧ y < x + 2 pins y = x + 1.
        assert!(valid("x < y && y < x + 2", "y = x + 1"));
    }

    #[test]
    fn euf_validities() {
        assert!(valid("x = y", "len(xs) = len(xs)"));
        assert!(valid("xs = ys", "elts(xs) = elts(ys)"));
        assert!(!valid("elts(xs) = elts(ys)", "xs = ys"));
    }

    #[test]
    fn set_validities() {
        assert!(valid(
            "s = union(single(x), elts(xs))",
            "s = union(elts(xs), single(x))"
        ));
        assert!(valid("elts(xs) = empty", "union(elts(xs), s) = s"));
        assert!(valid("true", "x in single(x)"));
        assert!(!valid("true", "x in s"));
        // Transitivity of set equality through a measure chain.
        assert!(valid(
            "elts(xs) = s && s = t",
            "elts(xs) = t"
        ));
    }

    #[test]
    fn array_validities() {
        assert!(valid("mp = Upd(m, k, 1)", "Sel(mp, k) = 1"));
        assert!(valid("mp = Upd(m, k, 1) && j != k", "Sel(mp, j) = Sel(m, j)"));
        assert!(!valid("mp = Upd(m, k, 1)", "Sel(mp, j) = 1"));
        // The malloc pattern: after setting p's bit, any other address
        // keeps its bit.
        assert!(valid(
            "Sel(m, x) = 0 && x != k",
            "Sel(Upd(m, k, 1), x) = 0"
        ));
    }

    #[test]
    fn ite_validities() {
        // The AVL height measure shape.
        assert!(valid(
            "z = (if x < y then 1 + y else 1 + x)",
            "z > x && z > y"
        ));
        assert!(valid("z = (if x < y then y else x)", "z >= x"));
    }

    #[test]
    fn guard_reasoning() {
        // Path-sensitive fact: under branch x < y the else is dead.
        assert!(valid("x < y => z = 1 && (not (x < y)) => z = 2", "true"));
        assert!(valid(
            "(x < y => z = 1) && (not (x < y) => z = 2)",
            "z = 1 || z = 2"
        ));
    }

    #[test]
    fn inconsistent_antecedent_proves_anything() {
        assert!(valid("x < x", "false"));
        assert!(valid("x = 1 && x = 2", "y = 99"));
        // Set disjointness facts are not decided either way; just make
        // sure the query completes without panicking.
        let _ = valid("elts(xs) = empty && elts(xs) = union(single(x), s)", "false");
    }

    #[test]
    fn sat_api() {
        let env = env();
        let mut smt = SmtSolver::new();
        assert!(smt.is_sat(&env, &parse_pred("x < y && y < z").unwrap()));
        assert!(!smt.is_sat(&env, &parse_pred("x < y && y < x").unwrap()));
    }

    #[test]
    fn cache_hits_count() {
        let env = env();
        let mut smt = SmtSolver::new();
        let l = parse_pred("x < y").unwrap();
        let r = parse_pred("x <= y").unwrap();
        assert!(smt.is_valid(&env, &l, &r));
        assert!(smt.is_valid(&env, &l, &r));
        assert_eq!(smt.stats.cache_hits, 1);
    }

    #[test]
    fn uninterpreted_division_is_conservative() {
        // Division semantics are not interpreted, so this is not provable…
        assert!(!valid("x = 4", "x / 2 = 2"));
        // …but congruence over division still holds.
        assert!(valid("x = y", "x / 2 = y / 2"));
    }

    #[test]
    fn query_cap_reports_unknown() {
        let env = env();
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget: Budget {
                max_smt_queries: Some(1),
                ..Budget::default()
            },
            ..SolverConfig::default()
        });
        let l = parse_pred("x < y").unwrap();
        let r = parse_pred("x <= y").unwrap();
        assert_eq!(smt.check_valid(&env, &l, &r), Validity::Valid);
        // A *distinct* query needs solving and the cap is spent.
        let r2 = parse_pred("x != y").unwrap();
        match smt.check_valid(&env, &l, &r2) {
            Validity::Unknown(e) => {
                assert_eq!(e.phase, Phase::Smt);
                assert_eq!(e.resource, Resource::SmtQueries);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // The boolean façade degrades soundly: not proven.
        assert!(!smt.is_valid(&env, &l, &r2));
    }

    #[test]
    fn cache_hits_do_not_charge_query_budget() {
        // Pin of the budget-accounting fix: a repeat of an answered
        // query is a cache hit, does no solving, and must be served —
        // and charged nothing — even once the cap is exhausted.
        let env = env();
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget: Budget {
                max_smt_queries: Some(1),
                ..Budget::default()
            },
            ..SolverConfig::default()
        });
        let l = parse_pred("x < y").unwrap();
        let r = parse_pred("x <= y").unwrap();
        assert_eq!(smt.check_valid(&env, &l, &r), Validity::Valid);
        assert_eq!(smt.queries_charged(), 1);
        for _ in 0..3 {
            assert_eq!(smt.check_valid(&env, &l, &r), Validity::Valid);
        }
        assert_eq!(smt.queries_charged(), 1, "cache hits burned query budget");
        assert_eq!(smt.stats.cache_hits, 3);
    }

    #[test]
    fn incremental_scope_api_roundtrip() {
        let env = env();
        let mut smt = SmtSolver::new();
        smt.start_incremental(&env);
        smt.assert_pred(&parse_pred("x < y").unwrap());
        assert_eq!(smt.check_incremental(), SmtResult::Sat);
        smt.push();
        smt.assert_pred(&parse_pred("y < x").unwrap());
        assert_eq!(smt.check_incremental(), SmtResult::Unsat);
        smt.pop();
        assert_eq!(smt.check_incremental(), SmtResult::Sat);
        smt.push();
        smt.assert_pred(&parse_pred("y < z && z < x").unwrap());
        assert_eq!(smt.check_incremental(), SmtResult::Unsat);
        smt.pop();
        smt.push();
        smt.assert_pred(&parse_pred("y < z").unwrap());
        assert_eq!(smt.check_incremental(), SmtResult::Sat);
        smt.pop();
        smt.end_incremental();
        assert!(smt.stats.sessions >= 1);
        assert!(smt.stats.scoped_checks >= 5);
    }

    #[test]
    fn check_valid_many_agrees_with_scalar() {
        let env = env();
        let antecedent = parse_pred("x < y && y < z").unwrap();
        let consequents: Vec<Pred> = [
            "x < z",
            "x <= z",
            "z < x",
            "x != z",
            "z = x",
            "x + 2 <= z",
        ]
        .iter()
        .map(|s| parse_pred(s).unwrap())
        .collect();
        let mut batch = SmtSolver::new();
        let got = batch.check_valid_many(&env, &antecedent, &consequents);
        for (c, got) in consequents.iter().zip(&got) {
            let mut scratch = SmtSolver::new();
            let want = scratch.check_valid(&env, &antecedent, c);
            assert_eq!(*got, want, "verdict mismatch on `{c}`");
        }
        // One session served the whole batch.
        assert_eq!(batch.stats.sessions, 1);
        assert_eq!(batch.stats.scoped_checks, consequents.len() as u64);
    }

    #[test]
    fn check_valid_many_theory_lemmas() {
        // Exercise the retained-lemma paths: arrays and sets under a
        // shared antecedent.
        let env = env();
        let antecedent = parse_pred("mp = Upd(m, k, 1) && j != k").unwrap();
        let consequents: Vec<Pred> = [
            "Sel(mp, k) = 1",
            "Sel(mp, j) = Sel(m, j)",
            "Sel(mp, j) = 1",
        ]
        .iter()
        .map(|s| parse_pred(s).unwrap())
        .collect();
        let mut smt = SmtSolver::new();
        let got = smt.check_valid_many(&env, &antecedent, &consequents);
        assert_eq!(
            got,
            vec![Validity::Valid, Validity::Valid, Validity::Invalid]
        );
        let ant2 = parse_pred("s = union(single(x), elts(xs)) && elts(xs) = empty").unwrap();
        let cons2: Vec<Pred> = ["s = single(x)", "s = empty", "x in s"]
            .iter()
            .map(|s| parse_pred(s).unwrap())
            .collect();
        let got2 = smt.check_valid_many(&env, &ant2, &cons2);
        for (c, got) in cons2.iter().zip(&got2) {
            let mut scratch = SmtSolver::new();
            assert_eq!(*got, scratch.check_valid(&env, &ant2, c), "on `{c}`");
        }
    }

    #[test]
    fn check_valid_many_populates_shared_cache() {
        let env = env();
        let cache = crate::QueryCache::shared();
        let antecedent = parse_pred("x < y").unwrap();
        let consequents = vec![parse_pred("x <= y").unwrap(), parse_pred("x != y").unwrap()];
        let mut batch = SmtSolver::new();
        batch.share_cache(Arc::clone(&cache));
        let _ = batch.check_valid_many(&env, &antecedent, &consequents);
        // A different solver sharing the cache answers from it.
        let mut other = SmtSolver::new();
        other.share_cache(cache);
        assert_eq!(
            other.check_valid(&env, &antecedent, &consequents[0]),
            Validity::Valid
        );
        assert_eq!(other.stats.cache_hits, 1);
    }

    #[test]
    fn expired_deadline_reports_unknown() {
        let env = env();
        let mut smt = SmtSolver::new();
        smt.set_deadline(Some(Instant::now() - std::time::Duration::from_millis(1)));
        let p = parse_pred("x < y").unwrap();
        match smt.check_sat(&env, &p) {
            SmtResult::Unknown(e) => assert_eq!(e.resource, Resource::Deadline),
            other => panic!("expected Unknown, got {other:?}"),
        }
        // Clearing the deadline restores normal service.
        smt.set_deadline(None);
        assert_eq!(smt.check_sat(&env, &p), SmtResult::Sat);
    }

    #[test]
    fn zero_timeout_budget_arms_lazily_and_reports_unknown() {
        let env = env();
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget: Budget::with_timeout(std::time::Duration::from_secs(0)),
            ..SolverConfig::default()
        });
        let l = parse_pred("x < y").unwrap();
        let r = parse_pred("x <= y").unwrap();
        match smt.check_valid(&env, &l, &r) {
            Validity::Unknown(e) => assert_eq!(e.resource, Resource::Deadline),
            other => panic!("expected Unknown, got {other:?}"),
        }
        assert!(!smt.is_valid(&env, &l, &r));
    }

    #[test]
    fn exhausted_bb_budget_demotes_to_unknown_not_sat() {
        // x + x = 1 has a rational solution but no integer one; with no
        // branch-and-bound nodes the solver must admit it cannot tell.
        let env = env();
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget: Budget {
                max_bb_nodes: 0,
                ..Budget::default()
            },
            ..SolverConfig::default()
        });
        let p = parse_pred("x + x = 1").unwrap();
        match smt.check_sat(&env, &p) {
            SmtResult::Unknown(e) => {
                assert_eq!(e.phase, Phase::Simplex);
                assert_eq!(e.resource, Resource::BranchBoundNodes);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // With the default budget the same query is refuted outright.
        let mut full = SmtSolver::new();
        assert_eq!(full.check_sat(&env, &p), SmtResult::Unsat);
    }

    #[test]
    fn unknown_is_not_cached() {
        let env = env();
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget: Budget {
                max_bb_nodes: 0,
                ..Budget::default()
            },
            ..SolverConfig::default()
        });
        let l = parse_pred("x + x = 1").unwrap();
        let r = parse_pred("false").unwrap();
        assert!(matches!(
            smt.check_valid(&env, &l, &r),
            Validity::Unknown(_)
        ));
        assert!(matches!(
            smt.check_valid(&env, &l, &r),
            Validity::Unknown(_)
        ));
        assert_eq!(smt.stats.cache_hits, 0);
    }

    #[test]
    fn range_invariant_shape() {
        // The Fig. 1 `range` fold obligation:
        // i <= v (element) and i >= 1 implies 0 < v.
        assert!(valid("i <= x && 1 <= i", "0 < x"));
    }

    #[test]
    fn sorted_cons_obligation() {
        // Fig. 2 insert: x <= y and y <= v implies x <= v.
        assert!(valid("x <= y && y <= w", "x <= w"));
    }
}
