//! Independent verdict certification.
//!
//! With `--certify`, every definite answer the lazy-SMT loop produces is
//! replayed through a checker that does *not* trust the CNF encoding or
//! the CDCL search:
//!
//! * a **Sat** answer (an *Invalid* implication) carries its countermodel
//!   — the truth value the SAT model assigns to every theory atom. The
//!   [`eval_pred`] evaluator walks the original (preprocessed) predicate's
//!   boolean structure, re-interning each leaf through the deterministic
//!   [`Atoms`] table, and must find the formula *true* under the model.
//!   (For a validity query the solved formula is the negated implication
//!   `antecedent ∧ ¬consequent`, so "true" means the implication is
//!   falsified.) Theory consistency of the model was already established
//!   by the final `check_assignment` call that accepted it.
//! * an **Unsat** answer (a *Valid* implication) carries the theory
//!   conflict cores learned along the way. [`replay_cores`] re-submits
//!   each core — a small set of atom/polarity literals — to the theory
//!   stack, which must refute it again. This confirms every blocking
//!   clause the propositional refutation leaned on was theory-justified.
//!
//! A certificate that fails to replay never flips a verdict: the caller
//! downgrades the answer to `Unknown` with
//! [`dsolve_logic::Resource::Certification`].

use crate::cnf::{AtomId, Atoms};
use crate::theory::{check_assignment, TheoryBudget, TheoryResult};
use dsolve_logic::{Pred, SortEnv};

/// Truth value of `p` under a per-atom model, or `None` when a leaf has
/// no model value.
///
/// Leaves are mapped through the same [`Atoms`] interner the encoder
/// used, so a leaf that was encoded resolves to its original atom (and
/// therefore has a value in any full model). Leaves the encoder
/// short-circuited away (inside an absorbed conjunct, say) may intern
/// fresh atoms with no value; connectives therefore evaluate in
/// three-valued logic, so a determined connective never fails on an
/// undetermined irrelevant operand.
pub(crate) fn eval_pred(
    p: &Pred,
    atoms: &mut Atoms,
    env: &SortEnv,
    model: &[(AtomId, bool)],
) -> Option<bool> {
    // Solver models are dense and ordered (entry `i` is atom `i`), so
    // indexing is the common case; the scan covers sparse test models.
    let value = |aid: AtomId| match model.get(aid.index()) {
        Some(&(a, v)) if a == aid => Some(v),
        _ => model.iter().find(|(a, _)| *a == aid).map(|&(_, v)| v),
    };
    match p {
        Pred::True => Some(true),
        Pred::False => Some(false),
        Pred::Atom(rel, a, b) => {
            let (aid, pos) = atoms.atom_of_rel(*rel, a, b, env);
            value(aid).map(|v| v == pos)
        }
        Pred::Term(e) => {
            let aid = atoms.atom_of_term(e, env);
            value(aid)
        }
        Pred::Not(q) => eval_pred(q, atoms, env, model).map(|v| !v),
        Pred::And(ps) => {
            let mut out = Some(true);
            for q in ps {
                match eval_pred(q, atoms, env, model) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => out = None,
                }
            }
            out
        }
        Pred::Or(ps) => {
            let mut out = Some(false);
            for q in ps {
                match eval_pred(q, atoms, env, model) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => out = None,
                }
            }
            out
        }
        Pred::Imp(a, b) => match (
            eval_pred(a, atoms, env, model),
            eval_pred(b, atoms, env, model),
        ) {
            (Some(false), _) | (_, Some(true)) => Some(true),
            (Some(true), Some(false)) => Some(false),
            _ => None,
        },
        Pred::Iff(a, b) => match (
            eval_pred(a, atoms, env, model),
            eval_pred(b, atoms, env, model),
        ) {
            (Some(x), Some(y)) => Some(x == y),
            _ => None,
        },
    }
}

/// Certifies a `Sat` answer: the model must make `p` true. Returns an
/// error description on failure.
pub(crate) fn certify_sat(
    p: &Pred,
    atoms: &mut Atoms,
    env: &SortEnv,
    model: &[(AtomId, bool)],
) -> Result<(), String> {
    match eval_pred(p, atoms, env, model) {
        Some(true) => Ok(()),
        Some(false) => Err("countermodel does not satisfy the solved formula".into()),
        None => Err("countermodel leaves the solved formula undetermined".into()),
    }
}

/// Certifies an `Unsat` answer: every recorded theory core must still be
/// refuted by the theory stack. Returns an error description on failure.
///
/// Cores are replayed without minimization (their whole point here is
/// refutation, not a tighter clause), so replay cost is one plain theory
/// check per conflict learned.
pub(crate) fn certify_unsat(
    atoms: &Atoms,
    cores: &[Vec<(AtomId, bool)>],
    budget: &TheoryBudget,
) -> Result<(), String> {
    for (i, core) in cores.iter().enumerate() {
        match check_assignment(atoms, core, false, budget) {
            TheoryResult::Unsat(_) => {}
            TheoryResult::Sat => {
                return Err(format!(
                    "theory core {i} of {} replayed satisfiable",
                    cores.len()
                ));
            }
            TheoryResult::Unknown(r) => {
                return Err(format!(
                    "theory core {i} of {} could not be replayed ({r})",
                    cores.len()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{parse_pred, Sort, Symbol};

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        for v in ["x", "y", "z"] {
            env.bind(Symbol::new(v), Sort::Int);
        }
        env
    }

    #[test]
    fn eval_agrees_with_encoded_atoms() {
        let env = env();
        let mut atoms = Atoms::new();
        let p = parse_pred("x < y && (y < z || x = z)").unwrap();
        // Intern the leaves the way the encoder would.
        let _ = crate::cnf::encode(&p, &mut atoms, &env);
        // Model: x<y true, y<z false, x=z true.
        let model: Vec<(AtomId, bool)> = (0..atoms.len())
            .map(|i| (AtomId(i as u32), i != 1))
            .collect();
        assert_eq!(eval_pred(&p, &mut atoms, &env, &model), Some(true));
        // Flip the x<y leaf: the conjunction fails.
        let model2: Vec<(AtomId, bool)> = model
            .iter()
            .map(|&(a, v)| (a, if a.index() == 0 { false } else { v }))
            .collect();
        assert_eq!(eval_pred(&p, &mut atoms, &env, &model2), Some(false));
    }

    #[test]
    fn undetermined_leaf_is_three_valued() {
        let env = env();
        let mut atoms = Atoms::new();
        let p = parse_pred("x < y || y < z").unwrap();
        // Only intern the first leaf; the second has no model value.
        let first = parse_pred("x < y").unwrap();
        let Pred::Atom(rel, a, b) = &first else { panic!() };
        let (aid, _) = atoms.atom_of_rel(*rel, a, b, &env);
        // A true determined disjunct decides the whole disjunction.
        assert_eq!(eval_pred(&p, &mut atoms, &env, &[(aid, true)]), Some(true));
        // A false one leaves it undetermined.
        assert_eq!(eval_pred(&p, &mut atoms, &env, &[(aid, false)]), None);
    }

    #[test]
    fn unsat_core_replay() {
        let env = env();
        let mut atoms = Atoms::new();
        let p = parse_pred("x < y && y < x").unwrap();
        let _ = crate::cnf::encode(&p, &mut atoms, &env);
        // Both inequalities asserted true form a refutable core.
        let core: Vec<(AtomId, bool)> =
            (0..atoms.len()).map(|i| (AtomId(i as u32), true)).collect();
        let budget = TheoryBudget {
            bb_nodes: 400,
            deadline: None,
        };
        assert!(certify_unsat(&atoms, std::slice::from_ref(&core), &budget).is_ok());
        // A satisfiable "core" must be rejected.
        let sat_core = vec![core[0]];
        assert!(certify_unsat(&atoms, &[sat_core], &budget).is_err());
    }
}
