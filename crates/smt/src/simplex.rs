//! General simplex for linear arithmetic, with integer branch-and-bound.
//!
//! The solver follows Dutertre & de Moura's *general simplex*: every
//! constraint `Σ cᵢ·xᵢ ⋈ b` is turned into a slack variable `s = Σ cᵢ·xᵢ`
//! with bounds on `s`; a candidate assignment `β` always satisfies the
//! tableau equations and the bounds of non-basic variables, and pivoting
//! repairs basic variables that violate their bounds (Bland's rule for
//! termination).
//!
//! Integer feasibility is decided by branch-and-bound on
//! fractionally-assigned integer variables. The search is budgeted: if
//! the node budget (or the deadline) is exhausted the solver answers
//! [`LpResult::Unknown`], which callers must surface rather than treat
//! as either verdict.

use crate::Rat;
use dsolve_logic::{deadline_expired, Budget};
use std::collections::HashMap;
use std::time::Instant;

/// Feasibility verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpResult {
    /// A satisfying assignment exists.
    Sat,
    /// The constraints are infeasible.
    Unsat,
    /// The search budget (branch-and-bound nodes or deadline) ran out
    /// before feasibility was decided.
    Unknown,
}

/// A simplex tableau over rational variables with optional integrality.
///
/// The tableau supports assertion scopes: [`Simplex::push`] marks a
/// point and [`Simplex::pop`] restores every bound tightened since.
/// Only *bounds* are assertions here — rows are definitions
/// (`s = Σ cᵢ·xᵢ`) and stay valid forever, so the undo trail records
/// nothing but displaced bounds. Pivoting merely re-parameterizes the
/// same equation system and β always satisfies the equations and all
/// nonbasic bounds (restored bounds are weaker, so it keeps
/// satisfying them); [`Simplex::check`] repairs any basic variable a
/// restored bound leaves violated.
#[derive(Clone, Debug, Default)]
pub struct Simplex {
    nvars: usize,
    lower: Vec<Option<Rat>>,
    upper: Vec<Option<Rat>>,
    is_int: Vec<bool>,
    beta: Vec<Rat>,
    /// `rows[r]` expresses `basic[r] = Σ coeff·nonbasic`.
    rows: Vec<HashMap<usize, Rat>>,
    basic: Vec<usize>,
    row_of: HashMap<usize, usize>,
    /// Displaced bounds: `(var, is_lower, previous bound)`. Recorded
    /// only while at least one scope is open.
    trail: Vec<(usize, bool, Option<Rat>)>,
    /// Trail watermarks for open scopes.
    scopes: Vec<usize>,
}

impl Simplex {
    /// Creates an empty tableau.
    pub fn new() -> Simplex {
        Simplex::default()
    }

    /// Adds a fresh variable; `is_int` requests integer feasibility checks.
    pub fn new_var(&mut self, is_int: bool) -> usize {
        let v = self.nvars;
        self.nvars += 1;
        self.lower.push(None);
        self.upper.push(None);
        self.is_int.push(is_int);
        self.beta.push(Rat::ZERO);
        v
    }

    /// Introduces a slack variable `s = Σ coeff·var` and returns `s`.
    ///
    /// The combination must be over existing variables; zero coefficients
    /// are ignored.
    pub fn add_row(&mut self, combo: &[(usize, Rat)]) -> usize {
        let s = self.new_var(false);
        let mut row: HashMap<usize, Rat> = HashMap::new();
        let mut val = Rat::ZERO;
        for &(v, c) in combo {
            if c.is_zero() {
                continue;
            }
            // If v is basic, substitute its row so the tableau stays in
            // terms of nonbasic variables.
            if let Some(&r) = self.row_of.get(&v) {
                let sub = self.rows[r].clone();
                for (w, cw) in sub {
                    let e = row.entry(w).or_insert(Rat::ZERO);
                    *e += c * cw;
                    if e.is_zero() {
                        row.remove(&w);
                    }
                }
            } else {
                let e = row.entry(v).or_insert(Rat::ZERO);
                *e += c;
                if e.is_zero() {
                    row.remove(&v);
                }
            }
            val += c * self.beta[v];
        }
        self.beta[s] = val;
        self.row_of.insert(s, self.rows.len());
        self.basic.push(s);
        self.rows.push(row);
        s
    }

    /// Opens an assertion scope; [`Simplex::pop`] restores every bound
    /// tightened after this call. Variables and rows added inside the
    /// scope are kept — both are definitional, not assertions.
    pub fn push(&mut self) {
        self.scopes.push(self.trail.len());
    }

    /// Closes the innermost scope, restoring displaced bounds in
    /// reverse order. The candidate assignment β is left as-is: it
    /// still satisfies the (unchanged) equations, and every restored
    /// bound is weaker than the one it replaces, so nonbasic variables
    /// stay within bounds.
    pub fn pop(&mut self) {
        let mark = self.scopes.pop().expect("pop without matching push");
        while self.trail.len() > mark {
            let (var, is_lower, old) = self.trail.pop().expect("nonempty trail");
            if is_lower {
                self.lower[var] = old;
            } else {
                self.upper[var] = old;
            }
        }
    }

    /// Asserts `var >= bound`; returns `false` on immediate conflict.
    pub fn assert_lower(&mut self, var: usize, bound: Rat) -> bool {
        if let Some(u) = self.upper[var] {
            if bound > u {
                return false;
            }
        }
        if self.lower[var].is_none_or(|l| bound > l) {
            if !self.scopes.is_empty() {
                self.trail.push((var, true, self.lower[var]));
            }
            self.lower[var] = Some(bound);
            if !self.row_of.contains_key(&var) && self.beta[var] < bound {
                self.update(var, bound);
            }
        }
        true
    }

    /// Asserts `var <= bound`; returns `false` on immediate conflict.
    pub fn assert_upper(&mut self, var: usize, bound: Rat) -> bool {
        if let Some(l) = self.lower[var] {
            if bound < l {
                return false;
            }
        }
        if self.upper[var].is_none_or(|u| bound < u) {
            if !self.scopes.is_empty() {
                self.trail.push((var, false, self.upper[var]));
            }
            self.upper[var] = Some(bound);
            if !self.row_of.contains_key(&var) && self.beta[var] > bound {
                self.update(var, bound);
            }
        }
        true
    }

    /// Current value of `var` in the candidate assignment.
    pub fn value(&self, var: usize) -> Rat {
        self.beta[var]
    }

    fn update(&mut self, nonbasic: usize, v: Rat) {
        let delta = v - self.beta[nonbasic];
        if delta.is_zero() {
            return;
        }
        for (r, row) in self.rows.iter().enumerate() {
            if let Some(&c) = row.get(&nonbasic) {
                let b = self.basic[r];
                self.beta[b] += c * delta;
            }
        }
        self.beta[nonbasic] = v;
    }

    fn pivot_and_update(&mut self, bi: usize, xi: usize, xj: usize, v: Rat) {
        let aij = *self.rows[bi].get(&xj).expect("pivot coefficient");
        let theta = (v - self.beta[xi]) / aij;
        self.beta[xi] = v;
        self.beta[xj] += theta;
        for (r, row) in self.rows.iter().enumerate() {
            if r == bi {
                continue;
            }
            if let Some(&akj) = row.get(&xj) {
                let b = self.basic[r];
                self.beta[b] += akj * theta;
            }
        }
        self.pivot(bi, xi, xj);
    }

    /// Pivots basic `xi` (row `bi`) with nonbasic `xj`.
    fn pivot(&mut self, bi: usize, xi: usize, xj: usize) {
        let mut row = std::mem::take(&mut self.rows[bi]);
        let aij = row.remove(&xj).expect("pivot coefficient");
        // xi = aij*xj + rest  =>  xj = (1/aij)*xi - rest/aij
        let inv = aij.recip();
        let mut newrow: HashMap<usize, Rat> = HashMap::new();
        newrow.insert(xi, inv);
        for (w, c) in row {
            newrow.insert(w, -(c * inv));
        }
        // Substitute into every other row mentioning xj.
        for r in 0..self.rows.len() {
            if r == bi {
                continue;
            }
            if let Some(c) = self.rows[r].remove(&xj) {
                for (w, cw) in &newrow {
                    let e = self.rows[r].entry(*w).or_insert(Rat::ZERO);
                    *e += c * *cw;
                    if e.is_zero() {
                        let w = *w;
                        self.rows[r].remove(&w);
                    }
                }
            }
        }
        self.rows[bi] = newrow;
        self.basic[bi] = xj;
        self.row_of.remove(&xi);
        self.row_of.insert(xj, bi);
    }

    /// Decides rational feasibility.
    pub fn check(&mut self) -> LpResult {
        loop {
            // Find the basic variable with the smallest index violating a
            // bound (Bland's rule).
            let mut viol: Option<(usize, usize, bool)> = None; // (row, var, need_increase)
            for (r, &b) in self.basic.iter().enumerate() {
                if let Some(l) = self.lower[b] {
                    if self.beta[b] < l && viol.is_none_or(|(_, v, _)| b < v) {
                        viol = Some((r, b, true));
                    }
                }
                if let Some(u) = self.upper[b] {
                    if self.beta[b] > u && viol.is_none_or(|(_, v, _)| b < v) {
                        viol = Some((r, b, false));
                    }
                }
            }
            let Some((r, xi, increase)) = viol else {
                return LpResult::Sat;
            };
            let target = if increase {
                self.lower[xi].expect("violated lower bound")
            } else {
                self.upper[xi].expect("violated upper bound")
            };
            // Find an admissible nonbasic variable (smallest index).
            let mut choice: Option<usize> = None;
            for (&xj, &a) in &self.rows[r] {
                let ok = if increase {
                    (a.is_positive() && self.upper[xj].is_none_or(|u| self.beta[xj] < u))
                        || (a.is_negative()
                            && self.lower[xj].is_none_or(|l| self.beta[xj] > l))
                } else {
                    (a.is_negative() && self.upper[xj].is_none_or(|u| self.beta[xj] < u))
                        || (a.is_positive()
                            && self.lower[xj].is_none_or(|l| self.beta[xj] > l))
                };
                if ok && choice.is_none_or(|c| xj < c) {
                    choice = Some(xj);
                }
            }
            let Some(xj) = choice else {
                return LpResult::Unsat;
            };
            self.pivot_and_update(r, xi, xj, target);
        }
    }

    /// Decides integer feasibility by branch-and-bound with the default
    /// node budget and no deadline.
    pub fn check_int(&mut self) -> LpResult {
        self.check_int_within(Budget::default().max_bb_nodes, None)
    }

    /// Decides integer feasibility by branch-and-bound, exploring at most
    /// `max_nodes` branch nodes and respecting an optional deadline.
    ///
    /// Returns [`LpResult::Unknown`] when either budget runs out before
    /// the search is decided — never a guessed verdict.
    pub fn check_int_within(&mut self, max_nodes: u64, deadline: Option<Instant>) -> LpResult {
        let mut nodes = max_nodes;
        self.check_int_rec(&mut nodes, deadline)
    }

    fn check_int_rec(&mut self, nodes: &mut u64, deadline: Option<Instant>) -> LpResult {
        if self.check() == LpResult::Unsat {
            return LpResult::Unsat;
        }
        // Find an integer variable with a fractional value.
        let frac = (0..self.nvars)
            .find(|&v| self.is_int[v] && !self.beta[v].is_integer());
        let Some(v) = frac else {
            return LpResult::Sat;
        };
        if *nodes == 0 || deadline_expired(deadline) {
            return LpResult::Unknown;
        }
        *nodes -= 1;
        let val = self.beta[v];
        let mut unknown = false;
        // Each branch tightens one bound under a scope and pops it on
        // the way out (even on Sat: callers expect the tableau's
        // asserted bounds unchanged by the search, exactly as the old
        // clone-per-branch version guaranteed).
        // Branch: v <= floor(val).
        self.push();
        let res = if self.assert_upper(v, val.floor()) {
            self.check_int_rec(nodes, deadline)
        } else {
            LpResult::Unsat
        };
        self.pop();
        match res {
            LpResult::Sat => return LpResult::Sat,
            LpResult::Unknown => unknown = true,
            LpResult::Unsat => {}
        }
        // Branch: v >= ceil(val).
        self.push();
        let res = if self.assert_lower(v, val.ceil()) {
            self.check_int_rec(nodes, deadline)
        } else {
            LpResult::Unsat
        };
        self.pop();
        match res {
            LpResult::Sat => return LpResult::Sat,
            LpResult::Unknown => unknown = true,
            LpResult::Unsat => {}
        }
        // An undecided branch means infeasibility was not established.
        if unknown {
            LpResult::Unknown
        } else {
            LpResult::Unsat
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rat {
        Rat::from_int(n)
    }

    #[test]
    fn trivial_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var(true);
        assert!(s.assert_lower(x, r(1)));
        assert!(s.assert_upper(x, r(5)));
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.value(x) >= r(1) && s.value(x) <= r(5));
    }

    #[test]
    fn contradictory_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var(true);
        assert!(s.assert_lower(x, r(3)));
        assert!(!s.assert_upper(x, r(2)));
    }

    #[test]
    fn row_feasibility() {
        // x + y <= 4, x >= 3, y >= 2 is infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let sl = s.add_row(&[(x, r(1)), (y, r(1))]);
        assert!(s.assert_upper(sl, r(4)));
        assert!(s.assert_lower(x, r(3)));
        assert!(s.assert_lower(y, r(2)));
        assert_eq!(s.check(), LpResult::Unsat);
    }

    #[test]
    fn row_feasible_case() {
        // x + y <= 4, x >= 1, y >= 2 is feasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let sl = s.add_row(&[(x, r(1)), (y, r(1))]);
        assert!(s.assert_upper(sl, r(4)));
        assert!(s.assert_lower(x, r(1)));
        assert!(s.assert_lower(y, r(2)));
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.value(x) + s.value(y) <= r(4));
    }

    #[test]
    fn equality_chain() {
        // x = y + 1, y = z + 1, x = z  is infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let z = s.new_var(true);
        let r1 = s.add_row(&[(x, r(1)), (y, r(-1))]); // x - y = 1
        assert!(s.assert_lower(r1, r(1)) && s.assert_upper(r1, r(1)));
        let r2 = s.add_row(&[(y, r(1)), (z, r(-1))]); // y - z = 1
        assert!(s.assert_lower(r2, r(1)) && s.assert_upper(r2, r(1)));
        let r3 = s.add_row(&[(x, r(1)), (z, r(-1))]); // x - z = 0
        assert!(s.assert_lower(r3, r(0)) && s.assert_upper(r3, r(0)));
        assert_eq!(s.check(), LpResult::Unsat);
    }

    #[test]
    fn integer_infeasible_rational_feasible() {
        // 2x = 1 has the rational solution x = 1/2 but no integer one.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let row = s.add_row(&[(x, r(2))]);
        assert!(s.assert_lower(row, r(1)) && s.assert_upper(row, r(1)));
        assert_eq!(s.check(), LpResult::Sat);
        assert_eq!(s.check_int(), LpResult::Unsat);
    }

    #[test]
    fn integer_branching_finds_solution() {
        // 2x + 2y = 4 with 0 <= x,y has integer solutions.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let row = s.add_row(&[(x, r(2)), (y, r(2))]);
        assert!(s.assert_lower(row, r(4)) && s.assert_upper(row, r(4)));
        assert!(s.assert_lower(x, r(0)));
        assert!(s.assert_lower(y, r(0)));
        assert_eq!(s.check_int(), LpResult::Sat);
    }

    #[test]
    fn exhausted_node_budget_reports_unknown() {
        // 2x = 1 needs at least one branch node; with a zero-node budget
        // the answer must be Unknown, never a silent Sat.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let row = s.add_row(&[(x, r(2))]);
        assert!(s.assert_lower(row, r(1)) && s.assert_upper(row, r(1)));
        assert_eq!(s.check_int_within(0, None), LpResult::Unknown);
        // With budget available the same system is decided exactly.
        assert_eq!(s.check_int_within(400, None), LpResult::Unsat);
    }

    #[test]
    fn expired_deadline_reports_unknown() {
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let row = s.add_row(&[(x, r(2))]);
        assert!(s.assert_lower(row, r(1)) && s.assert_upper(row, r(1)));
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(s.check_int_within(400, Some(past)), LpResult::Unknown);
    }

    #[test]
    fn strict_style_tightened_bounds() {
        // Encodes x < y ∧ y < x + 1 over ints as x <= y-1, y <= x:
        // infeasible.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let d1 = s.add_row(&[(x, r(1)), (y, r(-1))]); // x - y
        assert!(s.assert_upper(d1, r(-1)));
        let d2 = s.add_row(&[(y, r(1)), (x, r(-1))]); // y - x
        assert!(s.assert_upper(d2, r(0)));
        assert_eq!(s.check(), LpResult::Unsat);
    }

    #[test]
    fn pop_restores_displaced_bounds() {
        let mut s = Simplex::new();
        let x = s.new_var(true);
        assert!(s.assert_lower(x, r(0)));
        assert!(s.assert_upper(x, r(10)));
        s.push();
        assert!(s.assert_lower(x, r(5)));
        assert!(s.assert_upper(x, r(6)));
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.value(x) >= r(5) && s.value(x) <= r(6));
        s.pop();
        // The base bounds are back and a previously excluded point is
        // admissible again.
        assert!(s.assert_upper(x, r(2)));
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.value(x) <= r(2));
    }

    #[test]
    fn scoped_conflict_does_not_outlive_pop() {
        // x + y <= 4 at base; scoped x >= 3, y >= 2 is infeasible, but
        // after pop the base system is feasible again.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let sl = s.add_row(&[(x, r(1)), (y, r(1))]);
        assert!(s.assert_upper(sl, r(4)));
        s.push();
        assert!(s.assert_lower(x, r(3)));
        assert!(s.assert_lower(y, r(2)));
        assert_eq!(s.check(), LpResult::Unsat);
        s.pop();
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.assert_lower(x, r(1)));
        assert!(s.assert_lower(y, r(2)));
        assert_eq!(s.check(), LpResult::Sat);
    }

    #[test]
    fn nested_scopes_restore_in_order() {
        let mut s = Simplex::new();
        let x = s.new_var(true);
        assert!(s.assert_upper(x, r(10)));
        s.push();
        assert!(s.assert_upper(x, r(7)));
        s.push();
        assert!(s.assert_upper(x, r(3)));
        assert!(!s.assert_lower(x, r(4)));
        s.pop();
        // Middle scope: bound is 7 again.
        assert!(s.assert_lower(x, r(5)));
        assert_eq!(s.check(), LpResult::Sat);
        s.pop();
        // The scoped lower bound is gone and the base upper is back.
        assert!(s.assert_lower(x, r(9)));
        assert_eq!(s.check(), LpResult::Sat);
        assert!(s.value(x) >= r(9) && s.value(x) <= r(10));
    }

    #[test]
    fn branch_and_bound_leaves_bounds_intact() {
        // After check_int the asserted bounds must be exactly what the
        // caller asserted — the search's branch bounds must all unwind.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let row = s.add_row(&[(x, r(2)), (y, r(2))]);
        assert!(s.assert_lower(row, r(4)) && s.assert_upper(row, r(4)));
        assert!(s.assert_lower(x, r(0)));
        assert!(s.assert_lower(y, r(0)));
        assert_eq!(s.check_int(), LpResult::Sat);
        // x = 2 (forcing y = 0) must still be admissible: a leaked
        // branch bound like x <= 0 or x <= 1 would reject it.
        assert!(s.assert_lower(x, r(2)));
        assert_eq!(s.check_int(), LpResult::Sat);
        assert_eq!(s.value(y), r(0));
    }

    #[test]
    fn add_row_over_basic_variable() {
        // Rows built on top of earlier slack variables still solve.
        let mut s = Simplex::new();
        let x = s.new_var(true);
        let y = s.new_var(true);
        let s1 = s.add_row(&[(x, r(1)), (y, r(1))]);
        let s2 = s.add_row(&[(s1, r(1)), (x, r(1))]); // 2x + y
        assert!(s.assert_lower(s2, r(10)));
        assert!(s.assert_upper(x, r(2)));
        assert!(s.assert_upper(y, r(2)));
        // 2x + y <= 6 < 10: infeasible.
        assert_eq!(s.check(), LpResult::Unsat);
    }
}
