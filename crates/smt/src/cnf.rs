//! Atomization and Tseitin CNF encoding.
//!
//! Predicates are split into *theory atoms* (equalities, linear
//! inequalities, boolean terms) mapped to SAT variables, and their boolean
//! structure is encoded into CNF clauses. Integer inequalities are
//! normalized — strict relations tightened (`a < b` becomes `a ≤ b − 1`),
//! coefficients scaled to coprime integers, constants ceiling-tightened —
//! so equivalent atoms share one SAT variable.

use crate::{BVar, LinExpr, Lit, Rat, Term, TermArena, TermId};
use dsolve_logic::{Pred, Rel, Sort, SortEnv, Symbol};
use std::collections::HashMap;

/// Identifier of a theory atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A theory atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Atom {
    /// `a = b`; `lin` carries `a − b` when both sides are integers so the
    /// equality also reaches the arithmetic solver.
    Eq {
        /// Left term.
        a: TermId,
        /// Right term.
        b: TermId,
        /// Linear form `a − b` for integer-sorted equalities.
        lin: Option<LinExpr>,
    },
    /// `lin ≤ 0` over integer atoms (already tightened/normalized).
    IntLe(LinExpr),
    /// A boolean-sorted term asserted true.
    BoolTerm(TermId),
}

/// The atom table built during encoding.
pub struct Atoms {
    /// Term arena shared with the theory solvers.
    pub arena: TermArena,
    defs: Vec<Atom>,
    dedup: HashMap<String, AtomId>,
    true_id: TermId,
    false_id: TermId,
}

impl Default for Atoms {
    fn default() -> Atoms {
        Atoms::new()
    }
}

impl Atoms {
    /// Creates an empty atom table (with the boolean constants
    /// pre-interned for the theory layer).
    pub fn new() -> Atoms {
        let mut arena = TermArena::new();
        let true_id = arena.intern(Term::Bool(true), Sort::Bool);
        let false_id = arena.intern(Term::Bool(false), Sort::Bool);
        Atoms {
            arena,
            defs: Vec::new(),
            dedup: HashMap::new(),
            true_id,
            false_id,
        }
    }

    /// The arena id of the boolean constant `b`.
    pub fn bool_const(&self, b: bool) -> TermId {
        if b {
            self.true_id
        } else {
            self.false_id
        }
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The definition of an atom.
    pub fn atom(&self, id: AtomId) -> &Atom {
        &self.defs[id.index()]
    }

    fn intern(&mut self, key: String, def: Atom) -> AtomId {
        if let Some(&id) = self.dedup.get(&key) {
            return id;
        }
        let id = AtomId(u32::try_from(self.defs.len()).expect("atom table overflow"));
        self.dedup.insert(key, id);
        self.defs.push(def);
        id
    }

    /// Normalizes `lin ≤ 0`: integer coefficients, coprime, constant
    /// tightened to its ceiling (sound because every atom is
    /// integer-valued).
    fn normalize_le(mut lin: LinExpr) -> LinExpr {
        // Scale to integer coefficients.
        let mut denom_lcm: i128 = lin.constant.denom();
        for c in lin.terms.values() {
            let d = c.denom();
            denom_lcm = denom_lcm / gcd(denom_lcm, d) * d;
        }
        lin = lin.scale(Rat::new(denom_lcm, 1));
        // Divide by the gcd of the variable coefficients.
        let mut g: i128 = 0;
        for c in lin.terms.values() {
            g = gcd(g, c.numer());
        }
        if g > 1 {
            lin = lin.scale(Rat::new(1, g));
        }
        // Tighten the constant: Σa·x + c ≤ 0 ⟺ Σa·x + ⌈c⌉ ≤ 0 over ints.
        lin.constant = lin.constant.ceil();
        lin
    }

    fn lin_key(lin: &LinExpr) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "{}", lin.constant);
        for (t, c) in &lin.terms {
            let _ = write!(s, "+{}*t{}", c, t.0);
        }
        s
    }

    /// Returns the atom (and polarity) for `a rel b` between two flattened
    /// / linearized sides.
    ///
    /// The polarity flag handles relations encoded as negations of an
    /// existing atom (`Ne` is `¬Eq`).
    pub fn atom_of_rel(
        &mut self,
        rel: Rel,
        lhs: &dsolve_logic::Expr,
        rhs: &dsolve_logic::Expr,
        env: &SortEnv,
    ) -> (AtomId, bool) {
        let lsort = env.sort_of(lhs);
        let rsort = env.sort_of(rhs);
        let both_int = lsort == Some(Sort::Int) && rsort == Some(Sort::Int);
        match rel {
            Rel::Le | Rel::Lt | Rel::Ge | Rel::Gt if both_int => {
                // Reduce to lin ≤ 0 with integer tightening.
                let la = self.arena.linearize(lhs, env);
                let lb = self.arena.linearize(rhs, env);
                let lin = match rel {
                    Rel::Le => la.minus(&lb),
                    Rel::Lt => {
                        let mut l = la.minus(&lb);
                        l.constant += Rat::ONE;
                        l
                    }
                    Rel::Ge => lb.minus(&la),
                    Rel::Gt => {
                        let mut l = lb.minus(&la);
                        l.constant += Rat::ONE;
                        l
                    }
                    _ => unreachable!(),
                };
                let lin = Self::normalize_le(lin);
                let key = format!("le:{}", Self::lin_key(&lin));
                (self.intern(key, Atom::IntLe(lin)), true)
            }
            Rel::Eq | Rel::Ne => {
                let ta = self.arena.flatten(lhs, env);
                let tb = self.arena.flatten(rhs, env);
                let (ta, tb) = if ta <= tb { (ta, tb) } else { (tb, ta) };
                let lin = if both_int {
                    let la = self.arena.linearize(lhs, env);
                    let lb = self.arena.linearize(rhs, env);
                    Some(la.minus(&lb))
                } else {
                    None
                };
                let key = format!("eq:t{}:t{}", ta.0, tb.0);
                let id = self.intern(key, Atom::Eq { a: ta, b: tb, lin });
                (id, rel == Rel::Eq)
            }
            Rel::In | Rel::Sub => {
                // Uninterpreted membership/subset predicate over terms.
                let ta = self.arena.flatten(lhs, env);
                let tb = self.arena.flatten(rhs, env);
                let head = if rel == Rel::In { "$in" } else { "$subset" };
                let t = self.arena.intern(
                    Term::App(Symbol::new(head), vec![ta, tb]),
                    Sort::Bool,
                );
                let key = format!("bt:t{}", t.0);
                (self.intern(key, Atom::BoolTerm(t)), true)
            }
            // Ordering over non-integers: treated as an uninterpreted
            // boolean term (sound: no facts are derivable from it).
            _ => {
                let ta = self.arena.flatten(lhs, env);
                let tb = self.arena.flatten(rhs, env);
                let t = self.arena.intern(
                    Term::App(Symbol::new(&format!("$rel_{rel}")), vec![ta, tb]),
                    Sort::Bool,
                );
                let key = format!("bt:t{}", t.0);
                (self.intern(key, Atom::BoolTerm(t)), true)
            }
        }
    }

    /// Returns the atom for a boolean term.
    pub fn atom_of_term(&mut self, e: &dsolve_logic::Expr, env: &SortEnv) -> AtomId {
        let t = self.arena.flatten(e, env);
        let key = format!("bt:t{}", t.0);
        self.intern(key, Atom::BoolTerm(t))
    }

    /// Interns a normalized `lin ≤ 0` atom directly (used by the encoder
    /// to split integer equalities into a pair of inequalities).
    pub fn int_le_atom(&mut self, lin: LinExpr) -> AtomId {
        let lin = Self::normalize_le(lin);
        let key = format!("le:{}", Self::lin_key(&lin));
        self.intern(key, Atom::IntLe(lin))
    }
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Output of the CNF encoding: clauses over SAT variables, with the
/// mapping from atoms to variables.
pub struct CnfFormula {
    /// CNF clauses.
    pub clauses: Vec<Vec<Lit>>,
    /// SAT variable for each atom id (index = atom index).
    pub atom_vars: Vec<BVar>,
    /// Total number of SAT variables (atoms + Tseitin gates).
    pub num_vars: usize,
}

/// Persistent encoder state shared across incremental encoding steps.
///
/// The atom → SAT-variable map, the variable counter, and the set of
/// already-split integer equalities all grow monotonically; an
/// assertion-scope pop never shrinks them (stale variables are merely
/// unconstrained, and the eq-split clauses are emitted as retained
/// lemmas, keeping `split_eqs` truthful across pops).
#[derive(Default)]
pub struct EncodeCtx {
    atom_vars: HashMap<AtomId, BVar>,
    num_vars: usize,
    split_eqs: std::collections::HashSet<AtomId>,
}

impl EncodeCtx {
    /// Creates an empty context.
    pub fn new() -> EncodeCtx {
        EncodeCtx::default()
    }

    /// Total SAT variables allocated so far (atoms + Tseitin gates).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Allocates a fresh SAT variable.
    fn fresh(&mut self) -> BVar {
        let v = BVar(u32::try_from(self.num_vars).expect("too many SAT variables"));
        self.num_vars += 1;
        v
    }

    /// The SAT variable of atom `a`, allocating one on first use.
    pub fn var_of_atom(&mut self, a: AtomId) -> BVar {
        if let Some(&v) = self.atom_vars.get(&a) {
            return v;
        }
        let v = self.fresh();
        self.atom_vars.insert(a, v);
        v
    }

    /// The SAT variable of atom `a`, if one was ever allocated.
    pub fn lookup_atom(&self, a: AtomId) -> Option<BVar> {
        self.atom_vars.get(&a).copied()
    }
}

/// Clauses produced by one incremental encoding step.
pub struct EncodedUnit {
    /// Clauses asserting the predicate — valid only while its scope is.
    pub clauses: Vec<Vec<Lit>>,
    /// Definitional clauses (integer-equality splits `eq ↔ le₁ ∧ le₂`)
    /// that are valid independent of any assertion and must survive
    /// scope pops, matching the persistence of [`EncodeCtx::split_eqs`].
    pub lemma_clauses: Vec<Vec<Lit>>,
}

/// Encodes `p` (asserted true) on top of persistent encoder state,
/// returning only the new clauses. Atoms and SAT variables already known
/// to `ctx` are reused, which is what makes re-asserting predicates
/// under a shared antecedent cheap.
pub fn encode_incremental(
    p: &Pred,
    atoms: &mut Atoms,
    env: &SortEnv,
    ctx: &mut EncodeCtx,
) -> EncodedUnit {
    let mut enc = Encoder {
        atoms,
        env,
        ctx,
        clauses: Vec::new(),
        lemma_clauses: Vec::new(),
    };
    match enc.lit_of(p) {
        EncLit::Const(true) => {}
        EncLit::Const(false) => enc.clauses.push(vec![]),
        EncLit::Lit(l) => enc.clauses.push(vec![l]),
    }
    EncodedUnit {
        clauses: enc.clauses,
        lemma_clauses: enc.lemma_clauses,
    }
}

/// Encodes `p` (asserted true) into CNF over theory atoms.
pub fn encode(p: &Pred, atoms: &mut Atoms, env: &SortEnv) -> CnfFormula {
    let mut ctx = EncodeCtx::new();
    let unit = encode_incremental(p, atoms, env, &mut ctx);
    let mut clauses = unit.lemma_clauses;
    clauses.extend(unit.clauses);
    // Dense atom-var table (atoms created during encoding are all mapped).
    let mut table = vec![BVar(u32::MAX); atoms.len()];
    for (aid, v) in &ctx.atom_vars {
        table[aid.index()] = *v;
    }
    // Atoms mentioned zero times (shouldn't happen) get fresh vars.
    let mut nvars = ctx.num_vars;
    for t in table.iter_mut() {
        if t.0 == u32::MAX {
            *t = BVar(nvars as u32);
            nvars += 1;
        }
    }
    CnfFormula {
        clauses,
        atom_vars: table,
        num_vars: nvars,
    }
}

enum EncLit {
    Const(bool),
    Lit(Lit),
}

/// The polarities under which a subformula can be asserted.
#[derive(Clone, Copy)]
struct PolaritySet {
    pos: bool,
    neg: bool,
}

impl PolaritySet {
    const POS: PolaritySet = PolaritySet { pos: true, neg: false };
    const BOTH: PolaritySet = PolaritySet { pos: true, neg: true };

    fn flip(self) -> PolaritySet {
        PolaritySet {
            pos: self.neg,
            neg: self.pos,
        }
    }
}

struct Encoder<'a> {
    atoms: &'a mut Atoms,
    env: &'a SortEnv,
    ctx: &'a mut EncodeCtx,
    clauses: Vec<Vec<Lit>>,
    lemma_clauses: Vec<Vec<Lit>>,
}

impl Encoder<'_> {
    fn fresh(&mut self) -> BVar {
        self.ctx.fresh()
    }

    fn var_of_atom(&mut self, a: AtomId) -> BVar {
        self.ctx.var_of_atom(a)
    }

    fn lit_of(&mut self, p: &Pred) -> EncLit {
        self.lit_of_polarity(p, PolaritySet::POS)
    }

    fn lit_of_polarity(&mut self, p: &Pred, pol: PolaritySet) -> EncLit {
        match p {
            Pred::True => EncLit::Const(true),
            Pred::False => EncLit::Const(false),
            Pred::Atom(rel, a, b) => {
                let (aid, pos) = self.atoms.atom_of_rel(*rel, a, b, self.env);
                let v = self.var_of_atom(aid);
                // Integer equalities that may occur *negated* are defined
                // as the conjunction of two inequalities so the strict
                // complement reaches the arithmetic solver (EUF alone
                // cannot refute `x≤y ∧ y≤x ∧ x≠y`). Positive-only
                // occurrences skip the split, keeping conjunctive queries
                // free of boolean choice.
                let atom_neg_possible = if pos { pol.neg } else { pol.pos };
                if atom_neg_possible {
                    if let Atom::Eq { lin: Some(lin), .. } = self.atoms.atom(aid).clone() {
                        if self.ctx.split_eqs.insert(aid) {
                            let le1 = self.atoms.int_le_atom(lin.clone());
                            let le2 = self.atoms.int_le_atom(lin.scale(Rat::from_int(-1)));
                            let v1 = self.var_of_atom(le1);
                            let v2 = self.var_of_atom(le2);
                            let eq = Lit::pos(v);
                            // eq ↔ (le1 ∧ le2): definitional, so emitted
                            // as retained lemmas (split_eqs persists
                            // across scope pops and the clauses must too).
                            self.lemma_clauses.push(vec![eq.negate(), Lit::pos(v1)]);
                            self.lemma_clauses.push(vec![eq.negate(), Lit::pos(v2)]);
                            self.lemma_clauses
                                .push(vec![eq, Lit::neg(v1), Lit::neg(v2)]);
                        }
                    }
                }
                EncLit::Lit(Lit::new(v, pos))
            }
            Pred::Term(e) => {
                let aid = self.atoms.atom_of_term(e, self.env);
                let v = self.var_of_atom(aid);
                EncLit::Lit(Lit::pos(v))
            }
            Pred::Not(q) => match self.lit_of_polarity(q, pol.flip()) {
                EncLit::Const(b) => EncLit::Const(!b),
                EncLit::Lit(l) => EncLit::Lit(l.negate()),
            },
            Pred::And(ps) => self.gate(ps, true, pol),
            Pred::Or(ps) => self.gate(ps, false, pol),
            Pred::Imp(p, q) => {
                let disj = Pred::Or(vec![Pred::Not(p.clone()), (**q).clone()]);
                self.lit_of_polarity(&disj, pol)
            }
            Pred::Iff(p, q) => {
                let lp = self.lit_of_polarity(p, PolaritySet::BOTH);
                let lq = self.lit_of_polarity(q, PolaritySet::BOTH);
                match (lp, lq) {
                    (EncLit::Const(a), EncLit::Const(b)) => EncLit::Const(a == b),
                    (EncLit::Const(true), EncLit::Lit(l))
                    | (EncLit::Lit(l), EncLit::Const(true)) => EncLit::Lit(l),
                    (EncLit::Const(false), EncLit::Lit(l))
                    | (EncLit::Lit(l), EncLit::Const(false)) => EncLit::Lit(l.negate()),
                    (EncLit::Lit(a), EncLit::Lit(b)) => {
                        let g = Lit::pos(self.fresh());
                        // g ↔ (a ↔ b)
                        self.clauses.push(vec![g.negate(), a.negate(), b]);
                        self.clauses.push(vec![g.negate(), a, b.negate()]);
                        self.clauses.push(vec![g, a, b]);
                        self.clauses.push(vec![g, a.negate(), b.negate()]);
                        EncLit::Lit(g)
                    }
                }
            }
        }
    }

    /// And/Or gate: `conj` selects conjunction.
    fn gate(&mut self, ps: &[Pred], conj: bool, pol: PolaritySet) -> EncLit {
        let mut lits = Vec::new();
        for p in ps {
            match self.lit_of_polarity(p, pol) {
                EncLit::Const(b) => {
                    if b != conj {
                        // Absorbing element.
                        return EncLit::Const(!conj);
                    }
                }
                EncLit::Lit(l) => lits.push(l),
            }
        }
        match lits.len() {
            0 => EncLit::Const(conj),
            1 => EncLit::Lit(lits[0]),
            _ => {
                let g = Lit::pos(self.fresh());
                if conj {
                    // g → each li; (¬l1 ∨ ... ∨ ¬ln) → ¬g reversed.
                    let mut big = vec![g];
                    for l in &lits {
                        self.clauses.push(vec![g.negate(), *l]);
                        big.push(l.negate());
                    }
                    self.clauses.push(big);
                } else {
                    let mut big = vec![g.negate()];
                    for l in &lits {
                        self.clauses.push(vec![g, l.negate()]);
                        big.push(*l);
                    }
                    self.clauses.push(big);
                }
                EncLit::Lit(g)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_pred;

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        for v in ["x", "y", "z"] {
            env.bind(Symbol::new(v), Sort::Int);
        }
        env.bind(Symbol::new("s"), Sort::Set);
        env.bind(Symbol::new("flag"), Sort::Bool);
        env
    }

    #[test]
    fn equivalent_inequalities_share_atoms() {
        let mut atoms = Atoms::new();
        let env = env();
        let p1 = parse_pred("x < y").unwrap();
        let p2 = parse_pred("x + 1 <= y").unwrap();
        let Pred::Atom(r1, a1, b1) = &p1 else { panic!() };
        let Pred::Atom(r2, a2, b2) = &p2 else { panic!() };
        let (id1, _) = atoms.atom_of_rel(*r1, a1, b1, &env);
        let (id2, _) = atoms.atom_of_rel(*r2, a2, b2, &env);
        assert_eq!(id1, id2);
    }

    #[test]
    fn scaled_inequalities_share_atoms() {
        let mut atoms = Atoms::new();
        let env = env();
        let p1 = parse_pred("2 * x <= 2 * y").unwrap();
        let p2 = parse_pred("x <= y").unwrap();
        let Pred::Atom(r1, a1, b1) = &p1 else { panic!() };
        let Pred::Atom(r2, a2, b2) = &p2 else { panic!() };
        let (id1, _) = atoms.atom_of_rel(*r1, a1, b1, &env);
        let (id2, _) = atoms.atom_of_rel(*r2, a2, b2, &env);
        assert_eq!(id1, id2);
    }

    #[test]
    fn ne_is_negated_eq() {
        let mut atoms = Atoms::new();
        let env = env();
        let p1 = parse_pred("x = y").unwrap();
        let p2 = parse_pred("x != y").unwrap();
        let Pred::Atom(r1, a1, b1) = &p1 else { panic!() };
        let Pred::Atom(r2, a2, b2) = &p2 else { panic!() };
        let (id1, pos1) = atoms.atom_of_rel(*r1, a1, b1, &env);
        let (id2, pos2) = atoms.atom_of_rel(*r2, a2, b2, &env);
        assert_eq!(id1, id2);
        assert!(pos1);
        assert!(!pos2);
    }

    #[test]
    fn int_equality_has_linear_form() {
        let mut atoms = Atoms::new();
        let env = env();
        let p = parse_pred("x = y + 1").unwrap();
        let Pred::Atom(r, a, b) = &p else { panic!() };
        let (id, _) = atoms.atom_of_rel(*r, a, b, &env);
        assert!(matches!(atoms.atom(id), Atom::Eq { lin: Some(_), .. }));
    }

    #[test]
    fn set_equality_has_no_linear_form() {
        let mut atoms = Atoms::new();
        let env = env();
        let p = parse_pred("s = union(s, s)").unwrap();
        let Pred::Atom(r, a, b) = &p else { panic!() };
        let (id, _) = atoms.atom_of_rel(*r, a, b, &env);
        assert!(matches!(atoms.atom(id), Atom::Eq { lin: None, .. }));
    }

    #[test]
    fn encode_produces_clauses() {
        let mut atoms = Atoms::new();
        let env = env();
        let p = parse_pred("x < y && (y < z || flag)").unwrap();
        let cnf = encode(&p, &mut atoms, &env);
        assert!(!cnf.clauses.is_empty());
        assert_eq!(cnf.atom_vars.len(), atoms.len());
        assert!(cnf.num_vars >= atoms.len());
    }

    #[test]
    fn encode_constant_true_is_empty() {
        let mut atoms = Atoms::new();
        let env = env();
        let cnf = encode(&Pred::True, &mut atoms, &env);
        assert!(cnf.clauses.is_empty());
    }

    #[test]
    fn encode_constant_false_is_empty_clause() {
        let mut atoms = Atoms::new();
        let env = env();
        let cnf = encode(&Pred::False, &mut atoms, &env);
        assert_eq!(cnf.clauses, vec![Vec::<Lit>::new()]);
    }
}
