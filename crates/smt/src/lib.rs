//! # dsolve-smt
//!
//! A from-scratch SMT solver for the decidable fragment the paper's
//! verifier targets: quantifier-free formulas over **e**quality,
//! **u**ninterpreted **f**unctions and linear integer **a**rithmetic
//! (EUFA), extended with ground McCarthy array operators (`Sel`/`Upd`)
//! and an ACI1 theory of finite sets (`empty`/`single`/`union`).
//!
//! The original DSOLVE used Z3 [de Moura & Bjørner, TACAS 2008]; this
//! crate substitutes a self-contained lazy-SMT stack so the verifier runs
//! with zero system dependencies:
//!
//! * [`CdclSolver`] — conflict-driven clause learning SAT core;
//! * [`Euf`] — congruence closure;
//! * [`Simplex`] — general simplex with integer branch-and-bound;
//! * array-axiom instantiation and set canonicalization preprocessing;
//! * a Nelson–Oppen-style combination loop with equality propagation.
//!
//! Every incompleteness escape hatch (wall-clock deadline, query cap,
//! branch-and-bound budget, conflict budgets, saturation-lemma cap — see
//! [`dsolve_logic::Budget`]) is *reported*: the three-valued
//! [`SmtSolver::check_valid`] / [`SmtSolver::check_sat`] APIs return
//! `Unknown` with a structured [`dsolve_logic::Exhaustion`] when a limit
//! is hit. The boolean façades [`SmtSolver::is_valid`] /
//! [`SmtSolver::is_sat`] resolve `Unknown` toward *rejecting* a
//! verification condition, so a verifier built on them stays sound.
//!
//! ## Example
//!
//! ```
//! use dsolve_logic::{parse_pred, Sort, SortEnv, Symbol};
//! use dsolve_smt::SmtSolver;
//!
//! let mut env = SortEnv::new();
//! env.bind(Symbol::new("i"), Sort::Int);
//! env.bind(Symbol::new("k"), Sort::Int);
//!
//! let mut smt = SmtSolver::new();
//! // The divide-by-zero obligation from Fig. 1 of the paper:
//! // 1 <= i and i <= k imply k != 0.
//! let lhs = parse_pred("1 <= i && i <= k").unwrap();
//! let rhs = parse_pred("k != 0").unwrap();
//! assert!(smt.is_valid(&env, &lhs, &rhs));
//! ```

#![warn(missing_docs)]

mod arrays;
mod cache;
mod certify;
mod cnf;
mod euf;
mod rational;
mod sat;
mod session;
mod sets;
mod simplex;
mod solver;
mod term;
mod theory;

pub use arrays::{array_axiom_lemmas, instantiate_array_axioms};
pub use cache::QueryCache;
pub use cnf::{encode, encode_incremental, Atom, AtomId, Atoms, CnfFormula, EncodeCtx, EncodedUnit};
pub use euf::{Euf, EufResult};
pub use rational::Rat;
pub use sat::{BVar, CdclSolver, Lit, SatResult};
pub use sets::{canonicalize_sets, set_saturation_lemma_list, set_saturation_lemmas};
pub use simplex::{LpResult, Simplex};
pub use solver::{SmtResult, SmtSolver, SolverConfig, SolverStats, Validity};
pub use term::{LinExpr, Term, TermArena, TermId};
pub use theory::{check_assignment, TheoryBudget, TheoryResult};
