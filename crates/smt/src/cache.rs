//! A shared, lock-striped validity-query cache.
//!
//! The liquid fixpoint issues enormous numbers of implication queries,
//! many of them repeats (the same antecedent is checked against many
//! candidate qualifiers, and weakening re-checks constraints whose
//! relevant inputs did not change). Each [`crate::SmtSolver`] consults a
//! [`QueryCache`]; handing several solvers the *same* `Arc<QueryCache>`
//! lets parallel fixpoint workers reuse each other's answers and keeps
//! the answers alive across fixpoint rounds and the final obligation
//! pass.
//!
//! Keys are the *structural* hash of the `(antecedent, consequent)` pair
//! (collisions resolved by full structural equality), replacing the old
//! per-query `format!("{lhs} |- {rhs}")` string key whose construction
//! cost grew with formula size.
//!
//! Only definite answers are stored: an `Unknown` under one budget may
//! well be decidable under a larger one, so it must never be replayed.

use dsolve_logic::Pred;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards. A power of two well above any
/// realistic worker count keeps contention negligible.
const SHARDS: usize = 64;

/// One shard's map: structural hash → entries colliding on that hash.
type ShardMap = HashMap<u64, Vec<(Pred, Pred, bool)>>;

/// One independently locked shard.
type Shard = Mutex<ShardMap>;

/// A concurrent memo table for validity queries.
///
/// # Examples
///
/// ```
/// use dsolve_logic::parse_pred;
/// use dsolve_smt::QueryCache;
///
/// let cache = QueryCache::new();
/// let a = parse_pred("x < y").unwrap();
/// let c = parse_pred("x <= y").unwrap();
/// assert_eq!(cache.get(&a, &c), None);
/// cache.insert(&a, &c, true);
/// assert_eq!(cache.get(&a, &c), Some(true));
/// ```
pub struct QueryCache {
    /// Shard `i` holds the entries whose structural hash maps to `i`.
    /// Buckets store the full key pair so hash collisions fall back to
    /// structural equality, never to a wrong verdict.
    shards: Vec<Shard>,
    hits: AtomicU64,
    lookups: AtomicU64,
    entries: AtomicU64,
    poisoned: AtomicU64,
}

impl Default for QueryCache {
    fn default() -> QueryCache {
        QueryCache::new()
    }
}

impl QueryCache {
    /// Creates an empty cache.
    pub fn new() -> QueryCache {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// Locks shard `i`, recovering from poison.
    ///
    /// A cache shard only ever sees infallible map reads and pushes, so a
    /// panic on a thread that happened to hold the lock cannot leave a
    /// torn entry — the worst case is a missing insert. Recovering with
    /// `into_inner` (counted in [`QueryCache::poison_recoveries`]) keeps
    /// one quarantined worker's panic from cascading into every later
    /// query on the shared cache.
    fn lock_shard(&self, i: usize) -> std::sync::MutexGuard<'_, ShardMap> {
        self.shards[i].lock().unwrap_or_else(|e| {
            self.poisoned.fetch_add(1, Ordering::Relaxed);
            e.into_inner()
        })
    }

    /// Creates an empty cache behind a shareable handle.
    pub fn shared() -> Arc<QueryCache> {
        Arc::new(QueryCache::new())
    }

    /// The structural hash of a query (also selects the shard).
    fn key(antecedent: &Pred, consequent: &Pred) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        antecedent.hash(&mut h);
        consequent.hash(&mut h);
        h.finish()
    }

    /// Looks up the cached verdict for `antecedent ⇒ consequent`.
    pub fn get(&self, antecedent: &Pred, consequent: &Pred) -> Option<bool> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = QueryCache::key(antecedent, consequent);
        let shard = self.lock_shard((key as usize) % SHARDS);
        let found = shard.get(&key).and_then(|bucket| {
            bucket
                .iter()
                .find(|(a, c, _)| a == antecedent && c == consequent)
                .map(|(_, _, v)| *v)
        });
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Records a definite verdict. Racing inserts of the same query are
    /// harmless: the solver is deterministic, so both record the same
    /// answer and the duplicate is skipped.
    pub fn insert(&self, antecedent: &Pred, consequent: &Pred, valid: bool) {
        let key = QueryCache::key(antecedent, consequent);
        let mut shard = self.lock_shard((key as usize) % SHARDS);
        let bucket = shard.entry(key).or_default();
        if bucket
            .iter()
            .any(|(a, c, _)| a == antecedent && c == consequent)
        {
            return;
        }
        bucket.push((antecedent.clone(), consequent.clone(), valid));
        self.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache hits since creation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups since creation.
    pub fn lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Stored entries.
    pub fn len(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Times a shard lock was found poisoned and recovered.
    pub fn poison_recoveries(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Poisons every shard (see [`QueryCache::poison_shard`]), so the
    /// first cache access of any query recovers a poisoned lock. Used by
    /// the `cache-poison` fault point, where poisoning one arbitrary
    /// shard could miss a short run's entire key range.
    pub fn poison_all_shards(&self) {
        for i in 0..SHARDS {
            self.poison_shard(i);
        }
    }

    /// Deliberately poisons shard `i % SHARDS` by panicking while holding
    /// its lock (the panic is caught here). Fault-injection hook for the
    /// `cache-poison` fault point and the recovery tests.
    pub fn poison_shard(&self, i: usize) {
        let shard = &self.shards[i % SHARDS];
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = shard.lock().unwrap_or_else(|e| e.into_inner());
            panic!("injected cache-shard poison");
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_pred;

    #[test]
    fn get_insert_roundtrip() {
        let cache = QueryCache::new();
        let a = parse_pred("x < y").unwrap();
        let c = parse_pred("x <= y").unwrap();
        assert_eq!(cache.get(&a, &c), None);
        cache.insert(&a, &c, true);
        assert_eq!(cache.get(&a, &c), Some(true));
        // Direction matters: the reversed query is distinct.
        assert_eq!(cache.get(&c, &a), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.lookups(), 3);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let cache = QueryCache::new();
        let a = parse_pred("x = 1").unwrap();
        let c = parse_pred("x >= 1").unwrap();
        cache.insert(&a, &c, true);
        cache.insert(&a, &c, true);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_shard_recovers() {
        let cache = QueryCache::new();
        let a = parse_pred("x < y").unwrap();
        let c = parse_pred("x <= y").unwrap();
        cache.insert(&a, &c, true);
        // Poison every shard so the one holding (a, c) is hit for sure.
        for i in 0..64 {
            cache.poison_shard(i);
        }
        assert_eq!(cache.get(&a, &c), Some(true), "entry survives poison");
        cache.insert(&c, &a, false);
        assert_eq!(cache.get(&c, &a), Some(false), "inserts work after poison");
        assert!(cache.poison_recoveries() >= 1);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = QueryCache::shared();
        let preds: Vec<_> = (0..32)
            .map(|i| parse_pred(&format!("x = {i}")).unwrap())
            .collect();
        let c = parse_pred("0 <= x").unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                let preds = &preds;
                let c = &c;
                s.spawn(move || {
                    for (i, a) in preds.iter().enumerate() {
                        cache.insert(a, c, i % 2 == t % 2);
                        assert!(cache.get(a, c).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 32);
    }
}
