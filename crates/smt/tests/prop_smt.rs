//! Property tests for the SMT solver: soundness of UNSAT answers against
//! brute-force enumeration, and internal consistency of the validity
//! interface.

use dsolve_logic::{Expr, Pred, Rel, Sort, SortEnv, Symbol};
use dsolve_smt::SmtSolver;
use proptest::prelude::*;

const VARS: [&str; 3] = ["x", "y", "z"];
const BOUND: i64 = 4;

fn env() -> SortEnv {
    let mut env = SortEnv::new();
    for v in VARS {
        env.bind(Symbol::new(v), Sort::Int);
    }
    env
}

/// A random linear atom `a*x + b*y + c*z + d REL 0`.
fn arb_atom() -> impl Strategy<Value = (Vec<i64>, i64, Rel)> {
    (
        prop::collection::vec(-3i64..=3, VARS.len()),
        -6i64..=6,
        prop_oneof![Just(Rel::Le), Just(Rel::Lt), Just(Rel::Eq), Just(Rel::Ne)],
    )
}

fn atom_pred(coeffs: &[i64], d: i64, rel: Rel) -> Pred {
    let mut e = Expr::int(d);
    for (c, v) in coeffs.iter().zip(VARS) {
        e = e.add(Expr::int(*c).mul(Expr::var(v)));
    }
    Pred::Atom(rel, e, Expr::int(0))
}

fn eval_atom(coeffs: &[i64], d: i64, rel: Rel, vals: &[i64]) -> bool {
    let s: i64 = d + coeffs.iter().zip(vals).map(|(c, v)| c * v).sum::<i64>();
    match rel {
        Rel::Le => s <= 0,
        Rel::Lt => s < 0,
        Rel::Eq => s == 0,
        Rel::Ne => s != 0,
        _ => unreachable!(),
    }
}

/// Box constraints so every variable is bounded; brute force then decides
/// the system exactly.
fn boxed(mut conj: Vec<Pred>) -> Pred {
    for v in VARS {
        conj.push(Pred::le(Expr::int(-BOUND), Expr::var(v)));
        conj.push(Pred::le(Expr::var(v), Expr::int(BOUND)));
    }
    Pred::and(conj)
}

fn brute_force_sat(atoms: &[(Vec<i64>, i64, Rel)]) -> bool {
    let r = -BOUND..=BOUND;
    for x in r.clone() {
        for y in r.clone() {
            for z in r.clone() {
                let vals = [x, y, z];
                if atoms
                    .iter()
                    .all(|(c, d, rel)| eval_atom(c, *d, *rel, &vals))
                {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If brute force finds a model in the box, the solver must not
    /// claim UNSAT — the soundness direction the verifier depends on.
    #[test]
    fn unsat_answers_are_sound(atoms in prop::collection::vec(arb_atom(), 1..5)) {
        let conj: Vec<Pred> = atoms
            .iter()
            .map(|(c, d, rel)| atom_pred(c, *d, *rel))
            .collect();
        let formula = boxed(conj);
        let mut smt = SmtSolver::new();
        let solver_sat = smt.is_sat(&env(), &formula);
        let brute_sat = brute_force_sat(&atoms);
        if brute_sat {
            prop_assert!(solver_sat, "solver claimed UNSAT for satisfiable `{formula}`");
        } else {
            // Fully boxed integer systems are within the solver's
            // complete fragment, so we also check the other direction.
            prop_assert!(!solver_sat, "solver claimed SAT for unsatisfiable `{formula}`");
        }
    }

    /// Every predicate implies itself, and an inconsistent antecedent
    /// implies anything.
    #[test]
    fn validity_reflexivity(atoms in prop::collection::vec(arb_atom(), 1..4)) {
        let conj: Vec<Pred> = atoms
            .iter()
            .map(|(c, d, rel)| atom_pred(c, *d, *rel))
            .collect();
        let p = Pred::and(conj);
        let mut smt = SmtSolver::new();
        prop_assert!(smt.is_valid(&env(), &p, &p));
        prop_assert!(smt.is_valid(&env(), &Pred::False, &p));
    }

    /// Weakening: a conjunction implies each of its conjuncts.
    #[test]
    fn conjunction_implies_conjuncts(atoms in prop::collection::vec(arb_atom(), 2..5)) {
        let conj: Vec<Pred> = atoms
            .iter()
            .map(|(c, d, rel)| atom_pred(c, *d, *rel))
            .collect();
        let whole = Pred::and(conj.clone());
        let mut smt = SmtSolver::new();
        for part in conj {
            prop_assert!(
                smt.is_valid(&env(), &whole, &part),
                "`{whole}` should imply `{part}`"
            );
        }
    }

    /// EUF congruence: x = y implies f(x) = f(y) for random argument
    /// tuples built from the variables.
    #[test]
    fn congruence_holds(picks in prop::collection::vec(0usize..VARS.len(), 1..3)) {
        let mut env = env();
        env.declare_func(
            Symbol::new("f"),
            dsolve_logic::FuncSort::new(vec![Sort::Int; picks.len()], Sort::Int),
        );
        let args1: Vec<Expr> = picks.iter().map(|i| Expr::var(VARS[*i])).collect();
        // Replace x by y everywhere.
        let args2: Vec<Expr> = picks
            .iter()
            .map(|i| if VARS[*i] == "x" { Expr::var("y") } else { Expr::var(VARS[*i]) })
            .collect();
        let lhs = Pred::eq(Expr::var("x"), Expr::var("y"));
        let rhs = Pred::eq(Expr::app("f", args1), Expr::app("f", args2));
        let mut smt = SmtSolver::new();
        prop_assert!(smt.is_valid(&env, &lhs, &rhs));
    }
}
