//! Theory-solver oracles: the simplex and congruence-closure engines
//! checked against brute-force reference implementations on randomly
//! generated small instances, including through push/pop scopes.
//!
//! Case counts are deliberately small so `cargo test` stays fast; build
//! with `--features slow-proptest` for a deeper local run.

use dsolve_logic::{Expr, Pred, Rel, Sort, SortEnv, Symbol};
use dsolve_smt::{
    Euf, EufResult, LpResult, Rat, Simplex, SmtSolver, SolverConfig, Term, TermArena, TermId,
    Validity,
};
use proptest::prelude::*;

#[cfg(feature = "slow-proptest")]
const CASES: u32 = 256;
#[cfg(not(feature = "slow-proptest"))]
const CASES: u32 = 48;

const NVARS: usize = 3;
const BOUND: i64 = 4;

/// One linear constraint `c·x REL d` with `REL ∈ {≤, ≥, =}`.
type Constraint = (Vec<i64>, i64, u8);

fn arb_constraint() -> impl Strategy<Value = Constraint> {
    (
        prop::collection::vec(-3i64..=3, NVARS),
        -6i64..=6,
        0u8..3,
    )
}

fn eval(c: &Constraint, vals: &[i64; NVARS]) -> bool {
    let s: i64 = c.0.iter().zip(vals).map(|(a, v)| a * v).sum();
    match c.2 {
        0 => s <= c.1,
        1 => s >= c.1,
        _ => s == c.1,
    }
}

/// Exhaustive integer feasibility over the `[-BOUND, BOUND]^3` box.
fn brute_feasible(cs: &[Constraint]) -> bool {
    let r = -BOUND..=BOUND;
    for x in r.clone() {
        for y in r.clone() {
            for z in r.clone() {
                let vals = [x, y, z];
                if cs.iter().all(|c| eval(c, &vals)) {
                    return true;
                }
            }
        }
    }
    false
}

/// Builds a boxed tableau over `NVARS` integer variables and asserts
/// `cs` as slack-variable bounds. Returns `None` when an assertion hits
/// an immediate conflict (which is itself an Unsat answer).
fn assert_all(simplex: &mut Simplex, vars: &[usize], cs: &[Constraint]) -> bool {
    for c in cs {
        let combo: Vec<(usize, Rat)> = c
            .0
            .iter()
            .zip(vars)
            .filter(|(a, _)| **a != 0)
            .map(|(a, v)| (*v, Rat::from_int(*a)))
            .collect();
        let d = Rat::from_int(c.1);
        if combo.is_empty() {
            // Constant constraint: 0 REL d.
            let holds = match c.2 {
                0 => 0 <= c.1,
                1 => 0 >= c.1,
                _ => c.1 == 0,
            };
            if !holds {
                return false;
            }
            continue;
        }
        let s = simplex.add_row(&combo);
        let ok = match c.2 {
            0 => simplex.assert_upper(s, d),
            1 => simplex.assert_lower(s, d),
            _ => simplex.assert_lower(s, d) && simplex.assert_upper(s, d),
        };
        if !ok {
            return false;
        }
    }
    true
}

fn boxed_simplex() -> (Simplex, Vec<usize>) {
    let mut simplex = Simplex::new();
    let vars: Vec<usize> = (0..NVARS).map(|_| simplex.new_var(true)).collect();
    for &v in &vars {
        assert!(simplex.assert_lower(v, Rat::from_int(-BOUND)));
        assert!(simplex.assert_upper(v, Rat::from_int(BOUND)));
    }
    (simplex, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Integer branch-and-bound over a fully boxed system is complete:
    /// its verdict must equal exhaustive enumeration.
    #[test]
    fn simplex_matches_brute_force(
        cs in prop::collection::vec(arb_constraint(), 1..5),
    ) {
        let (mut simplex, vars) = boxed_simplex();
        let expected = brute_feasible(&cs);
        if !assert_all(&mut simplex, &vars, &cs) {
            prop_assert!(!expected, "immediate conflict on feasible {cs:?}");
        } else {
            match simplex.check_int() {
                LpResult::Sat => prop_assert!(expected, "Sat on infeasible {cs:?}"),
                LpResult::Unsat => prop_assert!(!expected, "Unsat on feasible {cs:?}"),
                LpResult::Unknown => prop_assert!(false, "budget exhausted on {cs:?}"),
            }
        }
    }

    /// Scoped constraints do not leak: asserting `extra` inside a scope
    /// and popping must leave the base system's verdict unchanged.
    #[test]
    fn simplex_scopes_match_brute_force(
        base in prop::collection::vec(arb_constraint(), 1..4),
        extra in prop::collection::vec(arb_constraint(), 1..4),
    ) {
        let (mut simplex, vars) = boxed_simplex();
        if !assert_all(&mut simplex, &vars, &base) {
            prop_assert!(!brute_feasible(&base));
        } else {
            simplex.push();
            let mut both: Vec<Constraint> = base.clone();
            both.extend(extra.iter().cloned());
            if assert_all(&mut simplex, &vars, &extra) {
                let got = simplex.check_int();
                let expected = brute_feasible(&both);
                prop_assert_eq!(
                    got,
                    if expected { LpResult::Sat } else { LpResult::Unsat },
                    "scoped verdict wrong for {:?}",
                    both
                );
            }
            simplex.pop();
            let got = simplex.check_int();
            let expected = brute_feasible(&base);
            prop_assert_eq!(
                got,
                if expected { LpResult::Sat } else { LpResult::Unsat },
                "popped verdict wrong for base {:?}",
                base
            );
        }
    }
}

// ---------------------------------------------------------------------
// EUF vs a naive fixpoint congruence closure.
// ---------------------------------------------------------------------

/// Builds the fixed term universe: four variables, two distinct
/// constants, `f` applied to each variable, and `f(f(a))`.
fn universe() -> (TermArena, Vec<TermId>) {
    let mut arena = TermArena::new();
    let mut terms = Vec::new();
    let vars: Vec<TermId> = ["a", "b", "c", "d"]
        .iter()
        .map(|v| arena.intern(Term::Var(dsolve_logic::Symbol::new(v), Sort::Int), Sort::Int))
        .collect();
    terms.extend(vars.iter().copied());
    terms.push(arena.intern(Term::Int(0), Sort::Int));
    terms.push(arena.intern(Term::Int(1), Sort::Int));
    let f = dsolve_logic::Symbol::new("f");
    let apps: Vec<TermId> = vars
        .iter()
        .map(|&v| arena.intern(Term::App(f, vec![v]), Sort::Int))
        .collect();
    terms.extend(apps.iter().copied());
    terms.push(arena.intern(Term::App(f, vec![apps[0]]), Sort::Int));
    (arena, terms)
}

/// Reference congruence closure: repeated passes merging asserted
/// equalities and congruent applications until fixpoint, then conflict
/// detection on disequalities and distinct interpreted constants.
fn naive_closure(
    arena: &TermArena,
    eqs: &[(TermId, TermId)],
    nes: &[(TermId, TermId)],
) -> EufResult {
    let ids: Vec<TermId> = arena.ids().collect();
    let n = ids.len();
    let mut repr: Vec<usize> = (0..n).collect();
    fn find(repr: &[usize], mut i: usize) -> usize {
        while repr[i] != i {
            i = repr[i];
        }
        i
    }
    let mut changed = true;
    while changed {
        changed = false;
        for &(a, b) in eqs {
            let (ra, rb) = (find(&repr, a.index()), find(&repr, b.index()));
            if ra != rb {
                repr[ra.max(rb)] = ra.min(rb);
                changed = true;
            }
        }
        // Congruence: merge applications with the same head whose
        // arguments are pairwise congruent.
        for i in 0..n {
            for j in (i + 1)..n {
                let (Term::App(fi, ai), Term::App(fj, aj)) =
                    (arena.term(ids[i]), arena.term(ids[j]))
                else {
                    continue;
                };
                if fi != fj || ai.len() != aj.len() {
                    continue;
                }
                let congruent = ai
                    .iter()
                    .zip(aj)
                    .all(|(x, y)| find(&repr, x.index()) == find(&repr, y.index()));
                let (ri, rj) = (find(&repr, i), find(&repr, j));
                if congruent && ri != rj {
                    repr[ri.max(rj)] = ri.min(rj);
                    changed = true;
                }
            }
        }
    }
    for &(a, b) in nes {
        if find(&repr, a.index()) == find(&repr, b.index()) {
            return EufResult::Unsat;
        }
    }
    // Two distinct interpreted constants in one class is a conflict.
    for i in 0..n {
        for j in (i + 1)..n {
            let (Term::Int(x), Term::Int(y)) = (arena.term(ids[i]), arena.term(ids[j]))
            else {
                continue;
            };
            if x != y && find(&repr, i) == find(&repr, j) {
                return EufResult::Unsat;
            }
        }
    }
    EufResult::Sat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Congruence closure agrees with the naive fixpoint closure on
    /// random (dis)equality sets over the fixed universe.
    #[test]
    fn euf_matches_naive_closure(
        eq_picks in prop::collection::vec((0usize..11, 0usize..11), 0..6),
        ne_picks in prop::collection::vec((0usize..11, 0usize..11), 0..4),
    ) {
        let (arena, terms) = universe();
        let eqs: Vec<(TermId, TermId)> =
            eq_picks.iter().map(|&(i, j)| (terms[i], terms[j])).collect();
        // A term is never disequal to itself by construction choice:
        // skip reflexive picks (they would make every run trivially
        // Unsat).
        let nes: Vec<(TermId, TermId)> = ne_picks
            .iter()
            .filter(|&&(i, j)| i != j)
            .map(|&(i, j)| (terms[i], terms[j]))
            .collect();
        let mut euf = Euf::new(&arena);
        for &(a, b) in &eqs {
            euf.assert_eq(a, b);
        }
        for &(a, b) in &nes {
            euf.assert_ne(a, b);
        }
        let got = euf.check(&arena);
        let want = naive_closure(&arena, &eqs, &nes);
        prop_assert_eq!(got, want, "eqs {:?} nes {:?}", eqs, nes);
    }

    /// Scoped equalities roll back: check-pop-check agrees with the
    /// naive closure of the base assertions alone.
    #[test]
    fn euf_scopes_match_naive_closure(
        base_eqs in prop::collection::vec((0usize..11, 0usize..11), 0..4),
        base_nes in prop::collection::vec((0usize..11, 0usize..11), 0..3),
        scoped_eqs in prop::collection::vec((0usize..11, 0usize..11), 1..4),
    ) {
        let (arena, terms) = universe();
        let eqs: Vec<(TermId, TermId)> =
            base_eqs.iter().map(|&(i, j)| (terms[i], terms[j])).collect();
        let nes: Vec<(TermId, TermId)> = base_nes
            .iter()
            .filter(|&&(i, j)| i != j)
            .map(|&(i, j)| (terms[i], terms[j]))
            .collect();
        let extra: Vec<(TermId, TermId)> =
            scoped_eqs.iter().map(|&(i, j)| (terms[i], terms[j])).collect();
        let mut euf = Euf::new(&arena);
        for &(a, b) in &eqs {
            euf.assert_eq(a, b);
        }
        for &(a, b) in &nes {
            euf.assert_ne(a, b);
        }
        let base_verdict = euf.check(&arena);
        prop_assert_eq!(&base_verdict, &naive_closure(&arena, &eqs, &nes));
        euf.push();
        let mut all = eqs.clone();
        all.extend(extra.iter().copied());
        for &(a, b) in &extra {
            euf.assert_eq(a, b);
        }
        prop_assert_eq!(euf.check(&arena), naive_closure(&arena, &all, &nes));
        euf.pop();
        prop_assert_eq!(euf.check(&arena), base_verdict, "verdict changed after pop");
    }
}

// ---------------------------------------------------------------------
// Verdict certification vs brute force on boxed linear implications.
// ---------------------------------------------------------------------

const IMP_VARS: [&str; 3] = ["x", "y", "z"];

fn imp_env() -> SortEnv {
    let mut env = SortEnv::new();
    for v in IMP_VARS {
        env.bind(Symbol::new(v), Sort::Int);
    }
    env
}

/// A random linear atom `a·x + b·y + c·z + d REL 0`.
fn arb_linear_atom() -> impl Strategy<Value = (Vec<i64>, i64, Rel)> {
    (
        prop::collection::vec(-3i64..=3, IMP_VARS.len()),
        -6i64..=6,
        prop_oneof![Just(Rel::Le), Just(Rel::Lt), Just(Rel::Eq), Just(Rel::Ne)],
    )
}

fn linear_pred(coeffs: &[i64], d: i64, rel: Rel) -> Pred {
    let mut e = Expr::int(d);
    for (c, v) in coeffs.iter().zip(IMP_VARS) {
        e = e.add(Expr::int(*c).mul(Expr::var(v)));
    }
    Pred::Atom(rel, e, Expr::int(0))
}

fn eval_linear(coeffs: &[i64], d: i64, rel: Rel, vals: &[i64; 3]) -> bool {
    let s: i64 = d + coeffs.iter().zip(vals).map(|(c, v)| c * v).sum::<i64>();
    match rel {
        Rel::Le => s <= 0,
        Rel::Lt => s < 0,
        Rel::Eq => s == 0,
        Rel::Ne => s != 0,
        _ => unreachable!(),
    }
}

/// The antecedent boxes every variable into `[-BOUND, BOUND]`, so the
/// implication is decided exactly by integer enumeration.
fn boxed_antecedent(atoms: &[(Vec<i64>, i64, Rel)]) -> Pred {
    let mut conj: Vec<Pred> = atoms.iter().map(|(c, d, r)| linear_pred(c, *d, *r)).collect();
    for v in IMP_VARS {
        conj.push(Pred::le(Expr::int(-BOUND), Expr::var(v)));
        conj.push(Pred::le(Expr::var(v), Expr::int(BOUND)));
    }
    Pred::and(conj)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Under `--certify`, every definite verdict on a boxed linear
    /// implication must survive its own certificate — an `Invalid`
    /// answer's countermodel replays to *true* on the negated
    /// implication (it falsifies `antecedent ⇒ consequent`), a `Valid`
    /// answer's theory cores all replay unsat — and the verdict itself
    /// must agree with exhaustive enumeration. A failed certificate
    /// would surface as an `Unknown` verdict and a nonzero
    /// `certs_failed` counter; both are asserted impossible here.
    #[test]
    fn certified_verdicts_match_brute_force(
        lhs_atoms in prop::collection::vec(arb_linear_atom(), 1..4),
        rhs_atom in arb_linear_atom(),
    ) {
        let obs = dsolve_obs::Obs::new();
        let mut smt = SmtSolver::with_config(SolverConfig {
            certify: true,
            cache: false,
            ..SolverConfig::default()
        });
        smt.set_obs(obs.clone());
        let env = imp_env();
        let lhs = boxed_antecedent(&lhs_atoms);
        let (rc, rd, rr) = &rhs_atom;
        let rhs = linear_pred(rc, *rd, *rr);

        // Exhaustive ground truth over the box.
        let mut expect_valid = true;
        let r = -BOUND..=BOUND;
        'outer: for x in r.clone() {
            for y in r.clone() {
                for z in r.clone() {
                    let vals = [x, y, z];
                    let ante = lhs_atoms
                        .iter()
                        .all(|(c, d, rel)| eval_linear(c, *d, *rel, &vals));
                    if ante && !eval_linear(rc, *rd, *rr, &vals) {
                        expect_valid = false;
                        break 'outer;
                    }
                }
            }
        }

        let verdict = smt.check_valid(&env, &lhs, &rhs);
        match verdict {
            Validity::Valid => prop_assert!(
                expect_valid,
                "certified Valid on refutable `{lhs} => {rhs}`"
            ),
            Validity::Invalid => prop_assert!(
                !expect_valid,
                "certified Invalid on valid `{lhs} => {rhs}`"
            ),
            Validity::Unknown(e) => prop_assert!(
                false,
                "certificate or budget failed on `{lhs} => {rhs}`: {e}"
            ),
        }
        let snap = obs.snapshot(0);
        prop_assert_eq!(snap.certs_failed, 0, "a certificate failed to replay");
        prop_assert!(snap.certs_checked >= 1, "no certificate was checked");
    }
}
