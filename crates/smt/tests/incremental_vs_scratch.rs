//! Differential tests: the incremental (assertion-scope) solving path
//! must agree with a fresh scratch solver on every verdict.
//!
//! Three surfaces are exercised over randomly generated well-sorted
//! predicates (linear arithmetic, booleans, uninterpreted functions,
//! and finite sets):
//!
//! 1. `check_valid_many` vs one scratch `check_valid` per consequent;
//! 2. interleaved `push`/`pop`/`assert`/`check` sequences vs a scratch
//!    `check_sat` of the matching conjunction at every check point;
//! 3. repeated batches on one solver (session reuse + cache warmup).
//!
//! Case counts are deliberately small so `cargo test` stays fast; build
//! with `--features slow-proptest` for a deeper local run.

use dsolve_logic::{parse_pred, FuncSort, Pred, Sort, SortEnv, Symbol};
use dsolve_smt::{SmtResult, SmtSolver, Validity};
use proptest::prelude::*;

#[cfg(feature = "slow-proptest")]
const CASES: u32 = 256;
#[cfg(not(feature = "slow-proptest"))]
const CASES: u32 = 32;

/// Fixed environment: integers, a boolean flag, a unary uninterpreted
/// function, and two set variables.
fn env() -> SortEnv {
    let mut env = SortEnv::new();
    for v in ["x", "y", "z"] {
        env.bind(Symbol::new(v), Sort::Int);
    }
    env.bind(Symbol::new("b"), Sort::Bool);
    env.bind(Symbol::new("s"), Sort::Set);
    env.bind(Symbol::new("t"), Sort::Set);
    env.declare_func(Symbol::new("f"), FuncSort::new(vec![Sort::Int], Sort::Int));
    env
}

/// The atom pool. Every entry parses and is well-sorted under [`env`];
/// together they cover arithmetic, UF congruence, and set reasoning.
const ATOMS: [&str; 16] = [
    "x < y",
    "x <= y",
    "y < z",
    "x = y + 1",
    "x + y <= z",
    "0 <= x",
    "x != z",
    "z <= 3",
    "b",
    "f(x) = f(y)",
    "f(x) <= f(z)",
    "f(z) = y",
    "x in s",
    "s = union(t, single(x))",
    "s = t",
    "y in union(s, t)",
];

fn arb_atom() -> BoxedStrategy<Pred> {
    (0usize..ATOMS.len())
        .prop_map(|i| parse_pred(ATOMS[i]).unwrap())
        .boxed()
}

/// Random predicates: atoms combined by ¬, ∧, ∨, ⇒ up to a small depth.
fn arb_pred() -> BoxedStrategy<Pred> {
    arb_atom().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Pred::not),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Pred::and(vec![p, q])),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| Pred::or(vec![p, q])),
            (inner.clone(), inner).prop_map(|(p, q)| Pred::imp(p, q)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// One batched session over `consequents` must return exactly the
    /// verdicts a fresh scratch solver computes one by one.
    #[test]
    fn batched_verdicts_match_scratch(
        antecedent in arb_pred(),
        consequents in prop::collection::vec(arb_pred(), 1..6),
    ) {
        let env = env();
        let mut batch = SmtSolver::new();
        let got = batch.check_valid_many(&env, &antecedent, &consequents);
        prop_assert_eq!(got.len(), consequents.len());
        for (c, got) in consequents.iter().zip(&got) {
            let mut scratch = SmtSolver::new();
            let want = scratch.check_valid(&env, &antecedent, c);
            prop_assert_eq!(
                got,
                &want,
                "batched disagrees with scratch on `{}` under `{}`",
                c,
                antecedent
            );
        }
    }

    /// Interleaved push/pop/assert/check: at every check point the
    /// incremental verdict must match a scratch `check_sat` of the
    /// conjunction of all live assertions.
    #[test]
    fn scoped_checks_match_scratch(
        ops in prop::collection::vec((0u8..4, arb_pred()), 1..14),
    ) {
        let env = env();
        let mut inc = SmtSolver::new();
        inc.start_incremental(&env);
        // Mirror of the solver's assertion stack: one frame per scope.
        let mut frames: Vec<Vec<Pred>> = vec![Vec::new()];
        let mut checks = 0u32;
        for (op, p) in ops {
            match op {
                0 => {
                    inc.push();
                    frames.push(Vec::new());
                }
                1 => {
                    if frames.len() > 1 {
                        inc.pop();
                        frames.pop();
                    }
                }
                2 => {
                    inc.assert_pred(&p);
                    frames.last_mut().unwrap().push(p);
                }
                _ => {
                    let conj =
                        Pred::and(frames.iter().flatten().cloned().collect());
                    let want = SmtSolver::new().check_sat(&env, &conj);
                    let got = inc.check_incremental();
                    checks += 1;
                    match (&got, &want) {
                        (SmtResult::Sat, SmtResult::Sat)
                        | (SmtResult::Unsat, SmtResult::Unsat) => {}
                        other => prop_assert!(
                            false,
                            "incremental {:?} vs scratch {:?} on `{}`",
                            other.0,
                            other.1,
                            conj
                        ),
                    }
                }
            }
        }
        // Always end with one check so every generated sequence tests
        // something even when no explicit check op was drawn.
        if checks == 0 {
            let conj = Pred::and(frames.iter().flatten().cloned().collect());
            let want = SmtSolver::new().check_sat(&env, &conj);
            let got = inc.check_incremental();
            prop_assert_eq!(
                std::mem::discriminant(&got),
                std::mem::discriminant(&want),
                "incremental {:?} vs scratch {:?} on `{}`",
                got,
                want,
                conj
            );
        }
        inc.end_incremental();
    }

    /// Session reuse: two different batches issued on the *same* solver
    /// (second session, warm cache) still agree with scratch.
    #[test]
    fn repeated_batches_stay_correct(
        a1 in arb_pred(),
        a2 in arb_pred(),
        consequents in prop::collection::vec(arb_pred(), 1..4),
    ) {
        let env = env();
        let mut inc = SmtSolver::new();
        let _ = inc.check_valid_many(&env, &a1, &consequents);
        let got = inc.check_valid_many(&env, &a2, &consequents);
        for (c, got) in consequents.iter().zip(&got) {
            let mut scratch = SmtSolver::new();
            let want = scratch.check_valid(&env, &a2, c);
            prop_assert_eq!(
                got,
                &want,
                "warm solver disagrees with scratch on `{}` under `{}`",
                c,
                a2
            );
        }
    }
}

/// A fixed regression sequence covering the subtle pop interactions:
/// lemma retention across pops and re-assertion of base facts encoded
/// while a scope was open.
#[test]
fn pop_reassert_sequence_matches_scratch() {
    let env = env();
    let mut inc = SmtSolver::new();
    inc.start_incremental(&env);
    inc.assert_pred(&parse_pred("x < y").unwrap());
    assert_eq!(inc.check_incremental(), SmtResult::Sat);
    inc.push();
    inc.assert_pred(&parse_pred("y < x").unwrap());
    assert_eq!(inc.check_incremental(), SmtResult::Unsat);
    inc.pop();
    // The base fact must still be in force after the pop.
    inc.push();
    inc.assert_pred(&parse_pred("y <= x").unwrap());
    assert_eq!(inc.check_incremental(), SmtResult::Unsat);
    inc.pop();
    // Set facts across a scope boundary: the ACI1 identity is refuted
    // inside the scope (its saturation lemmas are retained) and the
    // base conjunction is satisfiable again after the pop.
    inc.assert_pred(&parse_pred("s = union(t, single(x))").unwrap());
    inc.push();
    inc.assert_pred(&parse_pred("not (s = union(single(x), t))").unwrap());
    assert_eq!(inc.check_incremental(), SmtResult::Unsat);
    inc.pop();
    assert_eq!(inc.check_incremental(), SmtResult::Sat);
    inc.end_incremental();

    let mut batch = SmtSolver::new();
    let ant = parse_pred("x < y && s = union(t, empty)").unwrap();
    let cons: Vec<Pred> = ["s = t", "x <= y", "y <= x", "t = s"]
        .iter()
        .map(|s| parse_pred(s).unwrap())
        .collect();
    assert_eq!(
        batch.check_valid_many(&env, &ant, &cons),
        vec![
            Validity::Valid,
            Validity::Valid,
            Validity::Invalid,
            Validity::Valid
        ]
    );
}
