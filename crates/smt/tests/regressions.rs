//! Regression and edge-case tests for the SMT solver, collected from
//! the verification-condition shapes the liquid engine generates.

use dsolve_logic::{parse_pred, FuncSort, Sort, SortEnv, Symbol};
use dsolve_smt::{SmtSolver, SolverConfig};

fn env() -> SortEnv {
    let mut env = SortEnv::new();
    for v in [
        "x", "y", "z", "i", "j", "k", "n", "w", "a", "b", "ka", "kb", "ra", "rb", "px",
    ] {
        env.bind(Symbol::new(v), Sort::Int);
    }
    for m in ["m", "mp", "rank", "parent0", "parent1", "parent2"] {
        env.bind(Symbol::new(m), Sort::Map);
    }
    for l in ["xs", "ys", "zs"] {
        env.bind(Symbol::new(l), Sort::Obj(Symbol::new("list")));
    }
    env.declare_func(
        Symbol::new("elts"),
        FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Set),
    );
    env.declare_func(
        Symbol::new("len"),
        FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Int),
    );
    env
}

fn valid(lhs: &str, rhs: &str) -> bool {
    let mut smt = SmtSolver::new();
    smt.is_valid(&env(), &parse_pred(lhs).unwrap(), &parse_pred(rhs).unwrap())
}

#[test]
fn union_find_rank_chain() {
    // The path-compression obligation: x's root is strictly above x.
    assert!(valid(
        "px = Sel(parent0, x) && px != x \
         && (x = px || Sel(rank, x) < Sel(rank, px)) \
         && Sel(rank, px) <= Sel(rank, ra)",
        "Sel(rank, x) < Sel(rank, ra)"
    ));
}

#[test]
fn union_bump_case() {
    // Bumping a root's rank preserves strict ordering for its children.
    assert!(valid(
        "Sel(rank, a) < Sel(rank, ra) && ka = Sel(rank, ra)",
        "Sel(Upd(rank, ra, ka + 1), a) < Sel(Upd(rank, ra, ka + 1), ra) || a = ra"
    ));
}

#[test]
fn malloc_bit_preservation() {
    // Setting p's bit does not disturb other free addresses.
    assert!(valid(
        "Sel(m, a) = 0 && Sel(m, b) = 1 && a != b",
        "Sel(Upd(m, b, 0), a) = 0"
    ));
    // An address with bit 0 differs from every address with bit 1.
    assert!(valid("Sel(m, a) = 0 && Sel(m, b) = 1", "a != b"));
}

#[test]
fn nested_updates_read_through() {
    assert!(valid(
        "mp = Upd(Upd(m, i, 1), j, 2) && k != i && k != j",
        "Sel(mp, k) = Sel(m, k)"
    ));
    assert!(valid("mp = Upd(Upd(m, i, 1), i, 2)", "Sel(mp, i) = 2"));
}

#[test]
fn set_chains_with_multiple_rewrites() {
    // The mergesort Elts chain: two hypothesis rewrites on each side.
    assert!(valid(
        "elts(zs) = union(single(x), elts(xs)) \
         && elts(ys) = union(single(x), elts(xs))",
        "elts(zs) = elts(ys)"
    ));
}

#[test]
fn singleton_disjointness() {
    assert!(valid("elts(xs) = single(x)", "elts(xs) != empty"));
    assert!(valid(
        "elts(xs) = union(single(x), elts(ys)) && elts(zs) = empty",
        "elts(xs) != elts(zs)"
    ));
}

#[test]
fn singleton_injectivity() {
    assert!(valid("single(x) = single(y)", "x = y"));
}

#[test]
fn ite_both_branches() {
    assert!(valid(
        "z = (if x < y then y else x)",
        "z >= x && z >= y"
    ));
    assert!(!valid("z = (if x < y then y else x)", "z > x"));
}

#[test]
fn boolean_iff_structure() {
    assert!(valid("x < y <=> y > x", "true"));
    assert!(valid("(x < y <=> i < j) && x < y", "i < j"));
}

#[test]
fn tightening_chains() {
    // Three strict steps force a gap of three.
    assert!(valid("x < y && y < z && z < w", "x + 3 <= w"));
    assert!(!valid("x < y && y < z && z < w", "x + 4 <= w"));
}

#[test]
fn mixed_euf_and_arith() {
    assert!(valid(
        "len(xs) = n && len(ys) = n + 1 && xs = zs",
        "len(ys) = len(zs) + 1"
    ));
}

#[test]
fn negated_equality_via_bounds() {
    assert!(valid("x != y && x <= y", "x < y"));
    assert!(valid("x != 0 && 0 <= x", "1 <= x"));
}

#[test]
fn array_axioms_toggle() {
    // With the axioms off, read-over-write facts are unavailable.
    let mut off = SmtSolver::with_config(SolverConfig {
        array_axioms: false,
        ..SolverConfig::default()
    });
    let e = env();
    let lhs = parse_pred("mp = Upd(m, k, 1)").unwrap();
    let rhs = parse_pred("Sel(mp, k) = 1").unwrap();
    assert!(!off.is_valid(&e, &lhs, &rhs));
    let mut on = SmtSolver::new();
    assert!(on.is_valid(&e, &lhs, &rhs));
}

#[test]
fn cache_toggle_same_answers() {
    let cases = [
        ("x < y", "x <= y", true),
        ("x <= y", "x < y", false),
        ("single(x) = single(y)", "x = y", true),
    ];
    let mut cached = SmtSolver::new();
    let mut uncached = SmtSolver::with_config(SolverConfig {
        cache: false,
        ..SolverConfig::default()
    });
    let e = env();
    for (l, r, want) in cases {
        let lp = parse_pred(l).unwrap();
        let rp = parse_pred(r).unwrap();
        assert_eq!(cached.is_valid(&e, &lp, &rp), want);
        assert_eq!(uncached.is_valid(&e, &lp, &rp), want);
        // And again, exercising the cache-hit path.
        assert_eq!(cached.is_valid(&e, &lp, &rp), want);
    }
    assert!(cached.stats.cache_hits >= 3);
    assert_eq!(uncached.stats.cache_hits, 0);
}

#[test]
fn deep_guard_nesting() {
    assert!(valid(
        "(a = 1 => (b = 2 => (i = 3 => j = 4))) && a = 1 && b = 2 && i = 3",
        "j = 4"
    ));
}

#[test]
fn multiplication_by_constants_is_linear() {
    assert!(valid("y = 3 * x && x > 0", "y >= 3"));
    assert!(valid("y = 2 * x", "y != 1 || x = 1 - x"));
}

#[test]
fn uninterpreted_products_still_congruent() {
    assert!(valid("x = y", "x * z = y * z"));
    assert!(!valid("x * z = y * z", "x = y"));
}

#[test]
fn large_conjunction_stays_fast() {
    // 40 chained bounds — exercises the simplex at a size the verifier
    // routinely produces; must complete essentially instantly.
    let mut env = SortEnv::new();
    let mut parts = Vec::new();
    for i in 0..40 {
        env.bind(Symbol::new(&format!("v{i}")), Sort::Int);
        if i > 0 {
            parts.push(format!("v{} < v{}", i - 1, i));
        }
    }
    let lhs = parse_pred(&parts.join(" && ")).unwrap();
    let rhs = parse_pred("v0 + 39 <= v39").unwrap();
    let mut smt = SmtSolver::new();
    let t0 = std::time::Instant::now();
    assert!(smt.is_valid(&env, &lhs, &rhs));
    assert!(t0.elapsed().as_secs() < 5, "took {:?}", t0.elapsed());
}
