//! # dsolve
//!
//! The DSOLVE driver (§6): verifies a NanoML module (`.ml`) against a
//! property specification (`.mlq` — measures, named recursive
//! refinements, `val` types) using a set of logical qualifiers
//! (`.quals`), and reports Figure-10-style rows (LOC, annotations, time,
//! properties).
//!
//! ```
//! use dsolve::Job;
//!
//! let job = Job::from_sources(
//!     "demo",
//!     "let abs x = if x < 0 then 0 - x else x\nlet ok = assert (abs (0 - 3) >= 0)",
//!     "",
//!     "qualif NonNeg : 0 <= VV",
//! );
//! let result = job.run().unwrap();
//! assert!(result.is_safe());
//! ```

#![warn(missing_docs)]

mod driver;
pub mod fleet;
mod report;
mod spec;

pub use driver::{count_loc, Job, JobError, JobResult};
pub use fleet::{run_fleet, run_program, FleetOptions, FleetSummary, FleetVerdict, Matrix};
pub use report::{Row, Status, Table};
pub use spec::{map_witness, parse_mlq, parse_quals, scrape_qualifiers, RhoDef, SpecError, SpecFile};
