//! The `.mlq` specification format.
//!
//! A specification file contains, in any order:
//!
//! * **measures** (§4.1):
//!
//!   ```text
//!   measure len : list -> int =
//!   | Nil -> 0
//!   | Cons (x, xs) -> 1 + len(xs)
//!   ```
//!
//! * **named recursive refinements** (ρ-matrices, §4):
//!
//!   ```text
//!   rho Sorted on list =
//!   | Cons (h, t) -> t : [ Cons (h2, t2) -> { h2 : h <= VV } ]
//!   ```
//!
//!   Each constructor clause lists items: `field : { pred }` is a *top
//!   matrix* entry for that field (earlier binders may appear and are
//!   re-interpreted at every unfolding level, which is how e.g. the AVL
//!   balance invariant propagates), and `field : [ clauses ]` gives the
//!   *inner matrix* at a recursive field (outer binders refer to the
//!   enclosing product).
//!
//! * **type specifications**:
//!
//!   ```text
//!   val insertsort : xs : 'a list -> {VV : 'a list @Sorted | elts(VV) = elts(xs)}
//!   ```
//!
//! * **qualifiers** (also the whole content of `.quals` files):
//!
//!   ```text
//!   qualif Ub : _ <= VV
//!   ```

use dsolve_liquid::{
    field_name, up_field_name, witness_symbol, DataRType, Measure, MeasureCase, RScheme,
    RType, RVarDecl, Refinement, Rho, Spec,
};
use dsolve_logic::{Pred, Qualifier, Sort, Subst, Symbol};
use dsolve_nanoml::{DataEnv, MlType};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed `.mlq` file.
#[derive(Default)]
pub struct SpecFile {
    /// Measure definitions.
    pub measures: Vec<Measure>,
    /// Named ρ definitions, usable as `@Name` in `val` types.
    pub rhos: HashMap<String, RhoDef>,
    /// Type specifications.
    pub specs: Vec<Spec>,
    /// Qualifiers declared inline (scraped into `Q`).
    pub qualifiers: Vec<Qualifier>,
}

/// A named recursive refinement.
#[derive(Clone, Debug)]
pub struct RhoDef {
    /// The datatype it refines.
    pub datatype: Symbol,
    /// Top-matrix entries.
    pub rho: Rho,
    /// Inner matrices per recursive position.
    pub inner: BTreeMap<(usize, usize), Rho>,
}

/// A specification parse error.
#[derive(Clone, Debug)]
pub struct SpecError {
    /// Explanation.
    pub msg: String,
    /// Line number (1-based).
    pub line: u32,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for SpecError {}

/// Parses a `.quals` file: `qualif Name : pred` lines (blank lines and
/// `--` comments ignored).
pub fn parse_quals(src: &str) -> Result<Vec<Qualifier>, SpecError> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        let rest = line.strip_prefix("qualif").ok_or_else(|| SpecError {
            msg: format!("expected `qualif Name : pred`, found `{line}`"),
            line: i as u32 + 1,
        })?;
        let (name, pred) = rest.split_once(':').ok_or_else(|| SpecError {
            msg: "missing `:` in qualifier".into(),
            line: i as u32 + 1,
        })?;
        let p = dsolve_logic::parse_pred(pred.trim()).map_err(|e| SpecError {
            msg: e.to_string(),
            line: i as u32 + 1,
        })?;
        // In qualifiers, `KEY` denotes the key a map value is stored
        // under. It appears as the builtin schemes' witness at
        // instantiation sites and as the map type's canonical key binder
        // in structural templates — emit both variants.
        if p.free_vars().contains(&Symbol::new("KEY")) {
            let wit = p.subst(Symbol::new("KEY"), &dsolve_logic::Expr::Var(map_witness()));
            let canon = p.subst(
                Symbol::new("KEY"),
                &dsolve_logic::Expr::Var(dsolve_liquid::map_key_binder()),
            );
            out.push(Qualifier::new(format!("{}#wit", name.trim()), wit));
            out.push(Qualifier::new(format!("{}#key", name.trim()), canon));
        } else {
            out.push(Qualifier::new(name.trim(), p));
        }
    }
    Ok(out)
}

/// Parses an `.mlq` specification file against the program's datatypes.
pub fn parse_mlq(src: &str, data: &DataEnv) -> Result<SpecFile, SpecError> {
    let mut out = SpecFile::default();
    let mut parser = SpecParser {
        lines: src.lines().map(str::trim_end).collect(),
        ix: 0,
        data,
    };
    while let Some(line) = parser.peek_nonempty() {
        if line.starts_with("measure ") {
            let m = parser.measure()?;
            out.measures.push(m);
        } else if line.starts_with("rho ") {
            let (name, def) = parser.rho(&out.rhos)?;
            out.rhos.insert(name, def);
        } else if line.starts_with("val ") {
            let s = parser.val(&out.rhos)?;
            out.specs.push(s);
        } else if line.starts_with("qualif ") {
            let line_no = parser.ix as u32 + 1;
            let text = parser.next_line().expect("peeked");
            let rest = &text["qualif".len()..];
            let (name, pred) = rest.split_once(':').ok_or_else(|| SpecError {
                msg: "missing `:` in qualifier".into(),
                line: line_no,
            })?;
            let p = dsolve_logic::parse_pred(pred.trim()).map_err(|e| SpecError {
                msg: e.to_string(),
                line: line_no,
            })?;
            if p.free_vars().contains(&Symbol::new("KEY")) {
                let wit =
                    p.subst(Symbol::new("KEY"), &dsolve_logic::Expr::Var(map_witness()));
                let canon = p.subst(
                    Symbol::new("KEY"),
                    &dsolve_logic::Expr::Var(dsolve_liquid::map_key_binder()),
                );
                out.qualifiers
                    .push(Qualifier::new(format!("{}#wit", name.trim()), wit));
                out.qualifiers
                    .push(Qualifier::new(format!("{}#key", name.trim()), canon));
            } else {
                out.qualifiers.push(Qualifier::new(name.trim(), p));
            }
        } else {
            return Err(SpecError {
                msg: format!("expected `measure`, `rho`, `val`, or `qualif`, found `{line}`"),
                line: parser.ix as u32 + 1,
            });
        }
    }
    Ok(out)
}

struct SpecParser<'a> {
    lines: Vec<&'a str>,
    ix: usize,
    data: &'a DataEnv,
}

impl SpecParser<'_> {
    fn err(&self, msg: impl Into<String>) -> SpecError {
        SpecError {
            msg: msg.into(),
            line: self.ix as u32,
        }
    }

    fn peek_nonempty(&mut self) -> Option<&str> {
        while self.ix < self.lines.len() {
            let l = self.lines[self.ix].trim();
            if l.is_empty() || l.starts_with("--") {
                self.ix += 1;
            } else {
                return Some(self.lines[self.ix].trim());
            }
        }
        None
    }

    fn next_line(&mut self) -> Option<&str> {
        self.peek_nonempty()?;
        let l = self.lines[self.ix].trim();
        self.ix += 1;
        Some(l)
    }

    /// Collects a block: the current line's tail after `=` plus following
    /// lines up to the next top-level keyword.
    fn block(&mut self, first: &str) -> String {
        let mut out = String::from(first);
        while let Some(l) = self.peek_nonempty() {
            if l.starts_with("measure ")
                || l.starts_with("rho ")
                || l.starts_with("val ")
                || l.starts_with("qualif ")
            {
                break;
            }
            out.push(' ');
            out.push_str(l);
            self.ix += 1;
        }
        out
    }

    // measure name : tycon -> sort = | C (x, y) -> expr | ...
    fn measure(&mut self) -> Result<Measure, SpecError> {
        let line = self.next_line().expect("peeked").to_owned();
        let rest = &line["measure".len()..];
        let (head, eq_tail) = rest.split_once('=').ok_or_else(|| self.err("missing `=`"))?;
        let (name, sig) = head.split_once(':').ok_or_else(|| self.err("missing `:`"))?;
        let name = Symbol::new(name.trim());
        let (dom, cod) = sig.split_once("->").ok_or_else(|| self.err("missing `->`"))?;
        // Domain: the datatype is the final word (e.g. `'a list`).
        let datatype = Symbol::new(
            dom.split_whitespace()
                .last()
                .ok_or_else(|| self.err("missing datatype"))?,
        );
        let sort = match cod.trim() {
            "int" => Sort::Int,
            "bool" => Sort::Bool,
            "set" => Sort::Set,
            other => return Err(self.err(format!("unknown measure sort `{other}`"))),
        };
        let body = self.block(eq_tail);
        let mut cases = HashMap::new();
        for clause in split_cases(&body).into_iter().map(str::trim).filter(|s| !s.is_empty()) {
            let (pat, expr) = clause
                .split_once("->")
                .ok_or_else(|| self.err("missing `->` in measure case"))?;
            let (ctor, binders) = parse_ctor_pattern(pat).map_err(|m| self.err(m))?;
            let e = dsolve_logic::parse_expr(expr.trim())
                .map_err(|e| self.err(e.to_string()))?;
            cases.insert(
                ctor,
                MeasureCase {
                    binders,
                    body: e,
                },
            );
        }
        Ok(Measure {
            name,
            datatype,
            sort,
            cases,
        })
    }

    // rho Name on tycon = | C (x, y) -> item, item | ...
    fn rho(
        &mut self,
        _defined: &HashMap<String, RhoDef>,
    ) -> Result<(String, RhoDef), SpecError> {
        let line = self.next_line().expect("peeked").to_owned();
        let rest = &line["rho".len()..];
        let (head, eq_tail) = rest.split_once('=').ok_or_else(|| self.err("missing `=`"))?;
        let (name, on_ty) = head.split_once(" on ").ok_or_else(|| self.err("missing `on`"))?;
        let name = name.trim().to_owned();
        let datatype = Symbol::new(on_ty.trim());
        let decl = self
            .data
            .decl(datatype)
            .ok_or_else(|| self.err(format!("unknown datatype `{datatype}`")))?
            .clone();
        let body = self.block(eq_tail);
        let mut rho = Rho::top();
        let mut inner: BTreeMap<(usize, usize), Rho> = BTreeMap::new();
        for clause in split_cases(&body) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (pat, items) = clause
                .split_once("->")
                .ok_or_else(|| self.err("missing `->` in rho clause"))?;
            let (ctor, binders) = parse_ctor_pattern(pat).map_err(|m| self.err(m))?;
            let cix = decl
                .ctor_names
                .iter()
                .position(|c| *c == ctor)
                .ok_or_else(|| self.err(format!("unknown constructor `{ctor}`")))?;
            if binders.len() != decl.ctor_fields[cix].len() {
                return Err(self.err(format!(
                    "constructor `{ctor}` has {} fields, clause binds {}",
                    decl.ctor_fields[cix].len(),
                    binders.len()
                )));
            }
            // Outer binder substitutions.
            let mut to_canon = Subst::new();
            let mut to_up = Subst::new();
            for (k, b) in binders.iter().enumerate() {
                to_canon = to_canon.then(
                    *b,
                    dsolve_logic::Expr::Var(field_name(datatype, ctor, k)),
                );
                to_up = to_up.then(
                    *b,
                    dsolve_logic::Expr::Var(up_field_name(datatype, ctor, k)),
                );
            }
            for item in split_top(items, ',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let (fname, spec) = item
                    .split_once(':')
                    .ok_or_else(|| self.err("missing `:` in rho item"))?;
                let fname = fname.trim();
                let fix = binders
                    .iter()
                    .position(|b| b.as_str() == fname)
                    .ok_or_else(|| self.err(format!("unknown field binder `{fname}`")))?;
                let spec = spec.trim();
                if let Some(pred_src) = spec.strip_prefix('{').and_then(|s| s.strip_suffix('}'))
                {
                    // Top matrix entry: binders → canonical names.
                    let p = dsolve_logic::parse_pred(pred_src.trim())
                        .map_err(|e| self.err(e.to_string()))?;
                    let p = to_canon.apply_pred(&p);
                    let merged = rho.entry(cix, fix).and(&Refinement::pred(p));
                    rho.set(cix, fix, merged);
                } else if let Some(inner_src) =
                    spec.strip_prefix('[').and_then(|s| s.strip_suffix(']'))
                {
                    // Inner matrix: outer binders → #up names.
                    let m = self.inner_matrix(inner_src, &decl, datatype, &to_up)?;
                    let merged = inner
                        .get(&(cix, fix))
                        .cloned()
                        .unwrap_or_default()
                        .compose(&m);
                    inner.insert((cix, fix), merged);
                } else {
                    return Err(self.err(format!(
                        "rho item must be `field : {{pred}}` or `field : [clauses]`, found `{item}`"
                    )));
                }
            }
        }
        Ok((
            name,
            RhoDef {
                datatype,
                rho,
                inner,
            },
        ))
    }

    fn inner_matrix(
        &self,
        src: &str,
        decl: &dsolve_nanoml::DeclSig,
        datatype: Symbol,
        to_up: &Subst,
    ) -> Result<Rho, SpecError> {
        let mut m = Rho::top();
        for clause in split_cases(src) {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (pat, items) = clause
                .split_once("->")
                .ok_or_else(|| self.err("missing `->` in inner clause"))?;
            let (ctor, binders) = parse_ctor_pattern(pat).map_err(|msg| self.err(msg))?;
            let cix = decl
                .ctor_names
                .iter()
                .position(|c| *c == ctor)
                .ok_or_else(|| self.err(format!("unknown constructor `{ctor}`")))?;
            let mut to_canon = Subst::new();
            for (k, b) in binders.iter().enumerate() {
                to_canon = to_canon.then(
                    *b,
                    dsolve_logic::Expr::Var(field_name(datatype, ctor, k)),
                );
            }
            for item in split_top(items, ',') {
                let item = item.trim();
                if item.is_empty() {
                    continue;
                }
                let (fname, spec) = item
                    .split_once(':')
                    .ok_or_else(|| self.err("missing `:` in inner item"))?;
                let fix = binders
                    .iter()
                    .position(|b| b.as_str() == fname.trim())
                    .ok_or_else(|| {
                        self.err(format!("unknown field binder `{}`", fname.trim()))
                    })?;
                let pred_src = spec
                    .trim()
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or_else(|| self.err("inner item must be `field : {pred}`"))?;
                let p = dsolve_logic::parse_pred(pred_src.trim())
                    .map_err(|e| self.err(e.to_string()))?;
                let p = to_up.apply_pred(&to_canon.apply_pred(&p));
                let merged = m.entry(cix, fix).and(&Refinement::pred(p));
                m.set(cix, fix, merged);
            }
        }
        Ok(m)
    }

    // val name : rtype
    fn val(&mut self, rhos: &HashMap<String, RhoDef>) -> Result<Spec, SpecError> {
        let line = self.next_line().expect("peeked").to_owned();
        let rest = &line["val".len()..];
        let (name, ty) = rest.split_once(':').ok_or_else(|| self.err("missing `:`"))?;
        let body = self.block(ty);
        let mut tp = TypeParser {
            src: body.as_bytes(),
            pos: 0,
            depth: 0,
            tyvars: HashMap::new(),
            rhos,
            data: self.data,
        };
        let ty = tp.rtype().map_err(|m| self.err(m))?;
        tp.skip_ws();
        if tp.pos < tp.src.len() {
            return Err(self.err(format!(
                "trailing input in type: `{}`",
                String::from_utf8_lossy(&tp.src[tp.pos..])
            )));
        }
        let vars = (0..tp.tyvars.len() as u32)
            .map(|v| RVarDecl {
                var: v,
                witness: None,
            })
            .collect();
        Ok(Spec {
            name: Symbol::new(name.trim()),
            scheme: RScheme { vars, ty },
        })
    }
}

/// Splits case clauses on `|` at bracket depth zero, treating `||` as
/// the disjunction operator (never a clause separator) — measure and rho
/// bodies may contain arbitrary predicates.
fn split_cases(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'[' | b'(' | b'{' => depth += 1,
            b']' | b')' | b'}' => depth -= 1,
            b'|' if depth == 0 => {
                if i + 1 < b.len() && b[i + 1] == b'|' {
                    i += 1;
                } else {
                    out.push(&s[start..i]);
                    start = i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out.push(&s[start..]);
    out
}

/// Splits on `sep` at nesting depth zero (w.r.t. `[({` brackets).
fn split_top(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '(' | '{' => depth += 1,
            ']' | ')' | '}' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parses `C` or `C (x, y, ...)`.
fn parse_ctor_pattern(s: &str) -> Result<(Symbol, Vec<Symbol>), String> {
    let s = s.trim();
    let (name, rest) = match s.find('(') {
        None => (s, ""),
        Some(p) => (
            s[..p].trim(),
            s[p + 1..]
                .strip_suffix(')')
                .ok_or_else(|| format!("missing `)` in pattern `{s}`"))?,
        ),
    };
    if name.is_empty() || !name.starts_with(|c: char| c.is_ascii_uppercase()) {
        return Err(format!("expected constructor, found `{name}`"));
    }
    let binders = rest
        .split(',')
        .map(str::trim)
        .filter(|b| !b.is_empty())
        .map(Symbol::new)
        .collect();
    Ok((Symbol::new(name), binders))
}

/// Maximum type nesting depth in `val` signatures. A hostile
/// `((((…`/`{VV : {VV : …` would otherwise overflow the stack, which
/// aborts the process and cannot be isolated by `catch_unwind`.
const MAX_TYPE_DEPTH: usize = 256;

/// A refined-type parser for `val` specifications.
struct TypeParser<'a> {
    src: &'a [u8],
    pos: usize,
    depth: usize,
    tyvars: HashMap<String, u32>,
    rhos: &'a HashMap<String, RhoDef>,
    data: &'a DataEnv,
}

impl TypeParser<'_> {
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_TYPE_DEPTH {
            Err(format!(
                "type nesting exceeds the depth limit ({MAX_TYPE_DEPTH})"
            ))
        } else {
            Ok(())
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            // Word tokens must not be prefixes of identifiers.
            if s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
                let after = self.src.get(self.pos + s.len()).copied();
                if let Some(c) = after {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        return false;
                    }
                }
            }
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        let mut p = self.pos;
        if p < self.src.len() && (self.src[p].is_ascii_alphabetic() || self.src[p] == b'_') {
            p += 1;
            while p < self.src.len()
                && (self.src[p].is_ascii_alphanumeric() || self.src[p] == b'_')
            {
                p += 1;
            }
            self.pos = p;
            Some(String::from_utf8_lossy(&self.src[start..p]).into_owned())
        } else {
            None
        }
    }

    fn tyvar_id(&mut self, name: &str) -> u32 {
        let next = self.tyvars.len() as u32;
        *self.tyvars.entry(name.to_owned()).or_insert(next)
    }

    /// rtype := tuple_ty ('->' rtype)? — a single named part followed by
    /// `->` becomes a dependent function binder; named parts inside a
    /// tuple name the components (later refinements may mention them).
    fn rtype(&mut self) -> Result<RType, String> {
        self.descend()?;
        let r = self.rtype_inner();
        self.depth -= 1;
        r
    }

    fn rtype_inner(&mut self) -> Result<RType, String> {
        let (binder, lhs) = self.tuple_ty()?;
        if self.eat("->") {
            let rhs = self.rtype()?;
            let x = binder.unwrap_or_else(|| Symbol::fresh("arg"));
            Ok(RType::Fun(x, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    /// tuple_ty := part ('*' part)* where part := [ident ':'] app_ty.
    /// Returns the first part's name when the result is not a tuple (so
    /// `rtype` can turn it into a function binder).
    fn tuple_ty(&mut self) -> Result<(Option<Symbol>, RType), String> {
        let first = self.tuple_part()?;
        if self.peek() == Some(b'*') {
            let mut parts = vec![first];
            while self.eat("*") {
                parts.push(self.tuple_part()?);
            }
            Ok((
                None,
                RType::Tuple(
                    parts
                        .into_iter()
                        .map(|(n, t)| (n.unwrap_or_else(|| Symbol::fresh("fld")), t))
                        .collect(),
                ),
            ))
        } else {
            Ok(first)
        }
    }

    fn tuple_part(&mut self) -> Result<(Option<Symbol>, RType), String> {
        let save = self.pos;
        if let Some(id) = self.ident() {
            if self.eat(":") {
                let t = self.app_ty()?;
                return Ok((Some(Symbol::new(&id)), t));
            }
            self.pos = save;
        }
        Ok((None, self.app_ty()?))
    }

    /// app_ty := atom (tycon | '@' Rho)*
    fn app_ty(&mut self) -> Result<RType, String> {
        let mut args = self.atom()?;
        loop {
            self.skip_ws();
            if self.eat("@") {
                let name = self.ident().ok_or("expected rho name after `@`")?;
                let def = self
                    .rhos
                    .get(&name)
                    .ok_or_else(|| format!("unknown rho `{name}`"))?;
                let [t] = &mut args[..] else {
                    return Err("`@` must follow a complete type".into());
                };
                let RType::Data(d) = t else {
                    return Err(format!("`@{name}` applies to a datatype"));
                };
                if d.name != def.datatype {
                    return Err(format!(
                        "rho `{name}` is for `{}`, applied to `{}`",
                        def.datatype, d.name
                    ));
                }
                d.rho = d.rho.compose(&def.rho);
                for (k, m) in &def.inner {
                    let merged = d.inner.get(k).cloned().unwrap_or_default().compose(m);
                    d.inner.insert(*k, merged);
                }
                continue;
            }
            let save = self.pos;
            let Some(id) = self.ident() else { break };
            match id.as_str() {
                "int" | "bool" | "unit" => {
                    self.pos = save;
                    break;
                }
                // Uniform element refinement: conjoin a predicate onto
                // every parameter-positioned field of every constructor —
                // all parameters, or just the named one (`elems 'k {…}`).
                "elems" => {
                    let mut only: Option<u32> = None;
                    self.skip_ws();
                    if self.peek() == Some(b'\'') {
                        self.pos += 1;
                        let name = self.ident().ok_or("expected type variable")?;
                        only = Some(self.tyvar_id(&name));
                    }
                    if !self.eat("{") {
                        return Err("expected `{` after `elems`".into());
                    }
                    let start = self.pos;
                    let mut depth = 1;
                    while self.pos < self.src.len() && depth > 0 {
                        match self.src[self.pos] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        if depth > 0 {
                            self.pos += 1;
                        }
                    }
                    if depth != 0 {
                        return Err("unterminated `elems` refinement".into());
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]);
                    self.pos += 1;
                    let p = parse_spec_pred(text.trim())?;
                    let [t] = &mut args[..] else {
                        return Err("`elems` must follow a complete type".into());
                    };
                    let RType::Data(d) = t else {
                        return Err("`elems` applies to a datatype".into());
                    };
                    let decl = self
                        .data
                        .decl(d.name)
                        .ok_or_else(|| format!("unknown datatype `{}`", d.name))?;
                    // Positions are resolved against the datatype's own
                    // parameter indices via the applied argument list.
                    let param_of = |j: usize| -> Option<u32> {
                        d.targs.get(j).and_then(|t| match t {
                            RType::TyVar(v, _, _) => Some(*v),
                            _ => None,
                        })
                    };
                    for (c, fields) in decl.ctor_fields.iter().enumerate() {
                        for (j, fshape) in fields.iter().enumerate() {
                            let MlType::Var(i) = fshape else { continue };
                            if let Some(want) = only {
                                if param_of(*i as usize) != Some(want) {
                                    continue;
                                }
                            }
                            let merged =
                                d.rho.entry(c, j).and(&Refinement::pred(p.clone()));
                            d.rho.set(c, j, merged);
                        }
                    }
                    continue;
                }
                tycon => {
                    let sym = Symbol::new(tycon);
                    if self.data.decl(sym).is_none() {
                        self.pos = save;
                        break;
                    }
                    let t = RType::Data(DataRType {
                        name: sym,
                        targs: std::mem::take(&mut args),
                        rho: Rho::top(),
                        inner: BTreeMap::new(),
                        refinement: Refinement::top(),
                    });
                    args = vec![t];
                }
            }
        }
        match args.len() {
            1 => Ok(args.pop().expect("len checked")),
            n => Err(format!("type group of {n} must be applied to a constructor")),
        }
    }

    fn atom(&mut self) -> Result<Vec<RType>, String> {
        self.descend()?;
        let r = self.atom_inner();
        self.depth -= 1;
        r
    }

    fn atom_inner(&mut self) -> Result<Vec<RType>, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let name = self.ident().ok_or("expected type variable name")?;
                let v = self.tyvar_id(&name);
                Ok(vec![RType::TyVar(v, Subst::new(), Refinement::top())])
            }
            Some(b'{') => {
                self.pos += 1;
                // {VV : rtype | pred} or {VV : rtype}
                let vv = self.ident().ok_or("expected value-variable name")?;
                if vv != "VV" {
                    return Err(format!("value variable must be `VV`, found `{vv}`"));
                }
                if !self.eat(":") {
                    return Err("expected `:` in refinement".into());
                }
                let inner = self.app_ty_single()?;
                let pred = if self.eat("|") {
                    // Predicate runs to the matching `}`.
                    let start = self.pos;
                    let mut depth = 1;
                    while self.pos < self.src.len() && depth > 0 {
                        match self.src[self.pos] {
                            b'{' => depth += 1,
                            b'}' => depth -= 1,
                            _ => {}
                        }
                        if depth > 0 {
                            self.pos += 1;
                        }
                    }
                    if depth != 0 {
                        return Err("unterminated refinement".into());
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.pos]);
                    self.pos += 1; // consume `}`
                    Some(parse_spec_pred(text.trim())?)
                } else if self.eat("}") {
                    None
                } else {
                    return Err("expected `|` or `}` in refinement".into());
                };
                let t = match pred {
                    Some(p) => inner.strengthen(&Refinement::pred(p)),
                    None => inner,
                };
                Ok(vec![t])
            }
            Some(b'(') => {
                self.pos += 1;
                let mut parts = vec![self.rtype()?];
                while self.eat(",") {
                    parts.push(self.rtype()?);
                }
                if !self.eat(")") {
                    return Err("expected `)`".into());
                }
                Ok(parts)
            }
            _ => {
                let id = self.ident().ok_or("expected a type")?;
                match id.as_str() {
                    "int" => Ok(vec![RType::int()]),
                    "bool" => Ok(vec![RType::bool()]),
                    "unit" => Ok(vec![RType::unit()]),
                    tycon => {
                        let sym = Symbol::new(tycon);
                        if self.data.decl(sym).is_some() {
                            Ok(vec![RType::Data(DataRType {
                                name: sym,
                                targs: vec![],
                                rho: Rho::top(),
                                inner: BTreeMap::new(),
                                refinement: Refinement::top(),
                            })])
                        } else {
                            Err(format!("unknown type `{tycon}`"))
                        }
                    }
                }
            }
        }
    }

    fn app_ty_single(&mut self) -> Result<RType, String> {
        self.app_ty()
    }
}

/// Exposes the map witness for hand-written specs over map values:
/// `β[k/x]`-style instances are written with this symbol.
pub fn map_witness() -> Symbol {
    witness_symbol("map")
}

/// Scrapes qualifiers from the predicates of `val` specifications —
/// §6: "DSOLVE combines the manually supplied qualifiers (.quals) with
/// qualifiers scraped from the properties to be proved (.mlq)".
///
/// Every atomic conjunct of every refinement (including ρ-matrix
/// entries) is emitted literally, plus a placeholder-generalized variant
/// where each non-canonical program variable becomes a `★`.
pub fn scrape_qualifiers(specs: &[Spec]) -> Vec<Qualifier> {
    let mut preds: Vec<Pred> = Vec::new();
    for spec in specs {
        collect_spec_preds(&spec.scheme.ty, &mut preds);
    }
    let mut out = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (i, p) in preds.iter().enumerate() {
        // Three variants per predicate: literal (matches structural map
        // templates whose scope binds the canonical key), witness form
        // (matches polytype-instantiation templates), and placeholder-
        // generalized (matches arbitrary program-variable scopes).
        let wit_form = p.subst(
            dsolve_liquid::map_key_binder(),
            &dsolve_logic::Expr::Var(map_witness()),
        );
        for q in [p.clone(), wit_form, starred(p)] {
            if q == Pred::True {
                continue;
            }
            if seen.insert(q.to_string()) {
                out.push(Qualifier::new(format!("Scraped{i}"), q));
            }
        }
    }
    out
}

fn collect_spec_preds(t: &RType, out: &mut Vec<Pred>) {
    let mut push_ref = |r: &Refinement| {
        for (theta, atom) in &r.atoms {
            if let dsolve_liquid::RefAtom::Conc(p) = atom {
                for c in theta.apply_pred(p).conjuncts() {
                    out.push(c);
                }
            }
        }
    };
    match t {
        RType::Base(_, r) | RType::TyVar(_, _, r) => push_ref(r),
        RType::Fun(_, a, b) => {
            collect_spec_preds(a, out);
            collect_spec_preds(b, out);
        }
        RType::Tuple(fs) => {
            for (_, t) in fs {
                collect_spec_preds(t, out);
            }
        }
        RType::Data(d) => {
            push_ref(&d.refinement);
            for r in d.rho.entries.values() {
                push_ref(r);
            }
            for m in d.inner.values() {
                for r in m.entries.values() {
                    push_ref(r);
                }
            }
            for t in &d.targs {
                collect_spec_preds(t, out);
            }
        }
    }
}

/// Generalizes a predicate: each distinct free variable that is neither
/// `VV` nor a *datatype field* canonical name becomes a fresh `★`. The
/// map key binder and the map witness are starred too — in arbitrary
/// scopes the corresponding value is an ordinary program variable.
fn starred(p: &Pred) -> Pred {
    let mut q = p.clone();
    let mut next = 0usize;
    let key = dsolve_liquid::map_key_binder();
    let wit = map_witness();
    for v in p.free_vars() {
        if v == Symbol::value_var() {
            continue;
        }
        if v.as_str().contains('#') && v != key && v != wit {
            continue;
        }
        q = q.subst(v, &dsolve_logic::Expr::Var(Symbol::star(next)));
        next += 1;
    }
    q
}

/// Parses a predicate in spec position: the identifier `KEY` denotes the
/// canonical key binder of the enclosing finite-map type.
fn parse_spec_pred(src: &str) -> Result<Pred, String> {
    let p = dsolve_logic::parse_pred(src).map_err(|e| e.to_string())?;
    Ok(p.subst(
        Symbol::new("KEY"),
        &dsolve_logic::Expr::Var(dsolve_liquid::map_key_binder()),
    ))
}

/// Reference the imported `MlType` so the module's dependencies stay
/// minimal and explicit.
#[allow(dead_code)]
fn _shape_check(t: &RType) -> MlType {
    t.shape()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_nanoml::parse_program;

    fn data() -> DataEnv {
        let mut d = DataEnv::with_builtins();
        let prog = parse_program(
            "type ('a, 'b) t = E | N of 'a * 'b * ('a, 'b) t * ('a, 'b) t * int",
        )
        .unwrap();
        d.add_program(&prog.datatypes).unwrap();
        d
    }

    #[test]
    fn parses_quals_file() {
        let qs = parse_quals("qualif Pos : 0 < VV\n\n-- comment\nqualif Ub : _ <= VV\n").unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0].name, "Pos");
    }

    #[test]
    fn parses_len_measure() {
        let d = data();
        let src = "measure len : 'a list -> int =\n| Nil -> 0\n| Cons (x, xs) -> 1 + len(xs)";
        let f = parse_mlq(src, &d).unwrap();
        assert_eq!(f.measures.len(), 1);
        let m = &f.measures[0];
        assert_eq!(m.name, Symbol::new("len"));
        assert_eq!(m.datatype, Symbol::new("list"));
        assert_eq!(m.sort, Sort::Int);
        assert_eq!(m.cases.len(), 2);
    }

    #[test]
    fn parses_sorted_rho_and_val() {
        let d = data();
        let src = r#"
rho Sorted on list =
| Cons (h, t) -> t : [ Cons (h2, t2) -> h2 : { h <= VV } ]

val insertsort : xs : 'a list -> {VV : 'a list @Sorted | elts(VV) = elts(xs)}
"#;
        let f = parse_mlq(src, &d).unwrap();
        let def = &f.rhos["Sorted"];
        assert_eq!(def.datatype, Symbol::new("list"));
        let m = def.inner.get(&(1, 1)).expect("inner at Cons tail");
        let entry = m.entry(1, 0);
        let s = entry.concretize(&|_| Pred::True).to_string();
        assert!(s.contains("list#Cons#0#up <= VV"), "{s}");

        assert_eq!(f.specs.len(), 1);
        let spec = &f.specs[0];
        assert_eq!(spec.name, Symbol::new("insertsort"));
        let RType::Fun(x, _, out) = &spec.scheme.ty else { panic!() };
        assert_eq!(x.as_str(), "xs");
        let RType::Data(out_d) = &**out else { panic!() };
        assert!(out_d.inner.contains_key(&(1, 1)));
        assert!(out_d
            .refinement
            .concretize(&|_| Pred::True)
            .to_string()
            .contains("elts(VV) = elts(xs)"));
    }

    #[test]
    fn parses_bst_rho_on_tree() {
        let d = data();
        let src = r#"
rho Bst on t =
| N (k, dd, l, r, h) ->
    l : [ N (k2, d2, l2, r2, h2) -> k2 : { VV < k } ],
    r : [ N (k2, d2, l2, r2, h2) -> k2 : { k < VV } ]
"#;
        let f = parse_mlq(src, &d).unwrap();
        let def = &f.rhos["Bst"];
        // N is ctor index 1; l is field 2, r is field 3.
        assert!(def.inner.contains_key(&(1, 2)));
        assert!(def.inner.contains_key(&(1, 3)));
        let left = def.inner.get(&(1, 2)).unwrap().entry(1, 0);
        let s = left.concretize(&|_| Pred::True).to_string();
        assert!(s.contains("VV < t#N#0#up"), "{s}");
    }

    #[test]
    fn parses_balance_top_entries() {
        let d = data();
        let src = r#"
rho Bal on t =
| N (k, dd, l, r, h) ->
    r : { (ht(l) - ht(VV) < 2) && (ht(VV) - ht(l) < 2) },
    h : { VV = if ht(l) < ht(r) then 1 + ht(r) else 1 + ht(l) }
"#;
        let f = parse_mlq(src, &d).unwrap();
        let def = &f.rhos["Bal"];
        let r_entry = def.rho.entry(1, 3);
        let s = r_entry.concretize(&|_| Pred::True).to_string();
        // `l` was canonicalized.
        assert!(s.contains("ht(t#N#2)"), "{s}");
        assert!(!def.rho.entry(1, 4).is_top());
    }

    #[test]
    fn parses_tuple_and_map_types() {
        let d = data();
        let src = "val f : w : int -> (int, int) map * int list -> int";
        let f = parse_mlq(src, &d).unwrap();
        let RType::Fun(_, _, rest) = &f.specs[0].scheme.ty else { panic!() };
        let RType::Fun(_, dom, _) = &**rest else { panic!() };
        let RType::Tuple(parts) = &**dom else { panic!() };
        assert_eq!(parts.len(), 2);
        assert!(matches!(&parts[0].1, RType::Data(d) if d.name == Symbol::new("map")));
    }

    #[test]
    fn tyvars_are_numbered_consistently() {
        let d = data();
        let src = "val f : 'a -> 'b -> 'a";
        let f = parse_mlq(src, &d).unwrap();
        assert_eq!(f.specs[0].scheme.vars.len(), 2);
        let RType::Fun(_, a1, rest) = &f.specs[0].scheme.ty else { panic!() };
        let RType::Fun(_, _, a2) = &**rest else { panic!() };
        assert_eq!(**a1, **a2);
    }

    #[test]
    fn inline_qualifiers_are_scraped() {
        let d = data();
        let f = parse_mlq("qualif Pos : 0 < VV", &d).unwrap();
        assert_eq!(f.qualifiers.len(), 1);
    }

    #[test]
    fn rejects_unknown_rho() {
        let d = data();
        assert!(parse_mlq("val f : 'a list @Nope -> int", &d).is_err());
    }

    #[test]
    fn deeply_nested_val_type_is_a_typed_error() {
        let d = data();
        let src = format!("val f : {}int{}", "(".repeat(100_000), ")".repeat(100_000));
        let e = match parse_mlq(&src, &d) {
            Err(e) => e,
            Ok(_) => panic!("deep nesting should fail"),
        };
        assert!(e.msg.contains("depth limit"), "{e}");

        // Moderate nesting still parses.
        let ok = format!("val f : {}int{}", "(".repeat(60), ")".repeat(60));
        assert!(parse_mlq(&ok, &d).is_ok());
    }

    #[test]
    fn junk_specs_are_typed_errors_not_panics() {
        let d = data();
        for src in [
            "measure",
            "measure len",
            "measure len : list -> int",
            "measure len : -> int = | Nil -> 0",
            "measure len : list -> float = | Nil -> 0",
            "rho R = | C -> x : { VV }",
            "rho R on nope = | C -> x : { VV }",
            "val f",
            "val f : {VV : int | 0 <",
            "val f : {VV : int",
            "qualif NoColon",
            "bogus toplevel",
        ] {
            assert!(parse_mlq(src, &d).is_err(), "{src:?} should fail to parse");
        }
        assert!(parse_quals("not a qualif line").is_err());
        assert!(parse_quals("qualif Broken : ((((").is_err());
    }
}
