//! `dsolve-fleet` — the differential verification fleet.
//!
//! Generates a seeded, deterministic stream of NanoML datatype programs
//! (see `dsolve_nanoml::genprog`), runs each through the config
//! differential matrix (worker counts × incremental × cache × certify ×
//! fault-injection points), and checks two oracles: no `SAFE` verdict
//! on a violation-seeded program (soundness vs. the interpreter), and
//! verdict agreement across configs modulo the degrade-to-`UNKNOWN`
//! lattice. Disagreements are auto-minimized into reproducers.
//!
//! ```text
//! dsolve-fleet --seed 42 --count 500 --matrix full
//! dsolve-fleet --seed 7 --count 100 --minimize --out-dir /tmp/repros
//! ```
//!
//! Exit codes: `0` clean, `1` at least one disagreement, `3` usage.

use dsolve::fleet::{
    disagreement_judge, fleet_budget, matrix_entries, minimize, run_fleet, CaseSources,
    FleetOptions, FleetVerdict, Matrix,
};
use dsolve_nanoml::genprog::{Expectation, Shape};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: dsolve-fleet [--seed N] [--count N] [--matrix soundness|quick|full] \
[--minimize] [--out-dir DIR] [--quiet]";

struct Args {
    seed: u64,
    count: u64,
    matrix: Matrix,
    minimize: bool,
    out_dir: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        count: 100,
        matrix: Matrix::Full,
        minimize: false,
        out_dir: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--count" => {
                args.count = value("--count")?
                    .parse()
                    .map_err(|e| format!("--count: {e}"))?;
            }
            "--matrix" => {
                let v = value("--matrix")?;
                args.matrix = Matrix::parse(&v)
                    .ok_or_else(|| format!("--matrix: unknown level '{v}'"))?;
            }
            "--minimize" => args.minimize = true,
            "--out-dir" => args.out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("dsolve-fleet: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(3);
        }
    };

    // Fault-injection entries panic by design and are caught by
    // `run_isolated`; the default hook would spray a backtrace per
    // injected fault. Real panics still surface as UNKNOWN(panic)
    // verdicts and matrix disagreements.
    std::panic::set_hook(Box::new(|_| {}));

    let opts = FleetOptions {
        matrix: args.matrix,
        ..FleetOptions::new(args.seed, args.count)
    };
    let summary = run_fleet(&opts);

    // Shape / expectation distribution and per-config verdict histogram.
    let mut shapes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut violating = 0u64;
    let mut histogram: BTreeMap<String, BTreeMap<&'static str, u64>> = BTreeMap::new();
    for case in &summary.cases {
        let shape = match case.program.shape {
            Shape::Arith => "arith",
            Shape::List => "list",
            Shape::Tree => "tree",
        };
        *shapes.entry(shape).or_default() += 1;
        if matches!(case.program.expectation, Expectation::Violating { .. }) {
            violating += 1;
        }
        for (label, v) in &case.verdicts {
            let bucket = match v {
                FleetVerdict::Safe => "safe",
                FleetVerdict::Unsafe => "unsafe",
                FleetVerdict::Unknown => "unknown",
                FleetVerdict::Error(_) => "error",
            };
            *histogram.entry(label.clone()).or_default().entry(bucket).or_default() += 1;
        }
    }

    if !args.quiet {
        let shape_str: Vec<String> =
            shapes.iter().map(|(s, n)| format!("{s}={n}")).collect();
        println!(
            "fleet: seed={} count={} configs={} shapes[{}] violating={} safe-constructed={}",
            args.seed,
            args.count,
            matrix_entries(args.matrix).len(),
            shape_str.join(" "),
            violating,
            args.count - violating,
        );
        for (label, buckets) in &histogram {
            let b: Vec<String> =
                buckets.iter().map(|(k, n)| format!("{k}={n}")).collect();
            println!("  {label:<22} {}", b.join(" "));
        }
        println!("digest: {:016x}", summary.digest);
    }

    if summary.disagreements.is_empty() {
        if !args.quiet {
            println!("fleet: no disagreements");
        }
        return ExitCode::SUCCESS;
    }

    eprintln!("fleet: {} disagreement(s)", summary.disagreements.len());
    for (name, d) in &summary.disagreements {
        eprintln!("  {name}: {d}");
    }

    if args.minimize {
        let out_dir = args.out_dir.unwrap_or_else(|| PathBuf::from("fleet-repros"));
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("dsolve-fleet: cannot create {}: {e}", out_dir.display());
            return ExitCode::from(3);
        }
        for case in summary.cases.iter().filter(|c| c.disagreement.is_some()) {
            let d = case.disagreement.clone().expect("filtered");
            let mut judge = disagreement_judge(d.clone(), args.matrix, fleet_budget());
            let min = minimize(CaseSources::of(&case.program), &mut judge, 400);
            let stem = out_dir.join(&case.program.name);
            let write = |ext: &str, body: &str| {
                std::fs::write(stem.with_extension(ext), body)
            };
            let expect = format!(
                "# disagreement: {d}\n# expectation: {:?}\n",
                case.program.expectation
            );
            if let Err(e) = write("ml", &min.source)
                .and_then(|()| write("mlq", &min.mlq))
                .and_then(|()| write("quals", &min.quals))
                .and_then(|()| write("expect", &expect))
            {
                eprintln!("dsolve-fleet: cannot write reproducer: {e}");
            } else {
                eprintln!(
                    "  minimized {} to {} source line(s) -> {}.ml",
                    case.program.name,
                    min.source_lines(),
                    stem.display()
                );
            }
        }
    }

    ExitCode::FAILURE
}
