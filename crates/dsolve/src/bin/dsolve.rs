//! The `dsolve` command-line verifier.
//!
//! ```text
//! dsolve <module.ml> [--quals <file>] [--mlq <file>] [--annot]
//!        [--annot-out <file>] [--stats]
//! ```
//!
//! `--annot-out` writes the inferred liquid types to a `.annot` file, as
//! the original DSOLVE did.
//!
//! By default `<module>.quals` and `<module>.mlq` next to the module are
//! used when present. Exit status: 0 = safe, 1 = verification errors,
//! 2 = front-end errors or bad usage.

use dsolve::{Job, JobError};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dsolve <module.ml> [--quals <file>] [--mlq <file>] [--annot] [--annot-out <file>] [--stats]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ml: Option<String> = None;
    let mut quals: Option<String> = None;
    let mut mlq: Option<String> = None;
    let mut annot = false;
    let mut annot_out: Option<String> = None;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quals" => match it.next() {
                Some(f) => quals = Some(f.clone()),
                None => return usage(),
            },
            "--mlq" => match it.next() {
                Some(f) => mlq = Some(f.clone()),
                None => return usage(),
            },
            "--annot" => annot = true,
            "--annot-out" => match it.next() {
                Some(f) => annot_out = Some(f.clone()),
                None => return usage(),
            },
            "--stats" => stats = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') && ml.is_none() => ml = Some(f.to_owned()),
            _ => return usage(),
        }
    }
    let Some(ml) = ml else { return usage() };

    let mut job = match Job::from_path(&ml) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("dsolve: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(q) = quals {
        match std::fs::read_to_string(&q) {
            Ok(s) => job.quals = s,
            Err(e) => {
                eprintln!("dsolve: cannot read `{q}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(s) = mlq {
        match std::fs::read_to_string(&s) {
            Ok(text) => job.mlq = text,
            Err(e) => {
                eprintln!("dsolve: cannot read `{s}`: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match job.run() {
        Err(e @ (JobError::Frontend(_) | JobError::Spec(_) | JobError::Io(_))) => {
            eprintln!("dsolve: {e}");
            ExitCode::from(2)
        }
        Ok(res) => {
            if annot || annot_out.is_some() {
                let mut names: Vec<_> = res.result.inferred.iter().collect();
                names.sort_by_key(|(n, _)| n.as_str());
                let mut rendered = String::new();
                for (name, scheme) in names {
                    rendered.push_str(&format!("{name} :: {scheme}\n"));
                }
                if annot {
                    print!("{rendered}");
                }
                if let Some(path) = &annot_out {
                    if let Err(e) = std::fs::write(path, rendered) {
                        eprintln!("dsolve: cannot write `{path}`: {e}");
                    }
                }
            }
            if stats {
                eprintln!(
                    "loc={} annotations={} constraints={} kvars={} smt_queries={} time={:.3}s",
                    res.loc,
                    res.annotations,
                    res.result.num_constraints,
                    res.result.stats.kvars,
                    res.result.stats.smt_queries,
                    res.time.as_secs_f64()
                );
            }
            if res.is_safe() {
                println!("{}: SAFE", job.name);
                ExitCode::SUCCESS
            } else {
                println!("{}: UNSAFE", job.name);
                for e in &res.result.errors {
                    println!("  {e}");
                }
                ExitCode::from(1)
            }
        }
    }
}
