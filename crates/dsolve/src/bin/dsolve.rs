//! The `dsolve` command-line verifier.
//!
//! ```text
//! dsolve <module.ml> [--quals <file>] [--mlq <file>] [--annot]
//!        [--annot-out <file>] [--stats] [--trace-out <file>] [--quiet]
//!        [--timeout <secs>] [--max-smt-queries <n>] [--jobs <n>]
//!        [--certify] [--inject-fault <point[@N]>]
//! ```
//!
//! `--annot-out` writes the inferred liquid types to a `.annot` file, as
//! the original DSOLVE did. `--timeout` and `--max-smt-queries` bound
//! the run; an exhausted budget reports `UNKNOWN` with the reason.
//! `--jobs` sets the fixpoint worker count (default: one per available
//! CPU; `--jobs 1` selects the sequential solver).
//!
//! `--certify` replays every definite SMT verdict through an independent
//! checker (countermodel evaluation for Invalid, theory-core replay for
//! Valid); a certificate that fails to replay downgrades the answer to
//! `UNKNOWN` rather than ever flipping it. `--inject-fault` (or the
//! `DSOLVE_FAULT` environment variable) arms one deterministic fault
//! point — `worker-panic`, `session-fail`, `cache-poison`, `trace-io`,
//! or `query-timeout`, optionally `@N` for the N-th occurrence — used by
//! the fault-matrix robustness tests; a faulted run either matches the
//! clean verdict or degrades to `UNKNOWN` (exit 2).
//!
//! `--trace-out` writes a Chrome `trace_event` JSON file (open it in
//! `chrome://tracing` or Perfetto) with spans for every pipeline phase,
//! fixpoint round, and individual SMT query named by the NanoML source
//! location it discharges. `--quiet` silences progress and warning
//! output (errors still print); the `DSOLVE_LOG` environment variable
//! (`error|warn|info|debug`) picks a level explicitly.
//!
//! By default `<module>.quals` and `<module>.mlq` next to the module are
//! used when present. Exit status: 0 = safe, 1 = unsafe, 2 = unknown
//! (budget exhausted, isolated panic, quarantined worker, or failed
//! certificate), 3 = front-end/spec errors or bad usage.

use dsolve::{Job, JobError};
use dsolve_logic::{FaultPlan, FaultPoint};
use dsolve_obs::{log_error, Obs};
use std::process::ExitCode;

fn usage() -> ExitCode {
    log_error!(
        "usage: dsolve <module.ml> [--quals <file>] [--mlq <file>] [--annot] [--annot-out <file>] [--stats] [--trace-out <file>] [--quiet] [--timeout <secs>] [--max-smt-queries <n>] [--jobs <n>] [--certify] [--inject-fault <point[@N]>]"
    );
    ExitCode::from(3)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ml: Option<String> = None;
    let mut quals: Option<String> = None;
    let mut mlq: Option<String> = None;
    let mut annot = false;
    let mut annot_out: Option<String> = None;
    let mut stats = false;
    let mut trace_out: Option<String> = None;
    let mut quiet = false;
    let mut timeout: Option<u64> = None;
    let mut max_smt_queries: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut certify = false;
    let mut inject_fault: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quals" => match it.next() {
                Some(f) => quals = Some(f.clone()),
                None => return usage(),
            },
            "--mlq" => match it.next() {
                Some(f) => mlq = Some(f.clone()),
                None => return usage(),
            },
            "--annot" => annot = true,
            "--annot-out" => match it.next() {
                Some(f) => annot_out = Some(f.clone()),
                None => return usage(),
            },
            "--stats" => stats = true,
            "--trace-out" => match it.next() {
                Some(f) => trace_out = Some(f.clone()),
                None => return usage(),
            },
            "--quiet" => quiet = true,
            "--timeout" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => timeout = Some(secs),
                None => return usage(),
            },
            "--max-smt-queries" => match it.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) => max_smt_queries = Some(n),
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n > 0 => jobs = Some(n),
                _ => return usage(),
            },
            "--certify" => certify = true,
            "--inject-fault" => match it.next() {
                Some(f) => inject_fault = Some(f.clone()),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') && ml.is_none() => ml = Some(f.to_owned()),
            _ => return usage(),
        }
    }
    let Some(ml) = ml else { return usage() };
    if quiet {
        dsolve_obs::log::set_level(dsolve_obs::log::Level::Error);
    }

    let mut job = match Job::from_path(&ml) {
        Ok(j) => j,
        Err(e) => {
            log_error!("dsolve: {e}");
            return ExitCode::from(3);
        }
    };
    if let Some(q) = quals {
        match std::fs::read_to_string(&q) {
            Ok(s) => job.quals = s,
            Err(e) => {
                log_error!("dsolve: cannot read `{q}`: {e}");
                return ExitCode::from(3);
            }
        }
    }
    if let Some(s) = mlq {
        match std::fs::read_to_string(&s) {
            Ok(text) => job.mlq = text,
            Err(e) => {
                log_error!("dsolve: cannot read `{s}`: {e}");
                return ExitCode::from(3);
            }
        }
    }
    if let Some(secs) = timeout {
        job.config.budget.timeout = Some(std::time::Duration::from_secs(secs));
    }
    if let Some(n) = max_smt_queries {
        job.config.budget.max_smt_queries = Some(n);
    }
    if let Some(n) = jobs {
        job.config.jobs = n;
    }
    job.config.smt.certify = certify;
    // `--inject-fault` wins over the `DSOLVE_FAULT` environment variable.
    let fault = {
        let parsed = match &inject_fault {
            Some(spec) => FaultPlan::parse(spec).map(Some),
            None => FaultPlan::from_env(),
        };
        match parsed {
            Ok(p) => p.map(std::sync::Arc::new),
            Err(e) => {
                log_error!("dsolve: {e}");
                return ExitCode::from(3);
            }
        }
    };
    job.config.fault = fault.clone();
    let obs = match &trace_out {
        Some(path) => match Obs::with_trace(std::path::Path::new(path)) {
            Ok(o) => o,
            Err(e) => {
                log_error!("dsolve: cannot open trace file `{path}`: {e}");
                return ExitCode::from(3);
            }
        },
        None => Obs::new(),
    };
    job.config.obs = obs.clone();
    if let Some(f) = &fault {
        if f.fire(FaultPoint::TraceIo) {
            obs.simulate_trace_io_failure();
        }
    }

    let outcome = job.run_isolated();
    // Flush the trace before reporting: every span guard is dropped by
    // now (run_isolated catches panics), so the event list is complete.
    obs.finish();
    match outcome {
        Err(e @ JobError::Panic(_)) => {
            // An isolated panic is an Unknown verdict, not a crash.
            println!("{}: {}", job.name, e.outcome());
            ExitCode::from(2)
        }
        Err(e) => {
            log_error!("dsolve: {e}");
            ExitCode::from(3)
        }
        Ok(res) => {
            if annot || annot_out.is_some() {
                let mut names: Vec<_> = res.result.inferred.iter().collect();
                names.sort_by_key(|(n, _)| n.as_str());
                let mut rendered = String::new();
                for (name, scheme) in names {
                    rendered.push_str(&format!("{name} :: {scheme}\n"));
                }
                if annot {
                    print!("{rendered}");
                }
                if let Some(path) = &annot_out {
                    if let Err(e) = std::fs::write(path, rendered) {
                        log_error!("dsolve: cannot write `{path}`: {e}");
                    }
                }
            }
            if stats {
                eprintln!(
                    "loc={} annotations={} constraints={} kvars={} smt_queries={} time={:.3}s frontend={:.3}s gen={:.3}s fixpoint={:.3}s obligations={:.3}s",
                    res.loc,
                    res.annotations,
                    res.result.num_constraints,
                    res.result.stats.kvars,
                    res.result.stats.smt_queries,
                    res.time.as_secs_f64(),
                    res.frontend_time.as_secs_f64(),
                    res.result.gen_time.as_secs_f64(),
                    res.result.stats.fixpoint_time.as_secs_f64(),
                    res.result.stats.obligation_time.as_secs_f64()
                );
                let s = &res.result.stats;
                eprintln!(
                    "jobs={} rounds={} max_partition={} cache_hits={}/{} ({:.1}%) worker_queries={:?}",
                    s.jobs,
                    s.rounds,
                    s.max_partition,
                    s.cache_hits,
                    s.cache_lookups,
                    100.0 * s.cache_hit_rate(),
                    s.worker_queries
                );
                let reuse = if s.smt_sessions == 0 {
                    0.0
                } else {
                    s.smt_scoped_checks as f64 / s.smt_sessions as f64
                };
                eprintln!(
                    "smt_sessions={} scoped_checks={} asserts_per_session={reuse:.1}",
                    s.smt_sessions, s.smt_scoped_checks
                );
                if !res.metrics.top_constraints.is_empty() {
                    eprintln!("top constraints by SMT time:");
                    for c in &res.metrics.top_constraints {
                        eprintln!(
                            "  {:>8.3}ms {:>5} queries  c{} [{}]",
                            c.total_ns as f64 / 1e6,
                            c.queries,
                            c.constraint,
                            c.label
                        );
                    }
                }
            }
            use dsolve_logic::Outcome;
            println!("{}: {}", job.name, res.outcome());
            match res.outcome() {
                Outcome::Safe => ExitCode::SUCCESS,
                Outcome::Unsafe => {
                    for e in &res.result.errors {
                        println!("  {e}");
                    }
                    ExitCode::from(1)
                }
                Outcome::Unknown(_) => {
                    for e in &res.result.errors {
                        println!("  {e}");
                    }
                    ExitCode::from(2)
                }
            }
        }
    }
}
