//! The differential verification fleet.
//!
//! Runs generated NanoML programs ([`dsolve_nanoml::genprog`]) through a
//! **config differential matrix** — worker counts, incremental SMT
//! on/off, query cache on/off, `--certify`, and every deterministic
//! fault-injection point — and checks two oracles:
//!
//! 1. **Soundness vs. the interpreter.** Generation is oracle-aware: a
//!    violation-seeded program concretely fails its assertion under the
//!    big-step interpreter, so any configuration reporting `SAFE` for it
//!    has a soundness bug.
//! 2. **Verdict agreement modulo the degrade lattice.** All
//!    configurations must agree on the verdict, except that any of them
//!    may degrade to `UNKNOWN` (budgets, injected faults, failed
//!    certificates). Two *definite* verdicts that differ (`SAFE` vs
//!    `UNSAFE`) are a determinism/robustness bug.
//!
//! Any disagreement is shrunk by [`minimize`] — a delta-debugging loop
//! that drops top-level items, drops qualifier lines and `.mlq`
//! paragraphs, and shrinks integer literals, re-checking the
//! disagreement after each candidate reduction — into a minimal
//! reproducer for the regression corpus
//! (`crates/dsolve/tests/corpus/`).

use crate::driver::{Job, JobError, JobResult};
use dsolve_liquid::SolveConfig;
use dsolve_logic::{Budget, FaultPlan, FaultPoint, Outcome};
use dsolve_nanoml::genprog::{first_assert_failure, generate, Expectation, GenProgram};
use dsolve_obs::Obs;
use std::fmt;
use std::sync::Arc;

/// Runs one program through the whole pipeline with an explicit
/// configuration — the single in-process entry point shared by the
/// fleet, the `dsolve` CLI, and the `figure10` harness (all of which go
/// through [`Job`]).
///
/// # Errors
///
/// Front-end failures (parse/resolve/HM/spec) and isolated panics;
/// verification failures are reported in the result.
pub fn run_program(
    name: &str,
    source: &str,
    mlq: &str,
    quals: &str,
    config: SolveConfig,
) -> Result<JobResult, JobError> {
    let mut job = Job::from_sources(name, source, mlq, quals);
    job.config = config;
    job.run_isolated()
}

/// A fleet verdict: the three-valued outcome plus `Error` for programs
/// the front end rejected (which the generator promises never happens —
/// an `Error` is itself a fleet failure).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetVerdict {
    /// Verified safe.
    Safe,
    /// An obligation concretely failed.
    Unsafe,
    /// Degraded: budget, fault, quarantine, or failed certificate.
    Unknown,
    /// Front-end error (carries the message).
    Error(String),
}

impl FleetVerdict {
    /// Whether this is a definite (non-degradable) verdict.
    pub fn definite(&self) -> bool {
        matches!(self, FleetVerdict::Safe | FleetVerdict::Unsafe)
    }

    fn of(result: &Result<JobResult, JobError>) -> FleetVerdict {
        match result {
            Ok(res) => match res.outcome() {
                Outcome::Safe => FleetVerdict::Safe,
                Outcome::Unsafe => FleetVerdict::Unsafe,
                Outcome::Unknown(_) => FleetVerdict::Unknown,
            },
            Err(JobError::Panic(_)) => FleetVerdict::Unknown,
            Err(e) => FleetVerdict::Error(e.to_string()),
        }
    }
}

impl fmt::Display for FleetVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetVerdict::Safe => f.write_str("SAFE"),
            FleetVerdict::Unsafe => f.write_str("UNSAFE"),
            FleetVerdict::Unknown => f.write_str("UNKNOWN"),
            FleetVerdict::Error(m) => write!(f, "ERROR({m})"),
        }
    }
}

/// How much of the config matrix a fleet run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Matrix {
    /// Sequential clean config only — the pure solver-vs-interpreter
    /// soundness oracle, cheapest per program.
    Soundness,
    /// Clean configs across the {jobs, incremental, cache, certify}
    /// dimensions.
    Quick,
    /// `Quick` plus every deterministic fault-injection point.
    Full,
}

impl Matrix {
    /// Parses a `--matrix` argument.
    pub fn parse(s: &str) -> Option<Matrix> {
        match s {
            "soundness" => Some(Matrix::Soundness),
            "quick" => Some(Matrix::Quick),
            "full" => Some(Matrix::Full),
            _ => None,
        }
    }
}

/// One configuration in the differential matrix.
#[derive(Clone, Copy)]
pub struct MatrixEntry {
    /// Stable label used in reports and digests.
    pub label: &'static str,
    /// Worker threads.
    jobs: usize,
    /// Disable incremental SMT sessions.
    no_incremental: bool,
    /// Disable the shared query cache.
    no_cache: bool,
    /// Certify every definite SMT verdict.
    certify: bool,
    /// Fault-injection spec (`point[@N]`), if any.
    fault: Option<&'static str>,
}

impl MatrixEntry {
    const fn clean(label: &'static str, jobs: usize, no_incremental: bool, no_cache: bool, certify: bool) -> MatrixEntry {
        MatrixEntry { label, jobs, no_incremental, no_cache, certify, fault: None }
    }

    const fn faulty(label: &'static str, jobs: usize, fault: &'static str) -> MatrixEntry {
        MatrixEntry { label, jobs, no_incremental: false, no_cache: false, certify: false, fault: Some(fault) }
    }

    /// Whether this entry can degrade the verdict by design (injected
    /// faults and certification may downgrade to `UNKNOWN`).
    pub fn degradable(&self) -> bool {
        self.fault.is_some() || self.certify
    }

    /// Builds the [`SolveConfig`] for this entry. Fault plans are
    /// created fresh per run — their occurrence counters are stateful.
    pub fn config(&self, budget: Budget) -> SolveConfig {
        let mut c = SolveConfig {
            budget,
            jobs: self.jobs,
            no_incremental: self.no_incremental,
            obs: Obs::new(),
            ..SolveConfig::default()
        };
        c.smt.cache = !self.no_cache;
        c.smt.certify = self.certify;
        if let Some(spec) = self.fault {
            c.fault = Some(Arc::new(
                FaultPlan::parse(spec).expect("matrix fault specs are valid"),
            ));
        }
        c
    }
}

/// The clean baseline configuration every differential compares against.
const BASELINE: MatrixEntry = MatrixEntry::clean("seq", 1, false, false, false);

/// The config entries of each matrix level. `Full` covers each dimension
/// of {jobs 1/4} × {incremental on/off} × {cache on/off} × {certify} and
/// pairs the parallel path with the most interaction-prone toggles, plus
/// one entry per fault-injection point.
pub fn matrix_entries(matrix: Matrix) -> &'static [MatrixEntry] {
    const SOUNDNESS: &[MatrixEntry] = &[BASELINE];
    const QUICK: &[MatrixEntry] = &[
        BASELINE,
        MatrixEntry::clean("par4", 4, false, false, false),
        MatrixEntry::clean("scratch", 1, true, false, false),
        MatrixEntry::clean("nocache", 1, false, true, false),
        MatrixEntry::clean("certify", 1, false, false, true),
    ];
    const FULL: &[MatrixEntry] = &[
        BASELINE,
        MatrixEntry::clean("par4", 4, false, false, false),
        MatrixEntry::clean("scratch", 1, true, false, false),
        MatrixEntry::clean("nocache", 1, false, true, false),
        MatrixEntry::clean("certify", 1, false, false, true),
        MatrixEntry::clean("par4-scratch", 4, true, false, false),
        MatrixEntry::clean("par4-nocache", 4, false, true, false),
        MatrixEntry::clean("par4-certify", 4, false, false, true),
        MatrixEntry::clean("scratch-nocache", 1, true, true, false),
        MatrixEntry::faulty("fault-worker-panic", 2, "worker-panic@1"),
        MatrixEntry::faulty("fault-session-fail", 1, "session-fail@1"),
        MatrixEntry::faulty("fault-cache-poison", 2, "cache-poison"),
        MatrixEntry::faulty("fault-query-timeout", 1, "query-timeout@2"),
        MatrixEntry::faulty("fault-trace-io", 1, "trace-io"),
    ];
    match matrix {
        Matrix::Soundness => SOUNDNESS,
        Matrix::Quick => QUICK,
        Matrix::Full => FULL,
    }
}

/// A disagreement the fleet's oracles caught.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Disagreement {
    /// A violation-seeded program (the interpreter concretely fails its
    /// assertion) was reported `SAFE` — a soundness bug.
    Soundness {
        /// Configs that reported `SAFE`.
        configs: Vec<String>,
    },
    /// Two configurations reported differing *definite* verdicts —
    /// outside the degrade-to-`UNKNOWN` lattice.
    MatrixFlip {
        /// First config label and its verdict.
        a: (String, FleetVerdict),
        /// Second config label and its conflicting verdict.
        b: (String, FleetVerdict),
    },
    /// The front end rejected a generated program (generator bug).
    FrontendError {
        /// Config label and error message.
        config: String,
        /// The front-end error.
        message: String,
    },
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disagreement::Soundness { configs } => {
                write!(f, "soundness: SAFE on violation-seeded program under {}", configs.join(", "))
            }
            Disagreement::MatrixFlip { a, b } => {
                write!(f, "matrix flip: {}={} vs {}={}", a.0, a.1, b.0, b.1)
            }
            Disagreement::FrontendError { config, message } => {
                write!(f, "front-end error under {config}: {message}")
            }
        }
    }
}

/// One program's trip through the matrix.
#[derive(Clone, Debug)]
pub struct CaseReport {
    /// The generated program.
    pub program: GenProgram,
    /// `(config label, verdict)` per matrix entry, in matrix order.
    pub verdicts: Vec<(String, FleetVerdict)>,
    /// The disagreement, if the oracles caught one.
    pub disagreement: Option<Disagreement>,
}

/// Runs one generated program through every matrix entry and applies
/// both oracles.
pub fn run_case(program: &GenProgram, matrix: Matrix, budget: Budget) -> CaseReport {
    let mut verdicts: Vec<(String, FleetVerdict)> = Vec::new();
    for entry in matrix_entries(matrix) {
        let mut config = entry.config(budget);
        // `trace-io` only fires on the trace-writer path, so this entry
        // attaches a real (throwaway) trace sink and fails it, the same
        // way the CLI does.
        let mut trace_path = None;
        if entry.fault == Some("trace-io") {
            let path = std::env::temp_dir().join(format!(
                "dsolve-fleet-trace-{}-{}.json",
                std::process::id(),
                program.name
            ));
            if let Ok(obs) = Obs::with_trace(&path) {
                if let Some(plan) = &config.fault {
                    if plan.fire(FaultPoint::TraceIo) {
                        obs.simulate_trace_io_failure();
                    }
                }
                config.obs = obs;
                trace_path = Some(path);
            }
        }
        let result = run_program(
            &program.name,
            &program.source,
            &program.mlq,
            &program.quals,
            config,
        );
        if let Some(path) = trace_path {
            let _ = std::fs::remove_file(path);
        }
        verdicts.push((entry.label.to_string(), FleetVerdict::of(&result)));
    }
    let disagreement = check_verdicts(program.expectation, &verdicts);
    CaseReport { program: program.clone(), verdicts, disagreement }
}

/// Applies the soundness and lattice-agreement oracles to a verdict set.
pub fn check_verdicts(
    expectation: Expectation,
    verdicts: &[(String, FleetVerdict)],
) -> Option<Disagreement> {
    for (label, v) in verdicts {
        if let FleetVerdict::Error(message) = v {
            return Some(Disagreement::FrontendError {
                config: label.clone(),
                message: message.clone(),
            });
        }
    }
    if matches!(expectation, Expectation::Violating { .. }) {
        let safe: Vec<String> = verdicts
            .iter()
            .filter(|(_, v)| *v == FleetVerdict::Safe)
            .map(|(l, _)| l.clone())
            .collect();
        if !safe.is_empty() {
            return Some(Disagreement::Soundness { configs: safe });
        }
    }
    // Agreement modulo the degrade lattice: all *definite* verdicts must
    // coincide; UNKNOWN is always an allowed degradation.
    let mut first_definite: Option<&(String, FleetVerdict)> = None;
    for pair in verdicts {
        if !pair.1.definite() {
            continue;
        }
        match first_definite {
            None => first_definite = Some(pair),
            Some(a) if a.1 != pair.1 => {
                return Some(Disagreement::MatrixFlip {
                    a: (a.0.clone(), a.1.clone()),
                    b: (pair.0.clone(), pair.1.clone()),
                });
            }
            Some(_) => {}
        }
    }
    None
}

/// Options for a whole fleet run.
#[derive(Clone, Copy, Debug)]
pub struct FleetOptions {
    /// Fleet seed: pins programs *and* verdicts.
    pub seed: u64,
    /// Number of programs to generate.
    pub count: u64,
    /// Matrix level.
    pub matrix: Matrix,
    /// Per-run resource budget. The default is deterministic (no
    /// wall-clock deadline, a generous query cap), so a fleet run's
    /// verdicts are a pure function of the seed.
    pub budget: Budget,
}

impl FleetOptions {
    /// Deterministic defaults for `seed`/`count`.
    pub fn new(seed: u64, count: u64) -> FleetOptions {
        FleetOptions { seed, count, matrix: Matrix::Full, budget: fleet_budget() }
    }
}

/// The fleet's per-run budget: deterministic (no wall clock) but
/// bounded (query cap), so a hung config degrades to `UNKNOWN` instead
/// of stalling the fleet and verdicts never depend on host speed.
pub fn fleet_budget() -> Budget {
    Budget { max_smt_queries: Some(50_000), ..Budget::default() }
}

/// Summary of a fleet run.
#[derive(Clone, Debug)]
pub struct FleetSummary {
    /// Every case, in index order.
    pub cases: Vec<CaseReport>,
    /// `(program name, disagreement)` for each failing case.
    pub disagreements: Vec<(String, Disagreement)>,
    /// Order-sensitive FNV digest over `(name, config, verdict)` — two
    /// runs of the same seed must produce the same digest (the fleet's
    /// end-to-end determinism check).
    pub digest: u64,
}

/// Runs the whole fleet: generate, verify across the matrix, apply the
/// oracles.
pub fn run_fleet(opts: &FleetOptions) -> FleetSummary {
    let mut cases = Vec::new();
    let mut disagreements = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut absorb = |s: &str| {
        for b in s.bytes() {
            digest ^= u64::from(b);
            digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    };
    for i in 0..opts.count {
        let program = generate(opts.seed, i);
        let report = run_case(&program, opts.matrix, opts.budget);
        absorb(&program.name);
        for (label, v) in &report.verdicts {
            absorb(label);
            absorb(&v.to_string());
        }
        if let Some(d) = &report.disagreement {
            disagreements.push((program.name.clone(), d.clone()));
        }
        cases.push(report);
    }
    FleetSummary { cases, disagreements, digest }
}

// ---------------------------------------------------------------------
// Delta-debugging minimizer
// ---------------------------------------------------------------------

/// The three source files of a fleet case, as the minimizer shrinks
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseSources {
    /// NanoML module source.
    pub source: String,
    /// `.mlq` specification.
    pub mlq: String,
    /// `.quals` qualifiers.
    pub quals: String,
}

impl CaseSources {
    /// Extracts the shrinkable sources from a generated program.
    pub fn of(p: &GenProgram) -> CaseSources {
        CaseSources { source: p.source.clone(), mlq: p.mlq.clone(), quals: p.quals.clone() }
    }

    /// Non-blank source line count (the "≤ 30 lines" metric).
    pub fn source_lines(&self) -> usize {
        self.source.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

/// Splits a module into top-level items: a new item starts at a line
/// whose first column is non-blank, except `and` continuations.
fn split_items(source: &str) -> Vec<String> {
    let mut items: Vec<String> = Vec::new();
    for line in source.lines() {
        let starts_item = line
            .chars()
            .next()
            .is_some_and(|c| !c.is_whitespace())
            && !line.starts_with("and ");
        if starts_item || items.is_empty() {
            items.push(line.to_string());
        } else {
            let last = items.last_mut().expect("non-empty");
            last.push('\n');
            last.push_str(line);
        }
    }
    items.retain(|i| !i.trim().is_empty());
    items
}

/// Splits an `.mlq` file into blank-line-separated paragraphs
/// (measures, rhos, val specs).
fn split_paragraphs(mlq: &str) -> Vec<String> {
    mlq.split("\n\n")
        .map(str::trim_end)
        .filter(|p| !p.trim().is_empty())
        .map(str::to_string)
        .collect()
}

/// Delta-debugging minimizer: shrinks `sources` while `judge` keeps
/// returning `true` ("the disagreement still reproduces").
///
/// Reduction passes, iterated to a fixpoint:
/// 1. drop whole top-level items (functions, datatypes, checks) —
///    bottom-up, so checks go before the library they use;
/// 2. drop `.mlq` paragraphs and `.quals` lines;
/// 3. shrink integer literals in the module source (towards `0`, `1`,
///    and half).
///
/// `judge` is called once per candidate; reductions it rejects are
/// rolled back. The result is 1-minimal with respect to these
/// reductions. `max_judge_calls` bounds the work (the judge typically
/// re-runs the verifier).
pub fn minimize(
    sources: CaseSources,
    judge: &mut dyn FnMut(&CaseSources) -> bool,
    max_judge_calls: usize,
) -> CaseSources {
    let mut best = sources;
    let mut calls = 0usize;
    let mut try_candidate = |best: &mut CaseSources,
                             candidate: CaseSources,
                             calls: &mut usize|
     -> bool {
        if *calls >= max_judge_calls || candidate == *best {
            return false;
        }
        *calls += 1;
        if judge(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    };

    for _round in 0..8 {
        let mut changed = false;

        // 1. Drop top-level items, bottom-up.
        let items = split_items(&best.source);
        for i in (0..items.len()).rev() {
            let current = split_items(&best.source);
            if i >= current.len() {
                continue;
            }
            let mut kept = current.clone();
            kept.remove(i);
            let candidate = CaseSources { source: kept.join("\n"), ..best.clone() };
            changed |= try_candidate(&mut best, candidate, &mut calls);
        }

        // 2a. Drop `.mlq` paragraphs.
        let paras = split_paragraphs(&best.mlq);
        for i in (0..paras.len()).rev() {
            let current = split_paragraphs(&best.mlq);
            if i >= current.len() {
                continue;
            }
            let mut kept = current.clone();
            kept.remove(i);
            let mlq = if kept.is_empty() { String::new() } else { kept.join("\n\n") + "\n" };
            let candidate = CaseSources { mlq, ..best.clone() };
            changed |= try_candidate(&mut best, candidate, &mut calls);
        }

        // 2b. Drop `.quals` lines.
        let quals: Vec<&str> = best.quals.lines().collect();
        for i in (0..quals.len()).rev() {
            let current: Vec<String> = best.quals.lines().map(str::to_string).collect();
            if i >= current.len() {
                continue;
            }
            let mut kept = current.clone();
            kept.remove(i);
            let quals = if kept.is_empty() { String::new() } else { kept.join("\n") + "\n" };
            let candidate = CaseSources { quals, ..best.clone() };
            changed |= try_candidate(&mut best, candidate, &mut calls);
        }

        // 3. Shrink integer literals in the module source.
        changed |= shrink_literals(&mut best, &mut |b, c| try_candidate(b, c, &mut calls));

        if !changed || calls >= max_judge_calls {
            break;
        }
    }
    best
}

/// One pass of literal shrinking over the module source: for each
/// maximal digit run, try `0`, `1`, and `n/2`.
fn shrink_literals(
    best: &mut CaseSources,
    try_candidate: &mut dyn FnMut(&mut CaseSources, CaseSources) -> bool,
) -> bool {
    let mut changed = false;
    let mut pos = 0usize;
    loop {
        let src = best.source.clone();
        let bytes = src.as_bytes();
        // Find the next digit run at or after `pos`.
        let Some(start) = (pos..bytes.len()).find(|&i| bytes[i].is_ascii_digit()) else {
            break;
        };
        let end = (start..bytes.len())
            .find(|&i| !bytes[i].is_ascii_digit())
            .unwrap_or(bytes.len());
        let lit = &src[start..end];
        let n: u64 = lit.parse().unwrap_or(0);
        let mut replaced = false;
        for candidate_val in [0u64, 1, n / 2] {
            if candidate_val.to_string() == lit || (candidate_val == 0 && n == 0) {
                continue;
            }
            let mut s = String::with_capacity(src.len());
            s.push_str(&src[..start]);
            s.push_str(&candidate_val.to_string());
            s.push_str(&src[end..]);
            let candidate = CaseSources { source: s, ..best.clone() };
            if try_candidate(best, candidate) {
                changed = true;
                replaced = true;
                break;
            }
        }
        // Move past this literal (in the possibly-updated source the
        // replacement is never longer than the original).
        pos = if replaced { start + 1 } else { end };
        if pos >= best.source.len() {
            break;
        }
    }
    changed
}

/// Builds a judge that reproduces a specific disagreement with the real
/// pipeline: re-runs only the configs involved (plus the interpreter
/// for soundness cases).
pub fn disagreement_judge(
    disagreement: Disagreement,
    matrix: Matrix,
    budget: Budget,
) -> impl FnMut(&CaseSources) -> bool {
    let entries = matrix_entries(matrix);
    let entry_of = move |label: &str| entries.iter().find(|e| e.label == label).copied();
    move |s: &CaseSources| {
        let verdict = |entry: &MatrixEntry| {
            FleetVerdict::of(&run_program("minimize", &s.source, &s.mlq, &s.quals, entry.config(budget)))
        };
        match &disagreement {
            Disagreement::Soundness { configs } => {
                // The interpreter must still concretely fail an assertion.
                if !matches!(first_assert_failure(&s.source), Ok(Some(_))) {
                    return false;
                }
                configs.iter().any(|label| {
                    entry_of(label).is_some_and(|e| verdict(&e) == FleetVerdict::Safe)
                })
            }
            Disagreement::MatrixFlip { a, b } => {
                let (Some(ea), Some(eb)) = (entry_of(&a.0), entry_of(&b.0)) else {
                    return false;
                };
                let (va, vb) = (verdict(&ea), verdict(&eb));
                va.definite() && vb.definite() && va != vb
            }
            Disagreement::FrontendError { config, .. } => entry_of(config)
                .is_some_and(|e| matches!(verdict(&e), FleetVerdict::Error(_))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_items_respects_continuations() {
        let src = "let a = 1\nlet rec f x =\n  match x with\n  | [] -> 0\nand g y = f y\nlet b = 2";
        let items = split_items(src);
        assert_eq!(items.len(), 3);
        assert!(items[1].contains("and g"));
    }

    #[test]
    fn lattice_allows_unknown_but_not_flips() {
        let v = |s: &str| match s {
            "S" => FleetVerdict::Safe,
            "U" => FleetVerdict::Unsafe,
            _ => FleetVerdict::Unknown,
        };
        let mk = |vs: &[&str]| -> Vec<(String, FleetVerdict)> {
            vs.iter().enumerate().map(|(i, s)| (format!("c{i}"), v(s))).collect()
        };
        assert_eq!(check_verdicts(Expectation::Safe, &mk(&["S", "S", "?"])), None);
        assert_eq!(check_verdicts(Expectation::Safe, &mk(&["U", "?", "U"])), None);
        assert!(matches!(
            check_verdicts(Expectation::Safe, &mk(&["S", "U"])),
            Some(Disagreement::MatrixFlip { .. })
        ));
        assert!(matches!(
            check_verdicts(Expectation::Violating { line: 1 }, &mk(&["S", "S"])),
            Some(Disagreement::Soundness { .. })
        ));
        // UNSAFE on a violation-seeded program is the *expected* answer.
        assert_eq!(check_verdicts(Expectation::Violating { line: 1 }, &mk(&["U", "?"])), None);
    }

    #[test]
    fn minimizer_reaches_small_core() {
        // A judge that only cares about one line surviving.
        let sources = CaseSources {
            source: "let a = 1\nlet b = 2\nlet keep = assert (0 <= 1)\nlet c = 3".into(),
            mlq: "measure m : 'a list -> int =\n| Nil -> 0\n| Cons (x, xs) -> 1 + m(xs)\n".into(),
            quals: "qualif Nat : 0 <= VV\nqualif Ub : _ <= VV\n".into(),
        };
        let mut judge = |s: &CaseSources| s.source.contains("keep");
        let min = minimize(sources, &mut judge, 1000);
        assert_eq!(min.source, "let keep = assert (0 <= 1)");
        assert_eq!(min.mlq, "");
        assert_eq!(min.quals, "");
    }
}
