//! The DSOLVE driver: ties a `.ml` module, its `.mlq` specification, and
//! its `.quals` qualifiers into one verification run with timing and a
//! Figure-10-style report row.

use crate::spec::{parse_mlq, parse_quals, SpecError, SpecFile};
use dsolve_liquid::{builtin_schemes, MeasureEnv, SolveConfig, Verifier, VerifyResult};
use dsolve_logic::{Exhaustion, Outcome, Phase, Qualifier, Resource, SortEnv};
use dsolve_obs::ObsPhase;
use dsolve_nanoml::{infer_program, parse_program, resolve_program, DataEnv};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::{Duration, Instant};

/// A complete verification job.
pub struct Job {
    /// Module name (for reports).
    pub name: String,
    /// NanoML source.
    pub source: String,
    /// `.mlq` specification source (may be empty).
    pub mlq: String,
    /// `.quals` qualifier source (may be empty).
    pub quals: String,
    /// Solver configuration.
    pub config: SolveConfig,
}

/// The outcome of running a job.
pub struct JobResult {
    /// Verification outcome.
    pub result: VerifyResult,
    /// Wall-clock verification time (excludes parsing).
    pub time: Duration,
    /// Wall-clock time in the front end (parse, resolve, HM inference,
    /// spec processing).
    pub frontend_time: Duration,
    /// Lines of code (non-blank, non-comment) in the module.
    pub loc: usize,
    /// Number of manual qualifier annotations.
    pub annotations: usize,
    /// Number of measures in the specification.
    pub measures: usize,
    /// Observability snapshot for this job: counters, phase/theory time,
    /// query-latency histogram, and the top expensive constraints (taken
    /// from the job's [`SolveConfig::obs`] registry after verification).
    pub metrics: dsolve_obs::Snapshot,
}

impl JobResult {
    /// Whether the module verified within budget.
    pub fn is_safe(&self) -> bool {
        self.result.is_safe()
    }

    /// The three-valued verdict.
    pub fn outcome(&self) -> &Outcome {
        &self.result.outcome
    }
}

/// An error running a job (front-end failures and isolated panics).
#[derive(Debug)]
pub enum JobError {
    /// Parse/resolve/type error in the module.
    Frontend(String),
    /// Error in the `.mlq` or `.quals` file.
    Spec(SpecError),
    /// IO error loading files.
    Io(std::io::Error),
    /// The job panicked and was isolated by [`Job::run_isolated`].
    Panic(String),
}

impl JobError {
    /// The outcome a failed job contributes to a report: front-end and
    /// spec failures are definite errors, an isolated panic is `Unknown`.
    pub fn outcome(&self) -> Outcome {
        match self {
            JobError::Panic(msg) => Outcome::Unknown(Exhaustion::with_detail(
                Phase::Driver,
                Resource::Panic,
                msg.clone(),
            )),
            JobError::Frontend(_) | JobError::Spec(_) | JobError::Io(_) => Outcome::Unsafe,
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Frontend(m) => write!(f, "{m}"),
            JobError::Spec(e) => write!(f, "{e}"),
            JobError::Io(e) => write!(f, "io error: {e}"),
            JobError::Panic(m) => write!(f, "panic: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<SpecError> for JobError {
    fn from(e: SpecError) -> JobError {
        JobError::Spec(e)
    }
}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> JobError {
        JobError::Io(e)
    }
}

impl Job {
    /// Creates a job from in-memory sources.
    pub fn from_sources(
        name: impl Into<String>,
        source: impl Into<String>,
        mlq: impl Into<String>,
        quals: impl Into<String>,
    ) -> Job {
        Job {
            name: name.into(),
            source: source.into(),
            mlq: mlq.into(),
            quals: quals.into(),
            config: SolveConfig::default(),
        }
    }

    /// Loads `base.ml` with optional `base.mlq` and `base.quals` files
    /// next to it.
    ///
    /// # Errors
    ///
    /// Fails if the `.ml` file cannot be read.
    pub fn from_path(ml_path: impl AsRef<Path>) -> Result<Job, JobError> {
        let ml_path = ml_path.as_ref();
        let source = std::fs::read_to_string(ml_path)?;
        let read_opt = |ext: &str| -> String {
            std::fs::read_to_string(ml_path.with_extension(ext)).unwrap_or_default()
        };
        Ok(Job {
            name: ml_path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "module".into()),
            source,
            mlq: read_opt("mlq"),
            quals: read_opt("quals"),
            config: SolveConfig::default(),
        })
    }

    /// Counts non-blank, non-comment source lines (the paper's LOC
    /// metric).
    pub fn loc(&self) -> usize {
        count_loc(&self.source)
    }

    /// Runs the job.
    ///
    /// # Errors
    ///
    /// Front-end failures (parse, resolve, HM type errors, malformed
    /// specs). Verification *failures* are reported in the result, not as
    /// errors.
    pub fn run(&self) -> Result<JobResult, JobError> {
        let obs = self.config.obs.clone();
        let frontend_start = Instant::now();
        let prog = {
            let _span = obs.phase_span(ObsPhase::Parse);
            parse_program(&self.source).map_err(|e| JobError::Frontend(e.to_string()))?
        };
        let (prog, data) = {
            let _span = obs.phase_span(ObsPhase::Resolve);
            let mut data = DataEnv::with_builtins();
            data.add_program(&prog.datatypes)
                .map_err(|e| JobError::Frontend(e.to_string()))?;
            let prog =
                resolve_program(&prog, &data).map_err(|e| JobError::Frontend(e.to_string()))?;
            (prog, data)
        };

        let spec_span = obs.phase_span(ObsPhase::Spec);
        let spec_file: SpecFile = parse_mlq(&self.mlq, &data)?;
        let mut quals: Vec<Qualifier> = parse_quals(&self.quals)?;
        let annotations = quals.len() + spec_file.qualifiers.len();
        quals.extend(spec_file.qualifiers.iter().cloned());
        // §6: qualifiers scraped from the properties to be proved.
        quals.extend(crate::spec::scrape_qualifiers(&spec_file.specs));

        let mut measures = MeasureEnv::new();
        for m in &spec_file.measures {
            measures
                .add(m.clone(), &data, &SortEnv::new())
                .map_err(|e| JobError::Frontend(e.to_string()))?;
        }
        drop(spec_span);

        let (ml_builtins, _) = builtin_schemes();
        let mut typed = {
            let _span = obs.phase_span(ObsPhase::Infer);
            infer_program(&prog, &data, &ml_builtins)
                .map_err(|e| JobError::Frontend(e.to_string()))?
        };

        // Specifications act as the module interface: a binding whose
        // inferred ML scheme is *more general* than its spec (e.g. a
        // witness parameter like union-find's `rank`, §6.1) is
        // specialized to the spec's shape before verification, so the
        // invariants are expressible inside the body.
        for spec in &spec_file.specs {
            let spec_shape = spec.scheme.ty.shape();
            for tl in &mut typed.lets {
                for b in &mut tl.binds {
                    if b.name != spec.name {
                        continue;
                    }
                    let scheme = dsolve_nanoml::Scheme {
                        vars: b.scheme.vars.clone(),
                        ty: b.scheme.ty.clone(),
                    };
                    if let Some(inst) =
                        dsolve_nanoml::match_instantiation(&scheme, &spec_shape)
                    {
                        // Split the instantiation into renamings (spec
                        // variable for inferred variable — the binding
                        // stays polymorphic under the spec's ids) and
                        // proper specializations (the quantifier is
                        // dropped). Renamings must keep their target in
                        // `vars`: dropping it would leave a free type
                        // variable that can never be instantiated at
                        // occurrences.
                        let mut map = std::collections::HashMap::new();
                        let mut vars: Vec<u32> = Vec::new();
                        for (v, t) in b.scheme.vars.iter().copied().zip(inst) {
                            match t {
                                dsolve_nanoml::MlType::Var(u) => {
                                    if u != v {
                                        map.insert(v, dsolve_nanoml::MlType::Var(u));
                                    }
                                    if !vars.contains(&u) {
                                        vars.push(u);
                                    }
                                }
                                t => {
                                    map.insert(v, t);
                                }
                            }
                        }
                        if !map.is_empty() {
                            b.scheme.ty = b.scheme.ty.apply(&map);
                            b.scheme.vars = vars;
                            dsolve_nanoml::apply_types(&mut b.rhs, &map);
                        }
                    }
                }
            }
        }

        let verifier = Verifier::new(data, measures)
            .with_qualifiers(quals)
            .with_specs(spec_file.specs.clone())
            .with_config(self.config.clone());
        let frontend_time = frontend_start.elapsed();

        let start = Instant::now();
        let result = verifier.verify(&typed);
        let time = start.elapsed();

        Ok(JobResult {
            result,
            time,
            frontend_time,
            loc: self.loc(),
            annotations,
            measures: spec_file.measures.len(),
            metrics: obs.snapshot(5),
        })
    }

    /// Runs the job with panic isolation: a panic anywhere in the
    /// pipeline is caught and reported as [`JobError::Panic`], so a
    /// suite driver can keep going after one pathological module.
    ///
    /// Setting the environment variable `DSOLVE_FORCE_PANIC` to the
    /// job's name (or `*`) triggers a deliberate panic — a test hook for
    /// exercising the isolation path end to end.
    ///
    /// # Errors
    ///
    /// Everything [`Job::run`] reports, plus `Panic` for caught panics.
    pub fn run_isolated(&self) -> Result<JobResult, JobError> {
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(v) = std::env::var_os("DSOLVE_FORCE_PANIC") {
                if v == std::ffi::OsStr::new(self.name.as_str()) || v == std::ffi::OsStr::new("*")
                {
                    panic!("DSOLVE_FORCE_PANIC requested for `{}`", self.name);
                }
            }
            self.run()
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Err(JobError::Panic(msg))
        })
    }
}

/// Counts non-blank lines outside `(* ... *)` comments.
pub fn count_loc(src: &str) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    for line in src.lines() {
        let mut meaningful = false;
        let b = line.as_bytes();
        let mut i = 0;
        while i < b.len() {
            if i + 1 < b.len() && b[i] == b'(' && b[i + 1] == b'*' {
                depth += 1;
                i += 2;
            } else if i + 1 < b.len() && b[i] == b'*' && b[i + 1] == b')' {
                depth -= 1;
                i += 2;
            } else {
                if depth == 0 && !b[i].is_ascii_whitespace() {
                    meaningful = true;
                }
                i += 1;
            }
        }
        if meaningful {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counting_skips_comments_and_blanks() {
        let src = "let x = 1\n\n(* a\n   comment *)\nlet y = 2  (* trailing *)\n";
        assert_eq!(count_loc(src), 2);
    }

    #[test]
    fn runs_fig1_job() {
        let job = Job::from_sources(
            "fig1",
            r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
"#,
            "",
            "qualif Pos : 0 < VV\nqualif Ub : _ <= VV\n",
        );
        let res = job.run().unwrap();
        assert!(res.is_safe(), "{:?}", res.result.errors.first().map(|e| e.to_string()));
        assert_eq!(res.annotations, 2);
        assert_eq!(res.loc, 8);
    }

    #[test]
    fn runs_sortedness_job_via_mlq() {
        let job = Job::from_sources(
            "sort",
            r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
"#,
            r#"
measure elts : 'a list -> set =
| Nil -> empty
| Cons (x, xs) -> union(single(x), elts(xs))

rho Sorted on list =
| Cons (h, t) -> t : [ Cons (h2, t2) -> h2 : { h <= VV } ]

val insertsort : xs : 'a list -> {VV : 'a list @Sorted | elts(VV) = elts(xs)}
"#,
            "qualif Ub : _ <= VV\nqualif E1 : elts(VV) = elts(_)\nqualif E2 : elts(VV) = union(single(_), elts(_))\n",
        );
        let res = job.run().unwrap();
        assert!(res.is_safe(), "{:?}", res.result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>());
    }

    #[test]
    fn reports_bugs() {
        let job = Job::from_sources(
            "bug",
            "let f x = assert (x = 0); x\nlet use = f 1\n",
            "",
            "",
        );
        let res = job.run().unwrap();
        assert!(!res.is_safe());
    }

    #[test]
    fn frontend_errors_are_job_errors() {
        let job = Job::from_sources("bad", "let x = ", "", "");
        assert!(matches!(job.run(), Err(JobError::Frontend(_))));
    }

    #[test]
    fn isolated_panic_is_reported_not_propagated() {
        // The hook matches on the job name, so concurrent tests with
        // other names are unaffected.
        let job = Job::from_sources("panicky-test-job", "let one = 1\n", "", "");
        std::env::set_var("DSOLVE_FORCE_PANIC", "panicky-test-job");
        let r = job.run_isolated();
        std::env::remove_var("DSOLVE_FORCE_PANIC");
        match r {
            Err(JobError::Panic(msg)) => {
                assert!(msg.contains("panicky-test-job"), "{msg}");
            }
            other => panic!("expected Panic, got {:?}", other.map(|_| "JobResult")),
        }
        // The error maps to a machine-readable Unknown outcome.
        let Err(e) = job.run_isolated() else {
            // Hook cleared: the job now runs normally.
            return;
        };
        panic!("unexpected error after clearing hook: {e}");
    }

    #[test]
    fn tiny_deadline_yields_unknown_not_hang() {
        let mut job = Job::from_sources(
            "deadline",
            "let f x = assert (x >= 0); x\nlet use = f 1\n",
            "",
            "qualif N : 0 <= VV\n",
        );
        job.config.budget = dsolve_logic::Budget::with_timeout(Duration::from_secs(0));
        let res = job.run().unwrap();
        let outcome = res.outcome();
        let e = outcome.exhaustion().expect("unknown outcome");
        assert_eq!(e.resource, Resource::Deadline);
        assert!(!res.is_safe());
    }
}
