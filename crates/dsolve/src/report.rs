//! Figure-10-style reporting.

use crate::driver::JobResult;
use dsolve_logic::{Exhaustion, Outcome};
use std::fmt;
use std::time::Duration;

/// The verdict column of a report row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// Every obligation was proven within budget.
    Safe,
    /// At least one obligation failed with full budget available.
    Unsafe,
    /// A budget ran out (or a panic was isolated) before a definite
    /// answer.
    Unknown(Exhaustion),
    /// The job never produced a verdict (front-end or spec error).
    Error(String),
}

impl Status {
    /// Whether the row verified.
    pub fn is_safe(&self) -> bool {
        matches!(self, Status::Safe)
    }
}

impl From<&Outcome> for Status {
    fn from(o: &Outcome) -> Status {
        match o {
            Outcome::Safe => Status::Safe,
            Outcome::Unsafe => Status::Unsafe,
            Outcome::Unknown(e) => Status::Unknown(e.clone()),
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Status::Safe => f.write_str("SAFE"),
            Status::Unsafe => f.write_str("UNSAFE"),
            Status::Unknown(e) => write!(f, "UNKNOWN ({e})"),
            Status::Error(m) => write!(f, "ERROR ({m})"),
        }
    }
}

/// One row of the results table (Fig. 10 of the paper).
#[derive(Clone, Debug)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Lines of code.
    pub loc: usize,
    /// Manual qualifier annotations.
    pub annotations: usize,
    /// Verification time.
    pub time: Duration,
    /// Verified properties.
    pub properties: String,
    /// The verdict.
    pub status: Status,
}

impl Row {
    /// Builds a row from a job result.
    pub fn from_result(program: impl Into<String>, properties: impl Into<String>, r: &JobResult) -> Row {
        Row {
            program: program.into(),
            loc: r.loc,
            annotations: r.annotations,
            time: r.time,
            properties: properties.into(),
            status: Status::from(r.outcome()),
        }
    }
}

/// The whole table, with totals (the paper's last row).
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Rows in benchmark order.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Total LOC.
    pub fn total_loc(&self) -> usize {
        self.rows.iter().map(|r| r.loc).sum()
    }

    /// Total annotations.
    pub fn total_annotations(&self) -> usize {
        self.rows.iter().map(|r| r.annotations).sum()
    }

    /// Total time.
    pub fn total_time(&self) -> Duration {
        self.rows.iter().map(|r| r.time).sum()
    }

    /// Whether every row verified.
    pub fn all_safe(&self) -> bool {
        self.rows.iter().all(|r| r.status.is_safe())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>5} {:>5} {:>8}  {:<28} Status",
            "Program", "LOC", "Ann.", "T(s)", "Property"
        )?;
        writeln!(f, "{}", "-".repeat(72))?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<12} {:>5} {:>5} {:>8.2}  {:<28} {}",
                r.program,
                r.loc,
                r.annotations,
                r.time.as_secs_f64(),
                r.properties,
                r.status
            )?;
        }
        writeln!(f, "{}", "-".repeat(72))?;
        writeln!(
            f,
            "{:<12} {:>5} {:>5} {:>8.2}",
            "Total",
            self.total_loc(),
            self.total_annotations(),
            self.total_time().as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::{Phase, Resource};

    #[test]
    fn table_totals() {
        let mut t = Table::new();
        t.push(Row {
            program: "a".into(),
            loc: 10,
            annotations: 2,
            time: Duration::from_millis(500),
            properties: "Sorted".into(),
            status: Status::Safe,
        });
        t.push(Row {
            program: "b".into(),
            loc: 20,
            annotations: 3,
            time: Duration::from_millis(1500),
            properties: "BST".into(),
            status: Status::Safe,
        });
        assert_eq!(t.total_loc(), 30);
        assert_eq!(t.total_annotations(), 5);
        assert_eq!(t.total_time(), Duration::from_millis(2000));
        assert!(t.all_safe());
        let s = t.to_string();
        assert!(s.contains("Sorted"));
        assert!(s.contains("Total"));
    }

    #[test]
    fn unknown_rows_break_all_safe_and_render_reason() {
        let mut t = Table::new();
        t.push(Row {
            program: "p".into(),
            loc: 1,
            annotations: 0,
            time: Duration::ZERO,
            properties: "X".into(),
            status: Status::Unknown(Exhaustion::new(Phase::Driver, Resource::Panic)),
        });
        assert!(!t.all_safe());
        let s = t.to_string();
        assert!(s.contains("UNKNOWN (panic exhausted in driver)"), "{s}");
    }
}
