//! Dumps generated fleet cases with their pinned sequential verdicts —
//! the helper behind the corpus workflow in `tests/corpus/README.md`.
//!
//! ```text
//! cargo run --release -p dsolve --example mkcorpus -- 42 9 10 15
//! ```
//!
//! writes `fleet-42-{9,10,15}.{ml,mlq,quals,expect}` under
//! `crates/dsolve/tests/corpus/`.

use dsolve::fleet::{fleet_budget, run_program};
use dsolve_liquid::SolveConfig;
use std::path::Path;

fn main() {
    // Injected faults are not in play here, but generated programs can
    // still panic isolated workers; keep output readable.
    std::panic::set_hook(Box::new(|_| {}));
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .expect("usage: mkcorpus <seed> <index>...");
    let indices: Vec<u64> = args.map(|s| s.parse().expect("index")).collect();
    assert!(!indices.is_empty(), "usage: mkcorpus <seed> <index>...");

    let dir = Path::new("crates/dsolve/tests/corpus");
    std::fs::create_dir_all(dir).unwrap();
    for i in indices {
        let p = dsolve_nanoml::generate(seed, i);
        let config = SolveConfig {
            budget: fleet_budget(),
            jobs: 1,
            ..SolveConfig::default()
        };
        let v = match run_program(&p.name, &p.source, &p.mlq, &p.quals, config) {
            Ok(r) => {
                if r.is_safe() {
                    "SAFE"
                } else {
                    "UNSAFE"
                }
            }
            Err(e) => panic!("{}: {e}", p.name),
        };
        let expect = match p.expectation {
            dsolve_nanoml::Expectation::Safe => "safe".to_string(),
            dsolve_nanoml::Expectation::Violating { line } => format!("violating:{line}"),
        };
        let stem = dir.join(&p.name);
        std::fs::write(stem.with_extension("ml"), &p.source).unwrap();
        std::fs::write(stem.with_extension("mlq"), &p.mlq).unwrap();
        std::fs::write(stem.with_extension("quals"), &p.quals).unwrap();
        std::fs::write(
            stem.with_extension("expect"),
            format!("verdict: {v}\nexpectation: {expect}\n"),
        )
        .unwrap();
        println!("{} -> {v} ({expect})", p.name);
    }
}
