//! Adversarial-input corpus: hostile or malformed modules, specs, and
//! qualifier files must produce *typed* errors or `Unknown` verdicts —
//! never a panic, abort, or hang. Every input runs through
//! [`Job::run_isolated`], so even an unexpected panic would surface as
//! `JobError::Panic`; the assertions below demand better than that.

use dsolve::{Job, JobError};
use dsolve_logic::Resource;
use std::time::Duration;

/// Runs a job and asserts the front end rejected it with a typed error
/// (not a panic, and not a successful verdict).
fn assert_typed_error(tag: &str, ml: &str, mlq: &str, quals: &str) {
    let job = Job::from_sources(format!("adv-{tag}"), ml, mlq, quals);
    match job.run_isolated() {
        Err(JobError::Frontend(_) | JobError::Spec(_)) => {}
        Err(JobError::Panic(m)) => panic!("{tag}: panicked instead of erroring: {m}"),
        Err(e) => panic!("{tag}: unexpected error kind: {e}"),
        Ok(_) => panic!("{tag}: hostile input was accepted"),
    }
}

/// Runs a job and asserts it completes without panicking, whatever the
/// verdict (some junk is semantically meaningless but syntactically ok).
fn assert_no_panic(tag: &str, ml: &str, mlq: &str, quals: &str) {
    let job = Job::from_sources(format!("adv-{tag}"), ml, mlq, quals);
    if let Err(JobError::Panic(m)) = job.run_isolated() {
        panic!("{tag}: panicked: {m}");
    }
}

#[test]
fn truncated_modules_are_frontend_errors() {
    for (i, src) in [
        "let x = ",
        "let rec f x =",
        "let f x = if x then",
        "let f x = match x with",
        "let f = fun",
        "type t =",
        "type t = C of",
        "let f (a, b",
        "let f x = assert (",
        "let f x = x +",
    ]
    .iter()
    .enumerate()
    {
        assert_typed_error(&format!("trunc-{i}"), src, "", "");
    }
}

#[test]
fn junk_mlq_files_are_spec_errors() {
    let ml = "let one = 1\n";
    for (i, mlq) in [
        "this is not a spec",
        "measure",
        "measure len : list -> float = | Nil -> 0",
        "rho R = | C -> x : { VV }",
        "rho R on nowhere = | C -> x : { VV }",
        "val f : nonexistent_type",
        "val f : {VV : int | 0 <",
        "val f : 'a list @Missing",
        "qualif Broken",
    ]
    .iter()
    .enumerate()
    {
        assert_typed_error(&format!("mlq-{i}"), ml, mlq, "");
    }
}

#[test]
fn ill_formed_quals_are_spec_errors() {
    let ml = "let one = 1\n";
    for (i, quals) in [
        "not a qualifier line",
        "qualif MissingColon",
        "qualif Unbalanced : ((((",
        "qualif Junk : let let let",
        "qualif Overflow : VV = 99999999999999999999999999",
    ]
    .iter()
    .enumerate()
    {
        assert_typed_error(&format!("quals-{i}"), ml, "", quals);
    }
}

#[test]
fn ill_sorted_quals_never_panic() {
    // Sort errors (booleans used as ints, unknown measures) are pruned
    // during qualifier instantiation rather than rejected up front; the
    // contract is simply that they never panic the pipeline.
    let ml = "let f x = assert (x >= 0); x\nlet use = f 1\n";
    for (i, quals) in [
        "qualif IllSorted : VV <= true",
        "qualif UnknownFn : mystery(VV) = 0",
        "qualif SelfCompare : VV < VV + VV * VV",
    ]
    .iter()
    .enumerate()
    {
        assert_no_panic(&format!("sorts-{i}"), ml, "", quals);
    }
}

#[test]
fn deeply_nested_terms_are_typed_errors_not_stack_overflows() {
    // Stack overflow aborts the whole process — catch_unwind cannot save
    // us — so depth limits in the parsers are the only line of defense.
    let deep_parens = format!("let x = {}1{}\n", "(".repeat(50_000), ")".repeat(50_000));
    assert_typed_error("deep-parens", &deep_parens, "", "");

    let deep_not = format!("let x = {}true\n", "not ".repeat(50_000));
    assert_typed_error("deep-not", &deep_not, "", "");

    let deep_mlq = format!("val f : {}int{}", "(".repeat(50_000), ")".repeat(50_000));
    assert_typed_error("deep-mlq", "let one = 1\n", &deep_mlq, "");

    let deep_qual = format!(
        "qualif Deep : {}0 <= VV{}",
        "(".repeat(50_000),
        ")".repeat(50_000)
    );
    assert_typed_error("deep-qual", "let one = 1\n", "", &deep_qual);
}

#[test]
fn tiny_deadline_is_unknown_not_a_hang() {
    let mut job = Job::from_sources(
        "adv-deadline",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
        "",
        "qualif N : 0 <= VV",
    );
    job.config.budget.timeout = Some(Duration::ZERO);
    let res = job.run_isolated().expect("front end is fine");
    let e = res
        .outcome()
        .exhaustion()
        .expect("zero deadline must exhaust");
    assert_eq!(e.resource, Resource::Deadline);
}
