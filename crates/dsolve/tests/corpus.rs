//! Replays every case in `tests/corpus/` and pins its verdict.
//!
//! Each case carries a `.expect` file recording the solver verdict
//! (sequential, deterministic fleet budget) and the interpreter ground
//! truth; see `tests/corpus/README.md` for the format and the
//! add-a-case workflow. Verdicts are pinned at `--jobs 1` *and*
//! `--jobs 4`, and violation-seeded cases additionally assert the
//! soundness half outright: they must never verify `SAFE`.

use dsolve::fleet::{fleet_budget, run_program};
use dsolve_liquid::SolveConfig;
use dsolve_nanoml::genprog::first_assert_failure;
use std::path::{Path, PathBuf};

struct Case {
    name: String,
    source: String,
    mlq: String,
    quals: String,
    verdict: String,
    expectation: String,
}

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn load_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("expect") {
            continue;
        }
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("case name")
            .to_string();
        let read = |ext: &str| {
            std::fs::read_to_string(path.with_extension(ext))
                .unwrap_or_else(|e| panic!("{name}.{ext}: {e}"))
        };
        let expect = read("expect");
        let field = |key: &str| {
            expect
                .lines()
                .find_map(|l| l.strip_prefix(key))
                .unwrap_or_else(|| panic!("{name}.expect: missing `{key}`"))
                .trim()
                .to_string()
        };
        cases.push(Case {
            source: read("ml"),
            mlq: read("mlq"),
            quals: read("quals"),
            verdict: field("verdict:"),
            expectation: field("expectation:"),
            name,
        });
    }
    assert!(!cases.is_empty(), "corpus is empty");
    cases.sort_by(|a, b| a.name.cmp(&b.name));
    cases
}

fn solver_verdict(case: &Case, jobs: usize) -> String {
    let config = SolveConfig {
        budget: fleet_budget(),
        jobs,
        ..SolveConfig::default()
    };
    match run_program(&case.name, &case.source, &case.mlq, &case.quals, config) {
        Ok(res) => {
            if res.is_safe() {
                "SAFE".to_string()
            } else {
                "UNSAFE".to_string()
            }
        }
        Err(e) => format!("ERROR({e})"),
    }
}

#[test]
fn corpus_ground_truth_matches_recorded_expectation() {
    for case in load_cases() {
        let failure = first_assert_failure(&case.source)
            .unwrap_or_else(|e| panic!("{}: interpreter error: {e}", case.name));
        let got = match failure {
            None => "safe".to_string(),
            Some(line) => format!("violating:{line}"),
        };
        assert_eq!(
            got, case.expectation,
            "{}: recorded ground truth is stale",
            case.name
        );
    }
}

#[test]
fn corpus_verdicts_are_pinned_sequential() {
    for case in load_cases() {
        let got = solver_verdict(&case, 1);
        assert_eq!(got, case.verdict, "{} (--jobs 1)", case.name);
        if case.expectation.starts_with("violating") {
            assert_ne!(got, "SAFE", "{}: soundness regression", case.name);
        }
    }
}

#[test]
fn corpus_verdicts_are_pinned_parallel() {
    for case in load_cases() {
        let got = solver_verdict(&case, 4);
        assert_eq!(got, case.verdict, "{} (--jobs 4)", case.name);
    }
}
