//! Integration tests for the `dsolve` command-line binary.

use std::io::Write;
use std::process::Command;

fn write_temp(dir: &std::path::Path, name: &str, contents: &str) {
    let mut f = std::fs::File::create(dir.join(name)).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
}

fn dsolve() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsolve"))
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsolve-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn safe_module_exits_zero() {
    let dir = tempdir("safe");
    write_temp(
        &dir,
        "m.ml",
        "let abs x = if x < 0 then 0 - x else x\nlet ok = assert (abs (0 - 2) >= 0)\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let out = dsolve().arg(dir.join("m.ml")).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("SAFE"), "{stdout}");
}

#[test]
fn unsafe_module_exits_one_with_line() {
    let dir = tempdir("unsafe");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x > 0); x\nlet bad = f 0\n",
    );
    let out = dsolve().arg(dir.join("m.ml")).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNSAFE"), "{stdout}");
    assert!(stdout.contains("line 1"), "{stdout}");
}

#[test]
fn frontend_error_exits_three() {
    let dir = tempdir("parse");
    write_temp(&dir, "m.ml", "let x = ");
    let out = dsolve().arg(dir.join("m.ml")).output().unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn annot_prints_inferred_types() {
    let dir = tempdir("annot");
    write_temp(
        &dir,
        "m.ml",
        "let rec range i j = if i > j then [] else i :: range (i + 1) j\n",
    );
    write_temp(&dir, "m.quals", "qualif U : _ <= VV\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--annot")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    // The inferred element bound of Fig. 1: i <= ν on the result list.
    assert!(stdout.contains("range ::"), "{stdout}");
    assert!(stdout.contains("i <= VV"), "{stdout}");
}

#[test]
fn stats_go_to_stderr() {
    let dir = tempdir("stats");
    write_temp(&dir, "m.ml", "let one = 1\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--stats")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("constraints="), "{stderr}");
}

#[test]
fn bad_usage_exits_three() {
    let out = dsolve().arg("--quals").output().unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn zero_timeout_exits_two_with_unknown_reason() {
    let dir = tempdir("timeout");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--timeout")
        .arg("0")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
    assert!(stdout.contains("deadline"), "{stdout}");
}

#[test]
fn query_cap_exits_two_with_unknown_reason() {
    let dir = tempdir("qcap");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--max-smt-queries")
        .arg("0")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
    assert!(stdout.contains("smt-queries"), "{stdout}");
}

#[test]
fn forced_panic_is_isolated_and_exits_two() {
    let dir = tempdir("panic");
    write_temp(&dir, "m.ml", "let one = 1\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .env("DSOLVE_FORCE_PANIC", "*")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
    assert!(stdout.contains("panic"), "{stdout}");
}

#[test]
fn non_numeric_timeout_is_bad_usage() {
    let out = dsolve().arg("--timeout").arg("soon").output().unwrap();
    assert_eq!(out.status.code(), Some(3));
}

#[test]
fn trace_out_writes_valid_chrome_trace() {
    let dir = tempdir("traceout");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let trace = dir.join("m.trace.json");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--trace-out")
        .arg(&trace)
        .arg("--jobs")
        .arg("1")
        .output()
        .unwrap();
    assert!(out.status.success());
    let summary = dsolve_obs::trace::validate_trace_file(&trace).unwrap();
    for phase in ["parse", "resolve", "infer", "constraint_gen", "fixpoint", "obligations"] {
        assert!(summary.has_span(phase), "missing `{phase}` in {:?}", summary.names);
    }
    assert!(summary.has_span_prefix("round "), "{:?}", summary.names);
    assert!(
        summary.has_span_prefix("assert on line"),
        "queries must be named by provenance: {:?}",
        summary.names
    );
}

#[test]
fn trace_out_survives_forced_panic() {
    let dir = tempdir("tracepanic");
    write_temp(&dir, "m.ml", "let one = 1\n");
    let trace = dir.join("m.trace.json");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--trace-out")
        .arg(&trace)
        .env("DSOLVE_FORCE_PANIC", "*")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // The array is closed after the isolated panic: still valid JSON.
    dsolve_obs::trace::validate_trace_file(&trace).unwrap();
}

#[test]
fn trace_out_unwritable_path_is_clean_error() {
    let dir = tempdir("tracebadpath");
    write_temp(&dir, "m.ml", "let one = 1\n");
    let bad = dir.join("no-such-dir").join("deeper").join("t.json");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--trace-out")
        .arg(&bad)
        .output()
        .unwrap();
    // A clean CLI error: exit 3 with a pointed message, no panic.
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot open trace file"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn bad_inject_fault_spec_is_clean_error() {
    let dir = tempdir("badfault");
    write_temp(&dir, "m.ml", "let one = 1\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--inject-fault")
        .arg("nonesuch")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    // The error names the known fault points.
    assert!(stderr.contains("worker-panic"), "{stderr}");
}

#[test]
fn injected_trace_io_failure_leaves_verdict_intact() {
    let dir = tempdir("traceiofault");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let trace = dir.join("m.trace.json");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--trace-out")
        .arg(&trace)
        .arg("--inject-fault")
        .arg("trace-io")
        .output()
        .unwrap();
    // The writer failure is absorbed: verification is unaffected.
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("SAFE"), "{stdout}");
    // The truncated trace still parses (viewers tolerate it too).
    dsolve_obs::trace::validate_trace_file(&trace).unwrap();
}

#[test]
fn injected_query_timeout_degrades_to_unknown() {
    let dir = tempdir("qtimeoutfault");
    // No qualifiers: the first SMT query is the obligation itself, so
    // `query-timeout@1` deterministically lands on it.
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--inject-fault")
        .arg("query-timeout@1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
    assert!(stdout.contains("injected query-timeout"), "{stdout}");
}

#[test]
fn dsolve_fault_env_is_honored() {
    let dir = tempdir("faultenv");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .env("DSOLVE_FAULT", "query-timeout@1")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("UNKNOWN"), "{stdout}");
}

#[test]
fn quiet_silences_progress_output() {
    let dir = tempdir("quiet");
    write_temp(&dir, "m.ml", "let one = assert (1 > 0)\n");
    let noisy = dsolve()
        .arg(dir.join("m.ml"))
        .env("DSOLVE_PROGRESS", "1")
        .output()
        .unwrap();
    let noisy_err = String::from_utf8_lossy(&noisy.stderr);
    assert!(noisy_err.contains("solve:"), "{noisy_err}");
    let quiet = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--quiet")
        .env("DSOLVE_PROGRESS", "1")
        .output()
        .unwrap();
    let quiet_err = String::from_utf8_lossy(&quiet.stderr);
    assert!(
        !quiet_err.contains("solve:"),
        "--quiet must suppress progress: {quiet_err}"
    );
    assert!(quiet.status.success());
}

#[test]
fn stats_report_top_constraints_with_provenance() {
    let dir = tempdir("topstats");
    write_temp(
        &dir,
        "m.ml",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
    );
    write_temp(&dir, "m.quals", "qualif N : 0 <= VV\n");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--stats")
        .arg("--jobs")
        .arg("1")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("top constraints by SMT time:"), "{stderr}");
    assert!(
        stderr.contains("assert on line"),
        "top constraints must carry NanoML source provenance: {stderr}"
    );
}

#[test]
fn annot_out_writes_file() {
    let dir = tempdir("annotout");
    write_temp(
        &dir,
        "m.ml",
        "let rec range i j = if i > j then [] else i :: range (i + 1) j\n",
    );
    write_temp(&dir, "m.quals", "qualif U : _ <= VV\n");
    let out_path = dir.join("m.annot");
    let out = dsolve()
        .arg(dir.join("m.ml"))
        .arg("--annot-out")
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let rendered = std::fs::read_to_string(&out_path).unwrap();
    assert!(rendered.contains("range ::"), "{rendered}");
}
