//! The fault matrix: every deterministic injection point run against the
//! figure-10 smoke benchmarks, asserting the robustness contract — a
//! faulted run either reports the same verdict as the clean run or
//! degrades to `UNKNOWN` (exit 2). It must never flip a definite verdict
//! (`SAFE` ↔ `UNSAFE`), and it must terminate within the budget.
//!
//! One test per benchmark so the matrix parallelizes under the default
//! test harness.

use std::path::PathBuf;
use std::process::Command;

/// Per-row wall-clock budget, matching `run_figure10.sh --smoke`.
const BUDGET_SECS: &str = "60";

/// Every fault point, with an occurrence chosen to land inside a short
/// run (`@1` for round/session-keyed points, a small `@N` for the
/// occurrence-counted query timeout).
const FAULTS: &[&str] = &[
    "worker-panic@1",
    "session-fail@1",
    "cache-poison",
    "trace-io",
    "query-timeout@3",
];

fn bench_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../benchmarks")
        .join(format!("{name}.ml"))
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum Verdict {
    Safe,
    Unsafe,
    Unknown,
}

fn run(bench: &str, extra: &[&str]) -> (Option<i32>, Verdict, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dsolve"))
        .arg(bench_path(bench))
        .args(["--timeout", BUDGET_SECS, "--jobs", "2", "--quiet"])
        .args(extra)
        .output()
        .expect("spawn dsolve");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    // Probe UNSAFE/UNKNOWN before SAFE: "UNSAFE" contains "SAFE".
    let verdict = if stdout.contains("UNSAFE") {
        Verdict::Unsafe
    } else if stdout.contains("UNKNOWN") {
        Verdict::Unknown
    } else if stdout.contains("SAFE") {
        Verdict::Safe
    } else {
        panic!(
            "no verdict from `{bench}` with {extra:?}: stdout={stdout} stderr={}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    (out.status.code(), verdict, stdout)
}

/// Runs the whole fault matrix for one benchmark.
fn fault_matrix(bench: &str) {
    let (clean_code, clean, _) = run(bench, &[]);
    match clean {
        Verdict::Safe => assert_eq!(clean_code, Some(0), "{bench} clean exit"),
        Verdict::Unsafe => assert_eq!(clean_code, Some(1), "{bench} clean exit"),
        Verdict::Unknown => assert_eq!(clean_code, Some(2), "{bench} clean exit"),
    }
    for fault in FAULTS {
        // `trace-io` is a no-op without a sink; give it one.
        let trace = std::env::temp_dir().join(format!(
            "fault-matrix-{bench}-trace-{}.json",
            std::process::id()
        ));
        let extra: Vec<&str> = if *fault == "trace-io" {
            vec!["--inject-fault", fault, "--trace-out", trace.to_str().unwrap()]
        } else {
            vec!["--inject-fault", fault]
        };
        let (code, verdict, stdout) = run(bench, &extra);
        let _ = std::fs::remove_file(&trace);
        // The contract: same verdict as the clean run, or a degraded
        // UNKNOWN — never a flipped definite answer.
        assert!(
            verdict == clean || verdict == Verdict::Unknown,
            "{bench} + {fault}: clean={clean:?} faulted={verdict:?}\n{stdout}"
        );
        match verdict {
            Verdict::Safe => assert_eq!(code, Some(0), "{bench} + {fault}\n{stdout}"),
            Verdict::Unsafe => assert_eq!(code, Some(1), "{bench} + {fault}\n{stdout}"),
            Verdict::Unknown => assert_eq!(code, Some(2), "{bench} + {fault}\n{stdout}"),
        }
    }
}

#[test]
fn fault_matrix_ralist() {
    fault_matrix("ralist");
}

#[test]
fn fault_matrix_stablesort() {
    fault_matrix("stablesort");
}

#[test]
fn fault_matrix_subvsolve() {
    fault_matrix("subvsolve");
}

#[test]
fn fault_matrix_malloc() {
    fault_matrix("malloc");
}

/// A panicking worker must quarantine, not abort: the process exits 2
/// with an UNKNOWN verdict that names the panic, and stdout still
/// carries the report line.
#[test]
fn worker_panic_degrades_not_aborts() {
    let (code, verdict, stdout) = run("malloc", &["--inject-fault", "worker-panic@1"]);
    assert_eq!(verdict, Verdict::Unknown, "{stdout}");
    assert_eq!(code, Some(2), "{stdout}");
    assert!(stdout.contains("panic"), "reason names the panic: {stdout}");
}

/// Certification on a clean run must not change the verdict, and every
/// definite verdict must carry a replayed certificate.
#[test]
fn certify_preserves_smoke_verdicts() {
    for bench in ["ralist", "malloc"] {
        let (_, clean, _) = run(bench, &[]);
        let (code, certified, stdout) = run(bench, &["--certify"]);
        assert_eq!(certified, clean, "{bench} --certify flipped: {stdout}");
        if certified == Verdict::Safe {
            assert_eq!(code, Some(0), "{stdout}");
        }
    }
}
