type 'a tr = Lf | Nd of 'a * 'a tr * 'a tr
let abs x = if x < 0 then 0 - x else x
let max2 a b = if a < b then b else a
let addk x = x + (0 - 1)
let rec tinsert x t = match t with | Lf -> Nd (x, Lf, Lf) | Nd (y, l, r) -> if x < y then Nd (y, tinsert x l, r) else Nd (y, l, tinsert x r)
let rec build xs = match xs with | [] -> Lf | y :: rest -> tinsert y (build rest)
let rec tsize t = match t with | Lf -> 0 | Nd (y, l, r) -> 1 + tsize l + tsize r
let rec tsum t = match t with | Lf -> 0 | Nd (y, l, r) -> y + tsum l + tsum r
let rec tmemb x t = match t with | Lf -> false | Nd (y, l, r) -> if x = y then true else if x < y then tmemb x l else tmemb x r
let rec theight t = match t with | Lf -> 0 | Nd (y, l, r) -> 1 + max2 (theight l) (theight r)
let check0 = assert (tmemb (0 - 6) (build [9]))