let max2 a b = if a < b then b else a
let min2 a b = if a < b then a else b
let square x = x * x
let rec sumto n = if n <= 0 then 0 else n + sumto (n - 1)
let clamp lo hi x = max2 lo (min2 hi x)
let check0 = assert (max2 (0 - 4) (min2 (0 - 8) 0) < 0)