let min2 a b = if a < b then a else b
let square x = x * x
let addk x = x + (0 - 4)
let check0 = assert (addk (min2 1 (0 - 4)) <= (0 - 7))
let check1 = assert (square (addk 4) < 2)
let check2 = assert (min2 (addk 2) (0 - 6) = (0 - 3))
let check3 = assert (square (min2 (0 - 2) 3) = 4)