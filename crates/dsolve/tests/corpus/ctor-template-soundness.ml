let zs = [9; 9; 9]
let rec append xs ys = match xs with | [] -> ys | x :: rest -> x :: append rest ys
let rec rev xs = match xs with | [] -> [] | x :: rest -> append (rev rest) [x]
let rec memb x xs = match xs with | [] -> false | y :: ys -> if x = y then true else memb x ys
let check0 = assert (memb 0 (rev (append [] [1; 1; 0; 1])) = false)
