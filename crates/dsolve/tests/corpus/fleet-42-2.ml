let max2 a b = if a < b then b else a
let min2 a b = if a < b then a else b
let square x = x * x
let addk x = x + 5
let rec length xs = match xs with | [] -> 0 | x :: rest -> 1 + length rest
let rec append xs ys = match xs with | [] -> ys | x :: rest -> x :: append rest ys
let rec mapinc xs = match xs with | [] -> [] | x :: rest -> (x + 1) :: mapinc rest
let rec insert x vs = match vs with | [] -> [x] | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec insertsort xs = match xs with | [] -> [] | x :: rest -> insert x (insertsort rest)
let rec maxl xs d = match xs with | [] -> d | x :: rest -> max2 x (maxl rest d)
let rec memb x xs = match xs with | [] -> false | y :: ys -> if x = y then true else memb x ys
let check0 = assert (memb 5 (mapinc []) = true)