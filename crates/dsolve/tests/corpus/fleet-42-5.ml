let max2 a b = if a < b then b else a
let min2 a b = if a < b then a else b
let double x = x + x
let square x = x * x
let clamp lo hi x = max2 lo (min2 hi x)
let rec length xs = match xs with | [] -> 0 | x :: rest -> 1 + length rest
let rec sum xs = match xs with | [] -> 0 | x :: rest -> x + sum rest
let rec append xs ys = match xs with | [] -> ys | x :: rest -> x :: append rest ys
let rec mapinc xs = match xs with | [] -> [] | x :: rest -> (x + 1) :: mapinc rest
let rec insert x vs = match vs with | [] -> [x] | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys
let rec memb x xs = match xs with | [] -> false | y :: ys -> if x = y then true else memb x ys
let check0 = assert (length [(0 - 8); 2; (0 - 8); 9; 7] >= 4)
let check1 = assert (length (append (mapinc [2; 0; 3]) (insert 4 [1])) <= 6)
let check2 = assert (length (insert (0 - 6) []) >= (0 - 1))