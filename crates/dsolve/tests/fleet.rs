//! Differential-fleet integration tests: determinism, oracle ground
//! truth, a small soundness smoke, and minimizer behaviour (including
//! the "injected disagreement shrinks to ≤ 30 lines" acceptance check).
//!
//! `--features slow-proptest` unlocks a deep fixed-seed soak.

use dsolve::fleet::{
    check_verdicts, disagreement_judge, fleet_budget, minimize, run_fleet, run_program,
    CaseSources, Disagreement, FleetOptions, FleetVerdict, Matrix,
};
use dsolve_liquid::SolveConfig;
use dsolve_nanoml::genprog::{first_assert_failure, generate, Expectation};

/// Injected-fault entries panic by design; keep test output readable.
fn hush_panics() {
    let _ = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
}

/// Debug builds solve ~5-10× slower; keep tier-1 wall clock in check
/// (release runs and the `slow-proptest` soak cover the larger counts).
const SMOKE_COUNT: u64 = if cfg!(debug_assertions) { 3 } else { 8 };
const JUDGE_CALLS: usize = if cfg!(debug_assertions) { 40 } else { 120 };

#[test]
fn generation_is_pure_in_the_seed() {
    for i in 0..40 {
        let a = generate(7, i);
        let b = generate(7, i);
        assert_eq!(a.source, b.source, "program {i} differs between calls");
        assert_eq!(a.mlq, b.mlq);
        assert_eq!(a.quals, b.quals);
        assert_eq!(a.expectation, b.expectation);
    }
}

#[test]
fn expectations_are_ground_truth() {
    // The interpreter re-confirms every generated expectation: this is
    // the invariant that makes a SAFE verdict on a violation-seeded
    // program a soundness bug rather than generator noise.
    for i in 0..40 {
        let p = generate(99, i);
        let failure = first_assert_failure(&p.source).expect("generated programs evaluate");
        match p.expectation {
            Expectation::Safe => assert_eq!(failure, None, "{}: unexpected failure", p.name),
            Expectation::Violating { line } => {
                assert_eq!(failure, Some(line), "{}: wrong failure line", p.name);
            }
        }
    }
}

#[test]
fn fleet_run_is_deterministic() {
    hush_panics();
    let opts = FleetOptions {
        matrix: Matrix::Quick,
        ..FleetOptions::new(3, SMOKE_COUNT)
    };
    let a = run_fleet(&opts);
    let b = run_fleet(&opts);
    assert_eq!(a.digest, b.digest, "same seed must give same verdicts");
    assert_eq!(a.disagreements.len(), b.disagreements.len());
}

#[test]
fn small_fleet_has_no_disagreements() {
    hush_panics();
    let opts = FleetOptions {
        matrix: Matrix::Quick,
        ..FleetOptions::new(42, SMOKE_COUNT)
    };
    let summary = run_fleet(&opts);
    let msgs: Vec<String> = summary
        .disagreements
        .iter()
        .map(|(n, d)| format!("{n}: {d}"))
        .collect();
    assert!(msgs.is_empty(), "fleet disagreements: {msgs:?}");
}

#[cfg(feature = "slow-proptest")]
#[test]
fn deep_fleet_has_no_disagreements() {
    hush_panics();
    let opts = FleetOptions {
        matrix: Matrix::Full,
        ..FleetOptions::new(42, 500)
    };
    let summary = run_fleet(&opts);
    let msgs: Vec<String> = summary
        .disagreements
        .iter()
        .map(|(n, d)| format!("{n}: {d}"))
        .collect();
    assert!(msgs.is_empty(), "fleet disagreements: {msgs:?}");
}

#[test]
fn lattice_rejects_flips_and_tolerates_unknowns() {
    let verdicts = vec![
        ("a".to_string(), FleetVerdict::Safe),
        ("b".to_string(), FleetVerdict::Unknown),
        ("c".to_string(), FleetVerdict::Safe),
    ];
    assert!(check_verdicts(Expectation::Safe, &verdicts).is_none());

    let flipped = vec![
        ("a".to_string(), FleetVerdict::Safe),
        ("b".to_string(), FleetVerdict::Unsafe),
    ];
    assert!(matches!(
        check_verdicts(Expectation::Safe, &flipped),
        Some(Disagreement::MatrixFlip { .. })
    ));
}

/// The acceptance check: a deliberately broken config (one that reports
/// SAFE on a violation-seeded program) is minimized to a reproducer of
/// at most 30 source lines.
#[test]
fn injected_disagreement_is_minimized_to_a_small_reproducer() {
    // Find a violation-seeded generated program.
    let p = (0..50)
        .map(|i| generate(42, i))
        .find(|p| matches!(p.expectation, Expectation::Violating { .. }))
        .expect("seed 42 generates violating programs");

    // A "broken always-SAFE verifier": the judge reproduces the
    // disagreement iff the interpreter still concretely fails an
    // assertion (the broken config would still claim SAFE for any
    // program, so only ground truth constrains the shrink).
    let mut judge =
        |s: &CaseSources| matches!(first_assert_failure(&s.source), Ok(Some(_)));
    let min = minimize(CaseSources::of(&p), &mut judge, 600);

    assert!(
        matches!(first_assert_failure(&min.source), Ok(Some(_))),
        "minimized program must still fail concretely"
    );
    assert!(
        min.source_lines() <= 30,
        "reproducer has {} lines (> 30):\n{}",
        min.source_lines(),
        min.source
    );
    // The shrink should do real work: the checks need at most a couple
    // of library functions, so most of the program drops away.
    assert!(
        min.source_lines() < p.source.lines().count(),
        "minimizer made no progress"
    );
}

/// Same shape but with the real pipeline in the judge: reproduce a
/// definite verdict from the actual solver while shrinking.
#[test]
fn minimizer_with_real_solver_judge() {
    let p = (0..50)
        .map(|i| generate(42, i))
        .find(|p| matches!(p.expectation, Expectation::Violating { .. }))
        .expect("seed 42 generates violating programs");

    // Reproduce "the sequential config reports a definite non-SAFE
    // verdict on a concretely-failing program".
    let mut judge = |s: &CaseSources| {
        if !matches!(first_assert_failure(&s.source), Ok(Some(_))) {
            return false;
        }
        let mut config = SolveConfig {
            budget: fleet_budget(),
            jobs: 1,
            ..SolveConfig::default()
        };
        config.smt.cache = true;
        match run_program("minimize", &s.source, &s.mlq, &s.quals, config) {
            Ok(res) => !res.is_safe(),
            Err(_) => false,
        }
    };
    let min = minimize(CaseSources::of(&p), &mut judge, JUDGE_CALLS);
    assert!(min.source_lines() <= 30);
    assert!(matches!(first_assert_failure(&min.source), Ok(Some(_))));
}

#[test]
fn disagreement_judge_reproduces_soundness_bugs() {
    // Regression for the constructor-template soundness bug the fleet
    // found (ungrounded fresh κ on constructions): this program was
    // verified SAFE before the fix. The judge must report "not
    // reproduced" now.
    let source = "let zs = [9; 9; 9]\n\
                  let rec append xs ys = match xs with | [] -> ys | x :: rest -> x :: append rest ys\n\
                  let rec rev xs = match xs with | [] -> [] | x :: rest -> append (rev rest) [x]\n\
                  let rec memb x xs = match xs with | [] -> false | y :: ys -> if x = y then true else memb x ys\n\
                  let check0 = assert (memb 0 (rev (append [] [1; 1; 0; 1])) = false)";
    let mlq = "measure llen : 'a list -> int =\n| Nil -> 0\n| Cons (x, xs) -> 1 + llen(xs)\n";
    let quals = "qualif LenEq : llen(VV) = llen(_)\n";
    let sources = CaseSources {
        source: source.to_string(),
        mlq: mlq.to_string(),
        quals: quals.to_string(),
    };
    let d = Disagreement::Soundness {
        configs: vec!["seq".to_string()],
    };
    let mut judge = disagreement_judge(d, Matrix::Soundness, fleet_budget());
    assert!(
        !judge(&sources),
        "soundness bug reproduced: constructor templates are ungrounded again"
    );
}
