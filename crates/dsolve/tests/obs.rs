//! Observability integration tests: accounting invariants between the
//! metrics registry and `SolveStats`, determinism of per-constraint
//! query attribution, and trace well-formedness on abnormal runs.

use dsolve::Job;
use dsolve_obs::trace::validate_trace_file;
use dsolve_obs::Obs;
use std::collections::HashMap;
use std::time::Duration;

/// A module that exercises the full pipeline: recursion, lists, an
/// assertion obligation, and enough qualifiers to force real weakening.
const SOURCE: &str = r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
"#;

const QUALS: &str = "qualif Pos : 0 < VV\nqualif Ub : _ <= VV\n";

fn job(jobs: usize) -> Job {
    let mut j = Job::from_sources("obs-test", SOURCE, "", QUALS);
    j.config.jobs = jobs;
    j.config.obs = Obs::new();
    j
}

/// The invariants every run must satisfy, regardless of worker count:
/// checks split exactly into hits and misses, misses split exactly into
/// solved and refused queries, and the latency histogram saw exactly one
/// sample per solved query.
fn assert_invariants(snap: &dsolve_obs::Snapshot) {
    assert_eq!(
        snap.checks,
        snap.cache_hits + snap.cache_misses,
        "checks must equal hits + misses"
    );
    assert_eq!(
        snap.cache_misses,
        snap.queries + snap.refused,
        "misses must equal solved + refused queries"
    );
    assert_eq!(
        snap.query_time_count, snap.queries,
        "histogram samples must equal solved queries"
    );
    assert_eq!(
        snap.query_time_buckets.iter().sum::<u64>(),
        snap.queries,
        "histogram bucket totals must equal solved queries"
    );
}

#[test]
fn accounting_consistent_sequential() {
    let j = job(1);
    let obs = j.config.obs.clone();
    let res = j.run().unwrap();
    assert!(res.is_safe());

    let snap = obs.snapshot(5);
    assert_invariants(&snap);
    assert!(snap.queries > 0, "the module must exercise the solver");

    // The registry is the single source of truth: SolveStats agrees with
    // it, and the per-worker counts sum to the shared total.
    let s = &res.result.stats;
    assert_eq!(s.smt_queries, snap.queries);
    assert_eq!(s.cache_hits, snap.cache_hits);
    assert_eq!(s.cache_lookups, snap.checks);
    assert_eq!(s.smt_sessions, snap.sessions);
    assert_eq!(s.smt_scoped_checks, snap.scoped_checks);
    assert_eq!(s.worker_queries.iter().sum::<u64>(), s.smt_queries);

    // The JobResult snapshot is taken from the same registry.
    assert_eq!(res.metrics.queries, snap.queries);

    // Cost attribution covers every solved query.
    let (_, attributed) = obs.costs().totals();
    assert_eq!(attributed, snap.queries);
}

#[test]
fn accounting_consistent_across_workers() {
    let j = job(4);
    let obs = j.config.obs.clone();
    let res = j.run().unwrap();
    assert!(res.is_safe());

    let snap = obs.snapshot(5);
    assert_invariants(&snap);
    let s = &res.result.stats;
    assert_eq!(
        s.worker_queries.iter().sum::<u64>(),
        s.smt_queries,
        "per-worker counts must sum to the shared total"
    );
    assert_eq!(s.smt_queries, snap.queries);
    assert_eq!(s.cache_hits, snap.cache_hits);
    assert_eq!(s.cache_lookups, snap.checks);
}

#[test]
fn per_constraint_query_counts_deterministic() {
    let counts = |top: Vec<dsolve_obs::ConstraintCost>| -> HashMap<u32, u64> {
        top.into_iter().map(|c| (c.constraint, c.queries)).collect()
    };
    let run = || {
        let j = job(1);
        let obs = j.config.obs.clone();
        j.run().unwrap();
        counts(obs.costs().top(usize::MAX))
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "sequential query attribution must be deterministic");
}

#[test]
fn trace_valid_after_budget_exhaustion() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dsolve-obs-deadline-{}.json", std::process::id()));
    let mut j = job(1);
    j.config.budget = dsolve_logic::Budget::with_timeout(Duration::from_secs(0));
    j.config.obs = Obs::with_trace(&path).unwrap();
    let obs = j.config.obs.clone();
    let res = j.run().unwrap();
    assert!(res.outcome().exhaustion().is_some());
    obs.finish();
    let summary = validate_trace_file(&path).unwrap();
    // Every span guard was dropped on the early exit, so complete events
    // for the phases that ran are present and well-formed.
    assert!(summary.has_span("parse"), "{:?}", summary.names);
    assert!(summary.has_span("fixpoint"), "{:?}", summary.names);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_valid_after_isolated_panic() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dsolve-obs-panic-{}.json", std::process::id()));
    let mut j = job(1);
    j.name = "obs-panic-job".into();
    j.config.obs = Obs::with_trace(&path).unwrap();
    let obs = j.config.obs.clone();
    // The hook matches on the job name, so concurrent tests keep running
    // normally.
    std::env::set_var("DSOLVE_FORCE_PANIC", "obs-panic-job");
    let r = j.run_isolated();
    std::env::remove_var("DSOLVE_FORCE_PANIC");
    assert!(matches!(r, Err(dsolve::JobError::Panic(_))));
    obs.finish();
    // The trace must still parse: finish() closes the array even though
    // the run died.
    validate_trace_file(&path).unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_names_queries_by_source_location() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dsolve-obs-origin-{}.json", std::process::id()));
    let mut j = Job::from_sources(
        "obs-origin",
        "let f x = assert (x >= 0); x\nlet use = f 1\n",
        "",
        "qualif N : 0 <= VV\n",
    );
    j.config.jobs = 1;
    j.config.obs = Obs::with_trace(&path).unwrap();
    let obs = j.config.obs.clone();
    let res = j.run().unwrap();
    assert!(res.is_safe());
    obs.finish();
    let summary = validate_trace_file(&path).unwrap();
    assert!(
        summary.has_span_prefix("assert on line"),
        "expected a query span named after the assert, got {:?}",
        summary.names
    );
    assert!(summary.has_span_prefix("round "), "{:?}", summary.names);
    let _ = std::fs::remove_file(&path);
}
