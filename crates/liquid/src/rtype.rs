//! Refinement types with recursive and polymorphic refinements.
//!
//! This module is the data model for §4 and §5 of the paper:
//!
//! * [`Refinement`] — a conjunction of concrete predicates and liquid
//!   variables `κ`, each under a *pending substitution* `θ` (§4.3);
//! * [`Rho`] — a recursive refinement matrix: one refinement per
//!   constructor per field;
//! * [`RType`] — refinement types: refined bases, dependent functions,
//!   dependent tuples, refined polytype-variable instances `α·θ` (§5),
//!   and refined datatypes carrying a top matrix, *inner* matrices for
//!   the recursive positions of the μ-body, and a top-level value
//!   refinement (where measure facts live);
//! * [`RScheme`] — type schemes quantified over (possibly witnessed)
//!   refined polytype variables `α⟨x:τ⟩`.

use dsolve_logic::{Expr, Pred, Subst, Symbol};
use dsolve_nanoml::MlType;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// A liquid (refinement) variable `κ`, to be solved by the fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KVar(pub u32);

impl KVar {
    /// Allocates a globally fresh liquid variable.
    pub fn fresh() -> KVar {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        KVar(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for KVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// One conjunct of a refinement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefAtom {
    /// A concrete predicate over `ν` and program variables.
    Conc(Pred),
    /// A liquid variable to be solved.
    KVar(KVar),
}

/// A refinement: a conjunction of atoms, each under its own pending
/// substitution (applied to the atom once `κ` is solved; applied eagerly
/// to concrete predicates).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Refinement {
    /// The conjuncts with their pending substitutions.
    pub atoms: Vec<(Subst, RefAtom)>,
}

impl Refinement {
    /// The trivial refinement `⊤`.
    pub fn top() -> Refinement {
        Refinement::default()
    }

    /// A single concrete predicate.
    pub fn pred(p: Pred) -> Refinement {
        match p {
            Pred::True => Refinement::top(),
            p => Refinement {
                atoms: vec![(Subst::new(), RefAtom::Conc(p))],
            },
        }
    }

    /// A fresh liquid variable refinement.
    pub fn fresh_kvar() -> Refinement {
        Refinement {
            atoms: vec![(Subst::new(), RefAtom::KVar(KVar::fresh()))],
        }
    }

    /// The exact refinement `ν = e` ("selfification").
    pub fn exactly(e: Expr) -> Refinement {
        Refinement::pred(Pred::eq(Expr::nu(), e))
    }

    /// Whether the refinement is syntactically `⊤`.
    pub fn is_top(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjunction of two refinements.
    #[must_use]
    pub fn and(&self, other: &Refinement) -> Refinement {
        let mut atoms = self.atoms.clone();
        atoms.extend(other.atoms.iter().cloned());
        Refinement { atoms }
    }

    /// Applies a substitution: concrete predicates are rewritten eagerly,
    /// `κ` atoms accumulate it as pending.
    #[must_use]
    pub fn subst(&self, theta: &Subst) -> Refinement {
        if theta.is_empty() {
            return self.clone();
        }
        Refinement {
            atoms: self
                .atoms
                .iter()
                .map(|(s, a)| match a {
                    RefAtom::Conc(p) => {
                        (Subst::new(), RefAtom::Conc(theta.apply_pred(&s.apply_pred(p))))
                    }
                    RefAtom::KVar(k) => (s.clone().compose(theta), RefAtom::KVar(*k)),
                })
                .collect(),
        }
    }

    /// Single-variable substitution convenience.
    #[must_use]
    pub fn subst1(&self, var: Symbol, with: &Expr) -> Refinement {
        self.subst(&Subst::single(var, with.clone()))
    }

    /// The liquid variables mentioned.
    pub fn kvars(&self) -> Vec<KVar> {
        self.atoms
            .iter()
            .filter_map(|(_, a)| match a {
                RefAtom::KVar(k) => Some(*k),
                RefAtom::Conc(_) => None,
            })
            .collect()
    }

    /// Resolves to a concrete predicate under a `κ` assignment lookup.
    pub fn concretize(&self, lookup: &impl Fn(KVar) -> Pred) -> Pred {
        Pred::and(
            self.atoms
                .iter()
                .map(|(s, a)| match a {
                    RefAtom::Conc(p) => s.apply_pred(p),
                    RefAtom::KVar(k) => s.apply_pred(&lookup(*k)),
                })
                .collect(),
        )
    }
}

impl fmt::Display for Refinement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, (s, a)) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            match a {
                RefAtom::Conc(p) => write!(f, "{p}")?,
                RefAtom::KVar(k) => write!(f, "{s}{k}")?,
            }
        }
        Ok(())
    }
}

/// A recursive refinement matrix: `entries[(ctor_ix, field_ix)]` refines
/// the given field of the given constructor (absent entries are `⊤`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Rho {
    /// Matrix entries.
    pub entries: BTreeMap<(usize, usize), Refinement>,
}

impl Rho {
    /// The all-`⊤` matrix.
    pub fn top() -> Rho {
        Rho::default()
    }

    /// The entry at `(ctor, field)` (`⊤` when absent).
    pub fn entry(&self, ctor: usize, field: usize) -> Refinement {
        self.entries
            .get(&(ctor, field))
            .cloned()
            .unwrap_or_default()
    }

    /// Sets an entry.
    pub fn set(&mut self, ctor: usize, field: usize, r: Refinement) {
        if !r.is_top() {
            self.entries.insert((ctor, field), r);
        }
    }

    /// Pointwise conjunction (the paper's normalization of adjacent
    /// refinements `(ρ)(ρ')`).
    #[must_use]
    pub fn compose(&self, other: &Rho) -> Rho {
        let mut out = self.clone();
        for (k, r) in &other.entries {
            let merged = out.entry(k.0, k.1).and(r);
            out.entries.insert(*k, merged);
        }
        out
    }

    /// Applies a substitution to every entry.
    #[must_use]
    pub fn subst(&self, theta: &Subst) -> Rho {
        Rho {
            entries: self
                .entries
                .iter()
                .map(|(k, r)| (*k, r.subst(theta)))
                .collect(),
        }
    }

    /// All liquid variables in the matrix.
    pub fn kvars(&self) -> Vec<KVar> {
        self.entries.values().flat_map(|r| r.kvars()).collect()
    }

    /// Whether every entry is `⊤`.
    pub fn is_top(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for Rho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, ((c, j), r)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{c}.{j}:{r}")?;
        }
        write!(f, "⟩")
    }
}

/// Base types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaseTy {
    /// Integers.
    Int,
    /// Booleans.
    Bool,
    /// Unit.
    Unit,
}

/// A refined datatype occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataRType {
    /// Type constructor name.
    pub name: Symbol,
    /// Refined type arguments.
    pub targs: Vec<RType>,
    /// Top recursive refinement matrix (applied at the next unfold).
    pub rho: Rho,
    /// Inner matrices: for each *recursive field position* `(ctor,
    /// field)` of the μ-body, the matrix applied to that sub-structure.
    /// Entry predicates may mention the canonical field names of the
    /// enclosing constructor (see [`field_name`]) and are renamed to the
    /// actual binders at unfold time.
    pub inner: BTreeMap<(usize, usize), Rho>,
    /// Top-level refinement of the value itself (measure facts).
    pub refinement: Refinement,
}

/// The canonical logical name of field `field` of constructor `ctor` of
/// datatype `decl` — the μ-bound names `x₁, x₂, …` of the paper, made
/// globally unambiguous.
pub fn field_name(decl: Symbol, ctor: Symbol, field: usize) -> Symbol {
    Symbol::new(&format!("{decl}#{ctor}#{field}"))
}

/// Creates a *witness* variable for a refined polytype quantifier
/// `α⟨x:τ⟩` (§5). Witness names are syntactically reserved so that
/// pending substitutions on polytype instances track exactly the
/// witnesses — ordinary program-variable substitutions rewrite pending
/// right-hand sides but never extend the pending domain.
pub fn witness_symbol(tag: &str) -> Symbol {
    Symbol::new(&format!("wit#{tag}"))
}

/// Whether a symbol is a witness variable.
pub fn is_witness(s: Symbol) -> bool {
    s.as_str().starts_with("wit#")
}

/// A refinement type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RType {
    /// A refined base type `{ν:B | r}`.
    Base(BaseTy, Refinement),
    /// A dependent function `x:T₁ → T₂` (the binder may occur in `T₂`).
    Fun(Symbol, Box<RType>, Box<RType>),
    /// A dependent tuple `⟨x₁:T₁; …; xₙ:Tₙ⟩` (later refinements may
    /// mention earlier binders).
    Tuple(Vec<(Symbol, RType)>),
    /// A refined polytype-variable instance `{ν : α·θ | r}` — `θ` is the
    /// pending substitution of §5 (`α[y/x]`), applied when `α` is
    /// instantiated.
    TyVar(u32, Subst, Refinement),
    /// A refined datatype.
    Data(DataRType),
}

impl RType {
    /// `{ν:int | ⊤}`.
    pub fn int() -> RType {
        RType::Base(BaseTy::Int, Refinement::top())
    }

    /// `{ν:bool | ⊤}`.
    pub fn bool() -> RType {
        RType::Base(BaseTy::Bool, Refinement::top())
    }

    /// `unit`.
    pub fn unit() -> RType {
        RType::Base(BaseTy::Unit, Refinement::top())
    }

    /// `{ν:int | p}`.
    pub fn int_pred(p: Pred) -> RType {
        RType::Base(BaseTy::Int, Refinement::pred(p))
    }

    /// The top-level refinement of a value type (`⊤` for functions).
    pub fn refinement(&self) -> Refinement {
        match self {
            RType::Base(_, r) | RType::TyVar(_, _, r) => r.clone(),
            RType::Data(d) => d.refinement.clone(),
            RType::Fun(..) | RType::Tuple(_) => Refinement::top(),
        }
    }

    /// Replaces the top-level refinement.
    #[must_use]
    pub fn with_refinement(&self, r: Refinement) -> RType {
        match self {
            RType::Base(b, _) => RType::Base(*b, r),
            RType::TyVar(v, s, _) => RType::TyVar(*v, s.clone(), r),
            RType::Data(d) => RType::Data(DataRType {
                refinement: r,
                ..d.clone()
            }),
            other => other.clone(),
        }
    }

    /// Conjoins a refinement onto the top level (the `(e)(ρ…)`
    /// strengthening of [▷-PROD]).
    #[must_use]
    pub fn strengthen(&self, r: &Refinement) -> RType {
        if r.is_top() {
            return self.clone();
        }
        self.with_refinement(self.refinement().and(r))
    }

    /// Strengthens with `ν = e` when the type admits a refinement.
    #[must_use]
    pub fn selfify(&self, e: Expr) -> RType {
        match self {
            RType::Fun(..) | RType::Tuple(_) => self.clone(),
            _ => self.strengthen(&Refinement::exactly(e)),
        }
    }

    /// Applies a substitution to every refinement (capture is avoided by
    /// construction: binders are globally fresh symbols).
    #[must_use]
    pub fn subst(&self, theta: &Subst) -> RType {
        if theta.is_empty() {
            return self.clone();
        }
        match self {
            RType::Base(b, r) => RType::Base(*b, r.subst(theta)),
            RType::Fun(x, t1, t2) => RType::Fun(
                *x,
                Box::new(t1.subst(theta)),
                Box::new(t2.subst(theta)),
            ),
            RType::Tuple(fields) => RType::Tuple(
                fields
                    .iter()
                    .map(|(x, t)| (*x, t.subst(theta)))
                    .collect(),
            ),
            RType::TyVar(v, pending, r) => {
                // Rewrite the pending right-hand sides; extend the domain
                // only with witness variables (see [`witness_symbol`]).
                let mut new_pending = Subst::new();
                for (x, e) in pending.pairs() {
                    new_pending = new_pending.then(*x, theta.apply_expr(e));
                }
                for (x, e) in theta.pairs() {
                    if is_witness(*x) {
                        new_pending = new_pending.then(*x, e.clone());
                    }
                }
                RType::TyVar(*v, new_pending, r.subst(theta))
            }
            RType::Data(d) => RType::Data(DataRType {
                name: d.name,
                targs: d.targs.iter().map(|t| t.subst(theta)).collect(),
                rho: d.rho.subst(theta),
                inner: d
                    .inner
                    .iter()
                    .map(|(k, m)| (*k, m.subst(theta)))
                    .collect(),
                refinement: d.refinement.subst(theta),
            }),
        }
    }

    /// Single-variable substitution convenience.
    #[must_use]
    pub fn subst1(&self, var: Symbol, with: &Expr) -> RType {
        self.subst(&Subst::single(var, with.clone()))
    }

    /// The ML shape (refinement erasure), given a resolver for type
    /// variables.
    pub fn shape(&self) -> MlType {
        match self {
            RType::Base(BaseTy::Int, _) => MlType::Int,
            RType::Base(BaseTy::Bool, _) => MlType::Bool,
            RType::Base(BaseTy::Unit, _) => MlType::Unit,
            RType::Fun(_, a, b) => {
                MlType::Arrow(Box::new(a.shape()), Box::new(b.shape()))
            }
            RType::Tuple(fields) => {
                MlType::Tuple(fields.iter().map(|(_, t)| t.shape()).collect())
            }
            RType::TyVar(v, _, _) => MlType::Var(*v),
            RType::Data(d) => {
                MlType::Data(d.name, d.targs.iter().map(|t| t.shape()).collect())
            }
        }
    }

    /// All liquid variables in the type.
    pub fn kvars(&self) -> Vec<KVar> {
        let mut out = Vec::new();
        self.collect_kvars(&mut out);
        out
    }

    fn collect_kvars(&self, out: &mut Vec<KVar>) {
        match self {
            RType::Base(_, r) | RType::TyVar(_, _, r) => out.extend(r.kvars()),
            RType::Fun(_, a, b) => {
                a.collect_kvars(out);
                b.collect_kvars(out);
            }
            RType::Tuple(fields) => {
                for (_, t) in fields {
                    t.collect_kvars(out);
                }
            }
            RType::Data(d) => {
                out.extend(d.refinement.kvars());
                out.extend(d.rho.kvars());
                for m in d.inner.values() {
                    out.extend(m.kvars());
                }
                for t in &d.targs {
                    t.collect_kvars(out);
                }
            }
        }
    }
}

impl fmt::Display for RType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RType::Base(b, r) => {
                let name = match b {
                    BaseTy::Int => "int",
                    BaseTy::Bool => "bool",
                    BaseTy::Unit => "unit",
                };
                if r.is_top() {
                    write!(f, "{name}")
                } else {
                    write!(f, "{{VV:{name} | {r}}}")
                }
            }
            RType::Fun(x, a, b) => write!(f, "{x}:{a} -> {b}"),
            RType::Tuple(fields) => {
                write!(f, "⟨")?;
                for (i, (x, t)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{x}:{t}")?;
                }
                write!(f, "⟩")
            }
            RType::TyVar(v, pending, r) => {
                if r.is_top() {
                    write!(f, "'t{v}{pending}")
                } else {
                    write!(f, "{{VV:'t{v}{pending} | {r}}}")
                }
            }
            RType::Data(d) => {
                if !d.refinement.is_top() {
                    write!(f, "{{VV:")?;
                }
                if !d.targs.is_empty() {
                    write!(f, "(")?;
                    for (i, t) in d.targs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ") ")?;
                }
                if !d.rho.is_top() {
                    write!(f, "({}) ", d.rho)?;
                }
                write!(f, "{}", d.name)?;
                for ((c, j), m) in &d.inner {
                    if !m.is_top() {
                        write!(f, " inner[{c}.{j}]={m}")?;
                    }
                }
                if !d.refinement.is_top() {
                    write!(f, " | {}}}", d.refinement)?;
                }
                Ok(())
            }
        }
    }
}

/// A quantified refined polytype variable `α` or `α⟨x:τ⟩`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RVarDecl {
    /// The ML type-variable id.
    pub var: u32,
    /// Optional witness binder `⟨x:τ⟩` that instantiations may mention.
    pub witness: Option<(Symbol, MlType)>,
}

/// A refinement type scheme `∀ᾱ.T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RScheme {
    /// Quantified variables, aligned with the ML scheme's order.
    pub vars: Vec<RVarDecl>,
    /// Body.
    pub ty: RType,
}

impl RScheme {
    /// A monomorphic scheme.
    pub fn mono(ty: RType) -> RScheme {
        RScheme { vars: vec![], ty }
    }
}

impl fmt::Display for RScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            write!(f, "forall")?;
            for v in &self.vars {
                match &v.witness {
                    Some((x, t)) => write!(f, " 't{}⟨{x}:{t}⟩", v.var)?,
                    None => write!(f, " 't{}", v.var)?,
                }
            }
            write!(f, ". ")?;
        }
        write!(f, "{}", self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_pred;

    #[test]
    fn refinement_and_flattens() {
        let a = Refinement::pred(parse_pred("0 < VV").unwrap());
        let b = Refinement::top();
        assert_eq!(a.and(&b).atoms.len(), 1);
        assert!(Refinement::pred(Pred::True).is_top());
    }

    #[test]
    fn subst_is_eager_on_concrete_pending_on_kvars() {
        let x = Symbol::new("x");
        let mut r = Refinement::pred(parse_pred("x <= VV").unwrap());
        r.atoms.push((Subst::new(), RefAtom::KVar(KVar::fresh())));
        let s = r.subst1(x, &Expr::int(3));
        match &s.atoms[0].1 {
            RefAtom::Conc(p) => assert_eq!(p.to_string(), "(3 <= VV)"),
            _ => panic!(),
        }
        match &s.atoms[1] {
            (theta, RefAtom::KVar(_)) => assert_eq!(theta.to_string(), "[3/x]"),
            _ => panic!(),
        }
    }

    #[test]
    fn rho_compose_conjoins() {
        let mut r1 = Rho::top();
        r1.set(1, 0, Refinement::pred(parse_pred("0 < VV").unwrap()));
        let mut r2 = Rho::top();
        r2.set(1, 0, Refinement::pred(parse_pred("x <= VV").unwrap()));
        r2.set(1, 1, Refinement::pred(parse_pred("VV < 9").unwrap()));
        let c = r1.compose(&r2);
        assert_eq!(c.entry(1, 0).atoms.len(), 2);
        assert_eq!(c.entry(1, 1).atoms.len(), 1);
        assert!(c.entry(0, 0).is_top());
    }

    #[test]
    fn selfify_strengthens() {
        let t = RType::int().selfify(Expr::var("x"));
        assert_eq!(t.to_string(), "{VV:int | (VV = x)}");
        // Functions are unaffected.
        let f = RType::Fun(
            Symbol::new("a"),
            Box::new(RType::int()),
            Box::new(RType::int()),
        );
        assert_eq!(f.selfify(Expr::var("x")), f);
    }

    #[test]
    fn shape_erases_refinements() {
        let t = RType::Data(DataRType {
            name: Symbol::new("list"),
            targs: vec![RType::int_pred(parse_pred("0 < VV").unwrap())],
            rho: Rho::top(),
            inner: BTreeMap::new(),
            refinement: Refinement::pred(parse_pred("len(VV) = 3").unwrap()),
        });
        assert_eq!(t.shape(), MlType::list(MlType::Int));
    }

    #[test]
    fn tyvar_pending_tracks_witnesses_only() {
        let t = RType::TyVar(0, Subst::new(), Refinement::top());
        // Ordinary program variables do not extend the pending domain…
        let t2 = t.subst1(Symbol::new("x"), &Expr::var("k"));
        let RType::TyVar(_, pending, _) = &t2 else { panic!() };
        assert!(pending.is_empty());
        // …witness variables do.
        let w = witness_symbol("t");
        let t3 = t.subst1(w, &Expr::var("k"));
        let RType::TyVar(_, pending, _) = &t3 else { panic!() };
        assert_eq!(pending.to_string(), format!("[k/{w}]"));
        // And later substitutions rewrite pending right-hand sides.
        let t4 = t3.subst1(Symbol::new("k"), &Expr::int(7));
        let RType::TyVar(_, pending, _) = &t4 else { panic!() };
        assert_eq!(pending.to_string(), format!("[7/{w}]"));
    }

    #[test]
    fn kvars_collected_from_all_positions() {
        let mut rho = Rho::top();
        rho.set(0, 0, Refinement::fresh_kvar());
        let mut inner = BTreeMap::new();
        let mut im = Rho::top();
        im.set(1, 0, Refinement::fresh_kvar());
        inner.insert((1, 1), im);
        let t = RType::Data(DataRType {
            name: Symbol::new("list"),
            targs: vec![RType::Base(BaseTy::Int, Refinement::fresh_kvar())],
            rho,
            inner,
            refinement: Refinement::fresh_kvar(),
        });
        assert_eq!(t.kvars().len(), 4);
    }

    #[test]
    fn field_names_are_canonical() {
        assert_eq!(
            field_name(Symbol::new("list"), Symbol::new("Cons"), 0),
            field_name(Symbol::new("list"), Symbol::new("Cons"), 0)
        );
        assert_ne!(
            field_name(Symbol::new("list"), Symbol::new("Cons"), 0),
            field_name(Symbol::new("list"), Symbol::new("Cons"), 1)
        );
    }
}
