//! The liquid fixpoint solver: iterative weakening over qualifier
//! instantiations [Rondon et al., PLDI 2008], with the SMT solver
//! discharging each implication.
//!
//! Each liquid variable `κ` starts at the strongest conjunction of
//! well-sorted instantiations of the qualifier set in its scope. Every
//! constraint whose right side is `θ·κ` removes from `A(κ)` the
//! qualifiers the left side fails to imply; the process is monotone and
//! terminates. Constraints with concrete right sides are verified under
//! the final assignment and produce the reported errors.
//!
//! # Parallel mode
//!
//! With `jobs > 1` the solver runs the fixpoint in *rounds*: the pending
//! worklist is drained, partitioned into groups of constraints with
//! disjoint **write** κ-sets (constraints writing a common κ always land
//! in the same partition), and each partition is checked on its own
//! worker thread against a read-only snapshot of the assignment. Reads
//! may cross partitions and see one-round-stale values; that is ordinary
//! chaotic iteration of a monotone operator — every constraint reading a
//! changed κ is re-enqueued after the merge, so the iteration still
//! converges to the same greatest fixpoint the sequential schedule
//! finds. Weakenings are merged in deterministic (worker, κ) order, and
//! all workers share one [`QueryCache`] and one atomic query counter so
//! `--max-smt-queries` caps the *total* across threads.

use crate::constraint::{LiquidError, SubC};
use crate::env::{GlobalEnv, KEnv};
use crate::rtype::{KVar, RefAtom};
use dsolve_logic::{
    deadline_expired, instantiate_all, Budget, Exhaustion, FaultPlan, FaultPoint, Outcome, Phase,
    Pred, Qualifier, Resource, Symbol,
};
use dsolve_obs::{log_debug, log_info, Obs, ObsPhase, QueryOrigin};
use dsolve_smt::{QueryCache, SmtSolver, SolverConfig, Validity};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics from a solver run.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Number of liquid variables.
    pub kvars: usize,
    /// Total initial qualifier instantiations.
    pub initial_quals: usize,
    /// SMT queries actually *solved* during this run (each charged one
    /// unit against `--max-smt-queries`). Sourced from the metrics
    /// registry — the single accounting authority — so cache hits are
    /// excluded and the total always equals the sum of
    /// `worker_queries`.
    pub smt_queries: u64,
    /// Fixpoint iterations (constraint re-checks).
    pub iterations: u64,
    /// Wall-clock time spent in the weakening fixpoint.
    pub fixpoint_time: Duration,
    /// Wall-clock time spent checking concrete obligations.
    pub obligation_time: Duration,
    /// Worker threads used (1 = sequential).
    pub jobs: usize,
    /// Parallel fixpoint rounds (0 in sequential mode).
    pub rounds: u64,
    /// Constraints in the largest single partition of any round.
    pub max_partition: usize,
    /// SMT queries issued per worker (index = worker id).
    pub worker_queries: Vec<u64>,
    /// Constraint checks per worker (aggregate partition sizes).
    pub worker_checks: Vec<u64>,
    /// Validity checks answered from the query cache, across all
    /// workers (from the metrics registry).
    pub cache_hits: u64,
    /// Validity checks requested of the SMT layer across all workers
    /// (from the metrics registry): `cache_hits + cache_misses`.
    pub cache_lookups: u64,
    /// Incremental SMT sessions opened across all workers (0 when
    /// incremental solving is disabled).
    pub smt_sessions: u64,
    /// Consequents decided under an assertion scope inside those
    /// sessions; `smt_scoped_checks / smt_sessions` is the average
    /// batch size — how much antecedent encoding was reused.
    pub smt_scoped_checks: u64,
}

impl SolveStats {
    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// The result of solving.
pub struct Solution {
    /// Final qualifier assignment per liquid variable.
    pub assignment: HashMap<KVar, Vec<Pred>>,
    /// Errors from concrete obligations that failed.
    pub errors: Vec<LiquidError>,
    /// Run statistics.
    pub stats: SolveStats,
    /// The first budget exhaustion that tainted the run, if any. When
    /// set, an empty `errors` list does **not** mean the module was
    /// proven safe.
    pub exhaustion: Option<Exhaustion>,
}

impl Solution {
    /// The solved refinement of `κ` as a single predicate.
    pub fn pred_of(&self, k: KVar) -> Pred {
        Pred::and(self.assignment.get(&k).cloned().unwrap_or_default())
    }

    /// The three-valued outcome of the run. Any exhaustion forces
    /// `Unknown`: a fixpoint cut short leaves the assignment too strong,
    /// so even clean obligations cannot be trusted as `Safe`.
    pub fn outcome(&self) -> Outcome {
        if let Some(e) = &self.exhaustion {
            Outcome::Unknown(e.clone())
        } else if self.errors.is_empty() {
            Outcome::Safe
        } else {
            Outcome::Unsafe
        }
    }
}

/// Solver configuration.
#[derive(Clone, Debug, Default)]
pub struct SolveConfig {
    /// SMT configuration. Its `budget` field is ignored: `budget` below
    /// is the single source of truth and is pushed into the SMT solver.
    pub smt: SolverConfig,
    /// Resource limits for the whole run (deadline, query cap, fixpoint
    /// iteration cap, per-query search caps).
    pub budget: Budget,
    /// Fixpoint worker threads: `0` = one per available CPU, `1` = the
    /// sequential solver, `n` = exactly `n` workers.
    pub jobs: usize,
    /// Disables incremental (assertion-scope) SMT batching: every
    /// implication goes through the scratch `check_valid` path. The
    /// `DSOLVE_NO_INCREMENTAL` environment variable forces this too.
    pub no_incremental: bool,
    /// Observability handle: the metrics registry every SMT query and
    /// fixpoint event records into, plus the optional trace sink.
    /// Cloning the config shares the handle (it is an `Arc`), so one
    /// registry spans all phases of a verification job.
    pub obs: Obs,
    /// Deterministic fault-injection plan (`--inject-fault` /
    /// `DSOLVE_FAULT`), shared with every SMT solver this run creates so
    /// occurrence counts span workers. `None` in production runs.
    pub fault: Option<Arc<FaultPlan>>,
}

/// Whether this run batches implications through incremental SMT
/// sessions (the default) or issues every query from scratch.
fn use_incremental(config: &SolveConfig) -> bool {
    !config.no_incremental && std::env::var_os("DSOLVE_NO_INCREMENTAL").is_none()
}

/// Resolves `config.jobs` (`0` = available parallelism).
pub fn effective_jobs(config: &SolveConfig) -> usize {
    match config.jobs {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Runs the iterative-weakening fixpoint.
pub fn solve(
    genv: &GlobalEnv,
    kenv: &KEnv,
    subs: &[SubC],
    quals: &[Qualifier],
    config: &SolveConfig,
) -> Solution {
    let jobs = effective_jobs(config);
    if jobs <= 1 {
        solve_sequential(genv, kenv, subs, quals, config)
    } else {
        solve_parallel(genv, kenv, subs, quals, config, jobs)
    }
}

/// The initial assignment: all well-sorted qualifier instantiations per
/// κ scope.
fn initial_assignment(
    kenv: &KEnv,
    quals: &[Qualifier],
    stats: &mut SolveStats,
) -> HashMap<KVar, Vec<Pred>> {
    let mut assignment: HashMap<KVar, Vec<Pred>> = HashMap::new();
    for k in kenv.kvars() {
        let info = kenv.info(k).expect("registered kvar");
        let insts = instantiate_all(quals, &info.scope, &info.nu_sort);
        stats.initial_quals += insts.len();
        assignment.insert(k, insts);
    }
    stats.kvars = assignment.len();
    assignment
}

/// A read view over the assignment: a base map plus (in workers) a local
/// overlay holding this partition's own weakenings.
struct View<'a> {
    base: &'a HashMap<KVar, Vec<Pred>>,
    local: Option<&'a HashMap<KVar, Vec<Pred>>>,
}

impl View<'_> {
    fn get(&self, k: KVar) -> Vec<Pred> {
        if let Some(local) = self.local {
            if let Some(v) = local.get(&k) {
                return v.clone();
            }
        }
        self.base.get(&k).cloned().unwrap_or_default()
    }

    fn pred_of(&self, k: KVar) -> Pred {
        Pred::and(self.get(k))
    }
}

/// Checks one constraint, weakening the κs on its right side. Returns
/// `(κ, survivors)` for every κ whose candidate set shrank.
///
/// Query accounting happens inside the SMT solver (metrics registry +
/// per-solver `solved_queries`); this function no longer counts.
fn weaken_constraint(
    genv: &GlobalEnv,
    c: &SubC,
    view: &View<'_>,
    smt: &mut SmtSolver,
    incremental: bool,
) -> Vec<(KVar, Vec<Pred>)> {
    let lookup = |k: KVar| view.pred_of(k);
    let (mut sorts, antecedent) = c.env.embed(genv, &lookup);
    bind_nu(&mut sorts, &c.nu_shape);
    let lhs = filter_wellsorted(&sorts, c.lhs.concretize(&lookup));

    // Check each κ atom on the right; collect survivors.
    let mut weakened: Vec<(KVar, Vec<Pred>)> = Vec::new();
    for (theta, atom) in &c.rhs.atoms {
        let RefAtom::KVar(k) = atom else { continue };
        let quals_k = view.get(*k);
        if quals_k.is_empty() {
            continue;
        }
        // Relevance pruning: during weakening, restrict the
        // antecedent to conjuncts transitively sharing variables
        // with the left side and the candidate qualifiers. Always
        // sound (weakens the antecedent); dramatically shrinks the
        // per-query formulas.
        let rhs_preds: Vec<Pred> = quals_k.iter().map(|q| theta.apply_pred(q)).collect();
        let mut seeds: std::collections::BTreeSet<Symbol> = lhs.free_vars();
        for p in &rhs_preds {
            seeds.extend(p.free_vars());
        }
        let no_prune = std::env::var_os("DSOLVE_NO_PRUNE").is_some();
        let pruned = if no_prune {
            antecedent.clone()
        } else {
            prune_conjuncts(antecedent.clone(), &mut seeds)
        };
        let lhs_full = Pred::and(vec![pruned, lhs.clone()]);
        // Pruning is a fast path, not a semantics: failures are
        // retried against the full antecedent before a qualifier is
        // dropped for good.
        let lhs_unpruned = Pred::and(vec![antecedent.clone(), lhs.clone()]);
        let lhs_conjuncts: std::collections::HashSet<Pred> =
            lhs_full.clone().conjuncts().into_iter().collect();
        // Partition the candidates: syntactic hits, ill-sorted
        // transports, and the rest — checked in bisected groups
        // (most candidates survive most checks, so testing the whole
        // conjunction first usually costs a single query).
        let mut kept = Vec::with_capacity(quals_k.len());
        let mut to_check: Vec<(Pred, Pred)> = Vec::new();
        let prev_len = quals_k.len();
        for (q, rhs_q) in quals_k.into_iter().zip(rhs_preds) {
            if lhs_conjuncts.contains(&rhs_q) {
                kept.push(q);
            } else if sorts.wellsorted(&rhs_q) {
                to_check.push((q, rhs_q));
            }
        }
        if incremental {
            check_group_batched(smt, &sorts, &lhs_full, Some(&lhs_unpruned), &to_check, &mut kept);
        } else {
            check_group(smt, &sorts, &lhs_full, Some(&lhs_unpruned), &to_check, &mut kept);
        }
        if kept.len() < prev_len {
            if dsolve_obs::log::enabled(dsolve_obs::log::Level::Debug) {
                let removed: Vec<String> = view
                    .get(*k)
                    .iter()
                    .filter(|q| !kept.contains(q))
                    .map(ToString::to_string)
                    .collect();
                let lhs_state: Vec<String> = c
                    .lhs
                    .kvars()
                    .iter()
                    .map(|lk| format!("{lk}={}", view.pred_of(*lk)))
                    .collect();
                log_debug!(
                    "weaken {k} at [{}]: drop {removed:?}\n    lhs: {lhs_full}\n    raw-lhs: {} raw-rhs: {}\n    lhs-assignment: {lhs_state:?}",
                    c.origin, c.lhs, c.rhs
                );
            }
            weakened.push((*k, kept));
        }
    }
    weakened
}

/// Checks the concrete right-hand conjuncts of one constraint under the
/// final assignment. Returns the errors and the first exhaustion hit.
fn check_obligations(
    genv: &GlobalEnv,
    c: &SubC,
    assignment: &HashMap<KVar, Vec<Pred>>,
    smt: &mut SmtSolver,
    incremental: bool,
) -> (Vec<LiquidError>, Option<Exhaustion>) {
    let mut errors = Vec::new();
    let mut exhaustion: Option<Exhaustion> = None;
    let lookup =
        |k: KVar| Pred::and(assignment.get(&k).cloned().unwrap_or_default());
    let (mut sorts, antecedent) = c.env.embed(genv, &lookup);
    bind_nu(&mut sorts, &c.nu_shape);
    let lhs = filter_wellsorted(&sorts, c.lhs.concretize(&lookup));
    let lhs_full = Pred::and(vec![antecedent, lhs]);
    // Collect the concrete conjuncts first so the incremental path can
    // decide them all in one session (the antecedent is encoded once);
    // errors are still emitted in atom order, identical to the scalar
    // path.
    let mut obligations: Vec<(Pred, bool)> = Vec::new();
    for (theta, atom) in &c.rhs.atoms {
        let RefAtom::Conc(p) = atom else { continue };
        let rhs = theta.apply_pred(p);
        let wellsorted = sorts.wellsorted(&rhs);
        obligations.push((rhs, wellsorted));
    }
    let mut batched = if incremental {
        let rhss: Vec<Pred> = obligations
            .iter()
            .filter(|(_, ws)| *ws)
            .map(|(rhs, _)| rhs.clone())
            .collect();
        if rhss.len() > 1 {
            Some(smt.check_valid_many(&sorts, &lhs_full, &rhss).into_iter())
        } else {
            None
        }
    } else {
        None
    };
    for (rhs, wellsorted) in obligations {
        if !wellsorted {
            errors.push(LiquidError {
                msg: format!("obligation `{rhs}` is ill-sorted"),
                origin: Some(c.origin.clone()),
            });
            continue;
        }
        let verdict = match batched.as_mut().and_then(Iterator::next) {
            Some(v) => v,
            None => smt.check_valid(&sorts, &lhs_full, &rhs),
        };
        match verdict {
            Validity::Valid => continue,
            Validity::Unknown(e) => {
                // The obligation is neither proven nor refuted:
                // report it as unproven and taint the outcome.
                errors.push(LiquidError {
                    msg: format!("obligation `{rhs}` unproven: {e}"),
                    origin: Some(c.origin.clone()),
                });
                exhaustion.get_or_insert(e);
                continue;
            }
            Validity::Invalid => {}
        }
        {
            let msg = if dsolve_obs::log::enabled(dsolve_obs::log::Level::Debug) {
                let ks: Vec<String> = c
                    .lhs
                    .kvars()
                    .iter()
                    .map(|lk| {
                        format!(
                            "{lk}={}",
                            Pred::and(assignment.get(lk).cloned().unwrap_or_default())
                        )
                    })
                    .collect();
                format!(
                    "cannot prove `{rhs}`\n    from: {lhs_full}\n    raw: {} | {ks:?}",
                    c.lhs
                )
            } else {
                format!("cannot prove `{rhs}`")
            };
            errors.push(LiquidError {
                msg,
                origin: Some(c.origin.clone()),
            });
        }
    }
    (errors, exhaustion)
}

/// The single-threaded solver (`--jobs 1`): one worklist, one SMT
/// solver, immediate (Gauss–Seidel) assignment updates.
fn solve_sequential(
    genv: &GlobalEnv,
    kenv: &KEnv,
    subs: &[SubC],
    quals: &[Qualifier],
    config: &SolveConfig,
) -> Solution {
    let budget = config.budget;
    let deadline = budget.deadline_from_now();
    let obs = config.obs.clone();
    let base = MetricsBaseline::capture(&obs);
    // Cache-poison injection: give the run a shared cache with one shard
    // poisoned, exercising the lock-recovery path end to end.
    let poison_cache = config
        .fault
        .as_ref()
        .filter(|f| f.fire(FaultPoint::CachePoison))
        .map(|_| {
            let cache = QueryCache::shared();
            cache.poison_all_shards();
            cache
        });
    let make_solver = || {
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget,
            ..config.smt
        });
        // Pin the absolute deadline so the SMT clock does not restart at
        // the first query.
        smt.set_deadline(deadline);
        smt.set_obs(obs.clone());
        smt.set_fault(config.fault.clone());
        if let Some(c) = &poison_cache {
            smt.share_cache(Arc::clone(c));
        }
        smt
    };
    let mut smt = make_solver();
    let incremental = use_incremental(config);
    let mut exhaustion: Option<Exhaustion> = None;
    let fixpoint_start = Instant::now();
    let mut stats = SolveStats {
        jobs: 1,
        ..SolveStats::default()
    };
    log_info!("solve: {} constraints, {} kvars", subs.len(), kenv.len());

    let mut assignment = initial_assignment(kenv, quals, &mut stats);
    log_info!("solve: initial quals = {}", stats.initial_quals);

    // Provenance labels, one per constraint (shared with the SMT layer
    // via `Arc`, formatted once).
    let labels = constraint_labels(subs, &obs);

    // Dependency index: κ → constraints that *read* it.
    let mut readers: HashMap<KVar, Vec<usize>> = HashMap::new();
    for (i, c) in subs.iter().enumerate() {
        for k in c.reads() {
            readers.entry(k).or_default().push(i);
        }
    }

    // Worklist: every constraint with a κ on the right.
    let mut queue: VecDeque<usize> = subs
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.writes().is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut queued: HashSet<usize> = queue.iter().copied().collect();

    // The sequential worklist has no barriers, but a BFS level structure
    // still exists: everything initially queued is "round 1", whatever
    // those iterations enqueue is "round 2", and so on. The round number
    // feeds provenance and the trace; `stats.rounds` stays 0 (rounds are
    // a parallel-schedule notion).
    let mut round: u64 = 1;
    let mut round_left = queue.len();
    let mut round_span = obs.tracing().then(|| {
        obs.span("fixpoint", "round 1").arg("constraints", round_left as u64)
    });

    {
        let _fixpoint_span = obs.phase_span(ObsPhase::Fixpoint);
        while let Some(ci) = queue.pop_front() {
            queued.remove(&ci);
            if round_left == 0 {
                round += 1;
                round_left = queue.len() + 1;
                round_span = obs.tracing().then(|| {
                    obs.span("fixpoint", format!("round {round}"))
                        .arg("constraints", round_left as u64)
                });
            }
            round_left -= 1;
            stats.iterations += 1;
            obs.metrics().fixpoint_iterations.incr();
            obs.metrics().queue_depth.set(queue.len() as i64);
            if stats.iterations.is_multiple_of(50) {
                log_info!(
                    "fixpoint: iter={} queue={} smt={} at [{}]",
                    stats.iterations,
                    queue.len(),
                    obs.metrics().smt_queries.get() - base.queries,
                    subs[ci].origin
                );
            }
            if stats.iterations > budget.max_fixpoint_iterations {
                // The worklist is not drained: the assignment may still
                // be too strong, so nothing downstream can be trusted as
                // Safe.
                exhaustion = Some(Exhaustion::with_detail(
                    Phase::Fixpoint,
                    Resource::FixpointIterations,
                    format!("cap {}", budget.max_fixpoint_iterations),
                ));
                break;
            }
            if deadline_expired(deadline) {
                exhaustion = Some(Exhaustion::new(Phase::Fixpoint, Resource::Deadline));
                break;
            }
            let view = View {
                base: &assignment,
                local: None,
            };
            smt.set_origin(Some(QueryOrigin {
                constraint: ci as u32,
                label: labels[ci].clone(),
                round,
                worker: 0,
            }));
            // Injected worker panic: fires on the first constraint of
            // round `at`, caught and quarantined like a real one. The
            // `fired() == 1` guard keeps repeat polls in the same round
            // from firing again (`fire_at` does not consume).
            let inject = config.fault.as_ref().is_some_and(|f| {
                f.fire_at(FaultPoint::WorkerPanic, round) && f.fired() == 1
            });
            let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if inject {
                    panic!("injected worker panic (round {round})");
                }
                weaken_constraint(genv, &subs[ci], &view, &mut smt, incremental)
            }));
            let weakened = match checked {
                Ok(w) => w,
                Err(_) => {
                    // Quarantine: conservatively weaken every κ this
                    // constraint writes to ⊤ (sound — weakening is
                    // monotone), taint the run, and rebuild the solver
                    // in case the panic left it mid-session.
                    obs.metrics().workers_quarantined.incr();
                    exhaustion.get_or_insert(Exhaustion::with_detail(
                        Phase::Fixpoint,
                        Resource::Panic,
                        format!(
                            "constraint check panicked at [{}]; its κs weakened to true",
                            subs[ci].origin
                        ),
                    ));
                    smt = make_solver();
                    subs[ci]
                        .writes()
                        .into_iter()
                        .map(|k| (k, Vec::new()))
                        .collect()
                }
            };
            for (k, kept) in weakened {
                assignment.insert(k, kept);
                for &r in readers.get(&k).map(Vec::as_slice).unwrap_or(&[]) {
                    if !subs[r].writes().is_empty() && queued.insert(r) {
                        queue.push_back(r);
                    }
                }
                // Also re-check this constraint's siblings writing k.
                if queued.insert(ci) {
                    queue.push_back(ci);
                }
            }
        }
        drop(round_span);
    }

    stats.fixpoint_time = fixpoint_start.elapsed();

    // Final pass: concrete right-hand conjuncts.
    let obligation_start = Instant::now();
    let mut errors = Vec::new();
    {
        let _obligation_span = obs.phase_span(ObsPhase::Obligations);
        for (ci, c) in subs.iter().enumerate() {
            let has_conc = c
                .rhs
                .atoms
                .iter()
                .any(|(_, a)| matches!(a, RefAtom::Conc(_)));
            if !has_conc {
                continue;
            }
            smt.set_origin(Some(QueryOrigin {
                constraint: ci as u32,
                label: labels[ci].clone(),
                round: 0,
                worker: 0,
            }));
            let (errs, exh) = check_obligations(genv, c, &assignment, &mut smt, incremental);
            errors.extend(errs);
            if let Some(e) = exh {
                exhaustion.get_or_insert(e);
            }
        }
    }

    stats.obligation_time = obligation_start.elapsed();
    base.fill(&obs, &mut stats);
    stats.worker_queries = vec![smt.stats.solved_queries];
    stats.worker_checks = vec![stats.iterations];
    if let Some(c) = &poison_cache {
        obs.metrics().cache_poison_recoveries.add(c.poison_recoveries());
    }
    taint_refused_unsafe(&base, &obs, &errors, &mut exhaustion);

    Solution {
        assignment,
        errors,
        stats,
        exhaustion,
    }
}

/// Counter values at solve entry: per-solve stats are reported as deltas
/// against these, so a driver-level `Obs` shared across several `verify`
/// calls (spec specialization retries the whole pipeline) still yields
/// correct per-solve numbers.
struct MetricsBaseline {
    queries: u64,
    checks: u64,
    hits: u64,
    sessions: u64,
    scoped: u64,
    refused: u64,
}

impl MetricsBaseline {
    fn capture(obs: &Obs) -> MetricsBaseline {
        let m = obs.metrics();
        MetricsBaseline {
            queries: m.smt_queries.get(),
            checks: m.smt_checks.get(),
            hits: m.smt_cache_hits.get(),
            sessions: m.smt_sessions.get(),
            scoped: m.smt_scoped_checks.get(),
            refused: m.smt_refused.get(),
        }
    }

    /// Whether any SMT query was refused (expired deadline, exhausted
    /// cap, or an injected `query-timeout`) since solve entry.
    fn any_refused(&self, obs: &Obs) -> bool {
        obs.metrics().smt_refused.get() > self.refused
    }

    /// Writes the registry deltas into `stats` — the metrics registry is
    /// the single accounting authority for query counts.
    fn fill(&self, obs: &Obs, stats: &mut SolveStats) {
        let m = obs.metrics();
        stats.smt_queries = m.smt_queries.get() - self.queries;
        stats.cache_hits = m.smt_cache_hits.get() - self.hits;
        stats.cache_lookups = m.smt_checks.get() - self.checks;
        stats.smt_sessions = m.smt_sessions.get() - self.sessions;
        stats.smt_scoped_checks = m.smt_scoped_checks.get() - self.scoped;
    }
}

/// Degrades an `Unsafe`-bound run to `Unknown` when any SMT query was
/// refused. A refused weakening query drops its qualifier — sound for
/// inference, but the resulting assignment can be strictly weaker than
/// the true fixpoint, so a failing obligation under it is not evidence
/// of a bug. A clean run is unaffected: every kept qualifier and every
/// obligation was genuinely proven, so `Safe` stands even after
/// refusals.
fn taint_refused_unsafe(
    base: &MetricsBaseline,
    obs: &Obs,
    errors: &[LiquidError],
    exhaustion: &mut Option<Exhaustion>,
) {
    if exhaustion.is_none() && !errors.is_empty() && base.any_refused(obs) {
        *exhaustion = Some(Exhaustion::with_detail(
            Phase::Fixpoint,
            Resource::SmtQueries,
            "refused SMT queries may have over-weakened the assignment; \
             failed obligations are unreliable"
                .to_string(),
        ));
    }
}

/// Formats one provenance label per constraint. Skipped entirely (empty
/// `Arc<str>`s) on a disabled handle so label formatting never shows up
/// in un-observed runs.
fn constraint_labels(subs: &[SubC], obs: &Obs) -> Vec<std::sync::Arc<str>> {
    if obs.enabled() {
        subs.iter()
            .map(|c| std::sync::Arc::from(c.origin.to_string().as_str()))
            .collect()
    } else {
        let empty: std::sync::Arc<str> = std::sync::Arc::from("");
        vec![empty; subs.len()]
    }
}

/// What one fixpoint worker reports back for its partition.
struct WorkerReport {
    /// Constraints checked.
    checked: u64,
    /// SMT queries this worker's solver actually solved (its private
    /// `solved_queries` counter; session/cache totals come from the
    /// metrics registry instead).
    queries: u64,
    /// `(constraint, κ, survivors)` for every weakening, in processing
    /// order. The constraint index is kept so the merge can mirror the
    /// sequential solver's re-enqueue policy.
    weakened: Vec<(usize, KVar, Vec<Pred>)>,
    /// First budget exhaustion this worker hit, if any.
    exhaustion: Option<Exhaustion>,
}

/// Groups a round's constraints so that any two constraints writing a
/// common κ share a partition (union–find over written κs), then bins
/// the groups onto `jobs` workers, largest first. Returns non-empty
/// partitions, each sorted by constraint index.
fn partition_round(
    round: &[usize],
    writes: &[Vec<KVar>],
    jobs: usize,
) -> Vec<Vec<usize>> {
    // Union–find over positions in `round`.
    let mut parent: Vec<usize> = (0..round.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = i;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    let mut owner: HashMap<KVar, usize> = HashMap::new();
    for (pos, &ci) in round.iter().enumerate() {
        for &k in &writes[ci] {
            match owner.get(&k) {
                None => {
                    owner.insert(k, pos);
                }
                Some(&prev) => {
                    let a = find(&mut parent, prev);
                    let b = find(&mut parent, pos);
                    if a != b {
                        // Attach the later root to the earlier one so
                        // component ids stay deterministic.
                        parent[b.max(a)] = a.min(b);
                    }
                }
            }
        }
    }
    // Components keyed by root position, in first-appearance order.
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut comp_of_root: HashMap<usize, usize> = HashMap::new();
    for (pos, &ci) in round.iter().enumerate() {
        let root = find(&mut parent, pos);
        let cix = *comp_of_root.entry(root).or_insert_with(|| {
            components.push(Vec::new());
            components.len() - 1
        });
        components[cix].push(ci);
    }
    // Longest-processing-time binning: sort components by size
    // (descending, stable), assign each to the least-loaded worker.
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(components[i].len()));
    let mut bins: Vec<Vec<usize>> = vec![Vec::new(); jobs];
    let mut load = vec![0usize; jobs];
    for i in order {
        let w = (0..jobs).min_by_key(|&b| load[b]).unwrap_or(0);
        load[w] += components[i].len();
        bins[w].extend(components[i].iter().copied());
    }
    let mut out: Vec<Vec<usize>> = bins.into_iter().filter(|b| !b.is_empty()).collect();
    for b in &mut out {
        b.sort_unstable();
    }
    out
}

/// The round-based parallel solver (`--jobs > 1`). See the module docs
/// for the schedule and its soundness argument.
fn solve_parallel(
    genv: &GlobalEnv,
    kenv: &KEnv,
    subs: &[SubC],
    quals: &[Qualifier],
    config: &SolveConfig,
    jobs: usize,
) -> Solution {
    let budget = config.budget;
    let deadline = budget.deadline_from_now();
    let obs = config.obs.clone();
    let base = MetricsBaseline::capture(&obs);
    let cache = QueryCache::shared();
    if let Some(f) = &config.fault {
        if f.fire(FaultPoint::CachePoison) {
            cache.poison_all_shards();
        }
    }
    let query_counter = Arc::new(AtomicU64::new(0));
    let make_solver = || {
        let mut smt = SmtSolver::with_config(SolverConfig {
            budget,
            ..config.smt
        });
        smt.set_deadline(deadline);
        smt.share_cache(Arc::clone(&cache));
        smt.share_query_counter(Arc::clone(&query_counter));
        smt.set_obs(obs.clone());
        smt.set_fault(config.fault.clone());
        smt
    };

    let incremental = use_incremental(config);
    let mut exhaustion: Option<Exhaustion> = None;
    let fixpoint_start = Instant::now();
    let mut stats = SolveStats {
        jobs,
        worker_queries: vec![0; jobs],
        worker_checks: vec![0; jobs],
        ..SolveStats::default()
    };
    log_info!(
        "solve[{jobs} jobs]: {} constraints, {} kvars",
        subs.len(),
        kenv.len()
    );

    let mut assignment = initial_assignment(kenv, quals, &mut stats);
    let labels = constraint_labels(subs, &obs);

    // Dependency indices.
    let mut readers: HashMap<KVar, Vec<usize>> = HashMap::new();
    for (i, c) in subs.iter().enumerate() {
        for k in c.reads() {
            readers.entry(k).or_default().push(i);
        }
    }
    let writes: Vec<Vec<KVar>> = subs.iter().map(SubC::writes).collect();

    let mut queue: Vec<usize> = (0..subs.len())
        .filter(|&i| !writes[i].is_empty())
        .collect();
    let mut queued: HashSet<usize> = queue.iter().copied().collect();

    let fixpoint_span = obs.phase_span(ObsPhase::Fixpoint);
    while !queue.is_empty() {
        if deadline_expired(deadline) {
            exhaustion = Some(Exhaustion::new(Phase::Fixpoint, Resource::Deadline));
            break;
        }
        // Deterministic round: pending constraints in index order.
        let mut round: Vec<usize> = std::mem::take(&mut queue);
        queued.clear();
        round.sort_unstable();
        // Iteration budget: truncate the round to what remains (the
        // sequential solver exhausts *before* processing the first
        // over-cap constraint, so a zero remainder exhausts here too).
        let remaining = budget.max_fixpoint_iterations.saturating_sub(stats.iterations);
        let over_cap = (round.len() as u64) > remaining;
        if over_cap {
            round.truncate(remaining as usize);
        }
        if round.is_empty() {
            exhaustion = Some(Exhaustion::with_detail(
                Phase::Fixpoint,
                Resource::FixpointIterations,
                format!("cap {}", budget.max_fixpoint_iterations),
            ));
            break;
        }

        let partitions = partition_round(&round, &writes, jobs);
        stats.rounds += 1;
        obs.metrics().fixpoint_rounds.incr();
        let round_no = stats.rounds;
        stats.max_partition = stats
            .max_partition
            .max(partitions.iter().map(Vec::len).max().unwrap_or(0));
        log_info!(
            "fixpoint round {}: {} constraints in {} partitions (max {})",
            stats.rounds,
            round.len(),
            partitions.len(),
            partitions.iter().map(Vec::len).max().unwrap_or(0)
        );
        let round_span = obs.tracing().then(|| {
            obs.span("fixpoint", format!("round {round_no}"))
                .arg("constraints", round.len() as u64)
                .arg("partitions", partitions.len() as u64)
        });

        let snapshot = &assignment;
        let labels_ref = &labels;
        let obs_ref = &obs;
        let fault_ref = &config.fault;
        let reports: Vec<WorkerReport> = std::thread::scope(|s| {
            let handles: Vec<_> = partitions
                .iter()
                .enumerate()
                .map(|(w, part)| {
                    let mut smt = make_solver();
                    s.spawn(move || {
                        // Injected worker panic: worker 0 dies at the
                        // start of round `at`, exercising the quarantine
                        // path below.
                        if w == 0
                            && fault_ref
                                .as_ref()
                                .is_some_and(|f| f.fire_at(FaultPoint::WorkerPanic, round_no))
                        {
                            panic!("injected worker panic (round {round_no})");
                        }
                        let mut local: HashMap<KVar, Vec<Pred>> = HashMap::new();
                        let mut report = WorkerReport {
                            checked: 0,
                            queries: 0,
                            weakened: Vec::new(),
                            exhaustion: None,
                        };
                        for &ci in part {
                            if deadline_expired(deadline) {
                                report.exhaustion = Some(Exhaustion::new(
                                    Phase::Fixpoint,
                                    Resource::Deadline,
                                ));
                                break;
                            }
                            report.checked += 1;
                            obs_ref.metrics().fixpoint_iterations.incr();
                            let view = View {
                                base: snapshot,
                                local: Some(&local),
                            };
                            smt.set_origin(Some(QueryOrigin {
                                constraint: ci as u32,
                                label: labels_ref[ci].clone(),
                                round: round_no,
                                worker: w as u32,
                            }));
                            let weakened =
                                weaken_constraint(genv, &subs[ci], &view, &mut smt, incremental);
                            for (k, kept) in weakened {
                                local.insert(k, kept.clone());
                                report.weakened.push((ci, k, kept));
                            }
                        }
                        report.queries = smt.stats.solved_queries;
                        report
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(&partitions)
                .map(|(h, part)| {
                    h.join().unwrap_or_else(|_| {
                        // A worker died (injected or real): quarantine
                        // its partition. Every κ the partition writes is
                        // conservatively weakened to ⊤ — sound, since
                        // weakening is monotone — and the run is tainted
                        // so the outcome degrades to Unknown rather than
                        // claiming Safe from a partial fixpoint.
                        obs_ref.metrics().workers_quarantined.incr();
                        WorkerReport {
                            checked: 0,
                            queries: 0,
                            weakened: part
                                .iter()
                                .flat_map(|&ci| {
                                    writes[ci].iter().map(move |&k| (ci, k, Vec::new()))
                                })
                                .collect(),
                            exhaustion: Some(Exhaustion::with_detail(
                                Phase::Fixpoint,
                                Resource::Panic,
                                format!(
                                    "fixpoint worker panicked; quarantined {} constraints",
                                    part.len()
                                ),
                            )),
                        }
                    })
                })
                .collect()
        });
        drop(round_span);

        // Deterministic merge: workers are ordered, partitions have
        // disjoint write-sets, and each worker reports weakenings in
        // its own processing order — so the final value of every κ is
        // unambiguous.
        for (w, report) in reports.iter().enumerate() {
            stats.iterations += report.checked;
            stats.worker_queries[w] += report.queries;
            stats.worker_checks[w] += report.checked;
            if let Some(e) = &report.exhaustion {
                exhaustion.get_or_insert(e.clone());
            }
            for (ci, k, kept) in &report.weakened {
                assignment.insert(*k, kept.clone());
                for &r in readers.get(k).map(Vec::as_slice).unwrap_or(&[]) {
                    if !writes[r].is_empty() && queued.insert(r) {
                        queue.push(r);
                    }
                }
                // Mirror the sequential schedule: the weakening
                // constraint itself is re-checked next round.
                if queued.insert(*ci) {
                    queue.push(*ci);
                }
            }
        }
        obs.metrics().queue_depth.set(queue.len() as i64);
        if over_cap && exhaustion.is_none() {
            exhaustion = Some(Exhaustion::with_detail(
                Phase::Fixpoint,
                Resource::FixpointIterations,
                format!("cap {}", budget.max_fixpoint_iterations),
            ));
        }
        if exhaustion.is_some() {
            break;
        }
    }
    drop(fixpoint_span);

    stats.fixpoint_time = fixpoint_start.elapsed();

    // Final pass: concrete right-hand conjuncts, fanned out in chunks
    // and merged back in constraint order so the error list is identical
    // to the sequential one.
    let obligation_start = Instant::now();
    let targets: Vec<usize> = (0..subs.len())
        .filter(|&i| {
            subs[i]
                .rhs
                .atoms
                .iter()
                .any(|(_, a)| matches!(a, RefAtom::Conc(_)))
        })
        .collect();
    let chunk = targets.len().div_ceil(jobs.max(1)).max(1);
    let assignment_ref = &assignment;
    let labels_ref = &labels;
    let obligation_span = obs.phase_span(ObsPhase::Obligations);
    let mut obligation_results: Vec<(usize, Vec<LiquidError>, Option<Exhaustion>)> =
        std::thread::scope(|s| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .enumerate()
                .map(|(w, part)| {
                    let mut smt = make_solver();
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for &ci in part {
                            smt.set_origin(Some(QueryOrigin {
                                constraint: ci as u32,
                                label: labels_ref[ci].clone(),
                                round: 0,
                                worker: w as u32,
                            }));
                            let (errs, exh) = check_obligations(
                                genv,
                                &subs[ci],
                                assignment_ref,
                                &mut smt,
                                incremental,
                            );
                            out.push((ci, errs, exh));
                        }
                        (out, smt.stats.solved_queries)
                    })
                })
                .collect();
            let mut merged = Vec::new();
            for (w, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok((out, queries)) => {
                        if w < stats.worker_queries.len() {
                            stats.worker_queries[w] += queries;
                        }
                        merged.extend(out);
                    }
                    Err(_) => {
                        // An obligation worker died: its chunk is
                        // unchecked, so the run cannot claim Safe —
                        // taint it and degrade to Unknown.
                        obs.metrics().workers_quarantined.incr();
                        exhaustion.get_or_insert(Exhaustion::with_detail(
                            Phase::ObligationCheck,
                            Resource::Panic,
                            "obligation worker panicked; its chunk is unchecked".to_string(),
                        ));
                    }
                }
            }
            merged
        });
    drop(obligation_span);
    obligation_results.sort_by_key(|(ci, _, _)| *ci);
    let mut errors = Vec::new();
    for (_, errs, exh) in obligation_results {
        errors.extend(errs);
        if let Some(e) = exh {
            exhaustion.get_or_insert(e);
        }
    }

    stats.obligation_time = obligation_start.elapsed();
    base.fill(&obs, &mut stats);
    obs.metrics()
        .cache_poison_recoveries
        .add(cache.poison_recoveries());
    taint_refused_unsafe(&base, &obs, &errors, &mut exhaustion);

    Solution {
        assignment,
        errors,
        stats,
        exhaustion,
    }
}

/// Checks a group of candidate qualifiers against one antecedent,
/// bisecting on failure: valid groups cost one query regardless of size.
/// Individual failures are retried against `full` (the unpruned
/// antecedent) when provided.
fn check_group(
    smt: &mut SmtSolver,
    sorts: &dsolve_logic::SortEnv,
    lhs: &Pred,
    full: Option<&Pred>,
    group: &[(Pred, Pred)],
    kept: &mut Vec<Pred>,
) {
    match group {
        [] => {}
        [(q, rhs_q)] => {
            let mut ok = smt.is_valid(sorts, lhs, rhs_q);
            if !ok && !retry_disabled() {
                if let Some(full) = full {
                    if full != lhs {
                        ok = smt.is_valid(sorts, full, rhs_q);
                    }
                }
            }
            if ok {
                kept.push(q.clone());
            }
        }
        _ => {
            let all = Pred::and(group.iter().map(|(_, r)| r.clone()).collect());
            if smt.is_valid(sorts, lhs, &all) {
                kept.extend(group.iter().map(|(q, _)| q.clone()));
            } else {
                let mid = group.len() / 2;
                check_group(smt, sorts, lhs, full, &group[..mid], kept);
                check_group(smt, sorts, lhs, full, &group[mid..], kept);
            }
        }
    }
}

/// The incremental counterpart of [`check_group`]: the all-survive case
/// still costs one (cacheable) conjunction query, but a mixed group is
/// decided candidate-by-candidate in a single SMT session — the
/// antecedent is encoded once and each consequent checked under its own
/// assertion scope — instead of bisecting (which re-encodes the
/// antecedent at every split). Failures are retried against `full`, again
/// as one batch.
fn check_group_batched(
    smt: &mut SmtSolver,
    sorts: &dsolve_logic::SortEnv,
    lhs: &Pred,
    full: Option<&Pred>,
    group: &[(Pred, Pred)],
    kept: &mut Vec<Pred>,
) {
    if group.len() <= 1 {
        return check_group(smt, sorts, lhs, full, group, kept);
    }
    let all = Pred::and(group.iter().map(|(_, r)| r.clone()).collect());
    if smt.is_valid(sorts, lhs, &all) {
        kept.extend(group.iter().map(|(q, _)| q.clone()));
        return;
    }
    let rhss: Vec<Pred> = group.iter().map(|(_, r)| r.clone()).collect();
    let verdicts = smt.check_valid_many(sorts, lhs, &rhss);
    let mut failed: Vec<&(Pred, Pred)> = Vec::new();
    for (pair, v) in group.iter().zip(&verdicts) {
        if matches!(v, Validity::Valid) {
            kept.push(pair.0.clone());
        } else {
            failed.push(pair);
        }
    }
    // Pruning is a fast path, not a semantics: retry failures against
    // the unpruned antecedent before dropping a qualifier for good.
    if failed.is_empty() || retry_disabled() {
        return;
    }
    let Some(full) = full else { return };
    if full == lhs {
        return;
    }
    let retry: Vec<Pred> = failed.iter().map(|(_, r)| r.clone()).collect();
    let verdicts = smt.check_valid_many(sorts, full, &retry);
    for (pair, v) in failed.into_iter().zip(&verdicts) {
        if matches!(v, Validity::Valid) {
            kept.push(pair.0.clone());
        }
    }
}

/// Keeps the conjuncts transitively relevant to the seed variables
/// (variable-free conjuncts such as `false` are always kept).
fn prune_conjuncts(
    p: Pred,
    seeds: &mut std::collections::BTreeSet<Symbol>,
) -> Pred {
    let conjuncts = p.conjuncts();
    if conjuncts.len() <= 12 {
        return Pred::and(conjuncts);
    }
    let fvs: Vec<std::collections::BTreeSet<Symbol>> =
        conjuncts.iter().map(Pred::free_vars).collect();
    let mut keep = vec![false; conjuncts.len()];
    // Variable-free conjuncts carry reachability information (`false`).
    for (i, fv) in fvs.iter().enumerate() {
        if fv.is_empty() {
            keep[i] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for (i, fv) in fvs.iter().enumerate() {
            if keep[i] || fv.is_empty() {
                continue;
            }
            if fv.iter().any(|v| seeds.contains(v)) {
                keep[i] = true;
                seeds.extend(fv.iter().copied());
                changed = true;
            }
        }
    }
    Pred::and(
        conjuncts
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| if k { Some(c) } else { None })
            .collect(),
    )
}

fn retry_disabled() -> bool {
    std::env::var_os("DSOLVE_NO_RETRY").is_some()
}

fn bind_nu(sorts: &mut dsolve_logic::SortEnv, shape: &dsolve_nanoml::MlType) {
    sorts.bind(
        Symbol::value_var(),
        crate::measure::sort_of_mltype(shape),
    );
}

fn filter_wellsorted(sorts: &dsolve_logic::SortEnv, p: Pred) -> Pred {
    Pred::and(
        p.conjuncts()
            .into_iter()
            .filter(|c| sorts.wellsorted(c))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Origin;
    use crate::env::{fresh_refinement, LiquidEnv};
    use crate::measure::MeasureEnv;
    use crate::rtype::{RType, Refinement};
    use dsolve_logic::{parse_pred, Sort, SortEnv};
    use dsolve_nanoml::{DataEnv, MlType};

    fn genv() -> GlobalEnv {
        GlobalEnv::new(DataEnv::with_builtins(), MeasureEnv::new())
    }

    fn quals() -> Vec<Qualifier> {
        vec![
            Qualifier::new("Pos", parse_pred("0 < VV").unwrap()),
            Qualifier::new("UB", parse_pred("_ <= VV").unwrap()),
        ]
    }

    fn seq_config() -> SolveConfig {
        SolveConfig {
            jobs: 1,
            ..SolveConfig::default()
        }
    }

    #[test]
    fn single_kvar_keeps_implied_qualifiers() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let mut scope = SortEnv::new();
        scope.bind(Symbol::new("i"), Sort::Int);
        let r = fresh_refinement(&mut kenv, scope, &MlType::Int);
        let env = LiquidEnv::new().bind(Symbol::new("i"), RType::int());
        // {ν = i + 1} with i ≥ 1 flows into κ.
        let sub = SubC {
            env: env.bind(
                Symbol::new("i"),
                RType::int_pred(parse_pred("1 <= VV").unwrap()),
            ),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("VV = i + 1").unwrap()),
            rhs: r.clone(),
            origin: Origin::Flow("test"),
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &seq_config());
        assert!(sol.errors.is_empty());
        let k = r.kvars()[0];
        let p = sol.pred_of(k).to_string();
        // Both 0 < ν and i ≤ ν survive.
        assert!(p.contains("(0 < VV)"), "{p}");
        assert!(p.contains("(i <= VV)"), "{p}");
    }

    #[test]
    fn unimplied_qualifiers_are_weakened_away() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let scope = SortEnv::new();
        let r = fresh_refinement(&mut kenv, scope, &MlType::Int);
        // ⊤ flows into κ: nothing survives.
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::top(),
            rhs: r.clone(),
            origin: Origin::Flow("test"),
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &seq_config());
        assert_eq!(sol.pred_of(r.kvars()[0]), Pred::True);
    }

    #[test]
    fn chained_kvars_propagate() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r1 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let r2 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        // {0 < ν} <: κ1, κ1 <: κ2: both keep Pos.
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("0 < VV && VV = 3").unwrap()),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r1.clone(),
                rhs: r2.clone(),
                origin: Origin::Flow("t"),
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &seq_config());
        assert_eq!(sol.pred_of(r2.kvars()[0]).to_string(), "(0 < VV)");
    }

    #[test]
    fn weakening_is_transitive_through_cycles() {
        // κ1 <: κ2 and κ2 <: κ1 with {0 < ν} into κ1 only via a
        // weaker source {ν = 0} — everything must drain.
        let genv = genv();
        let mut kenv = KEnv::new();
        let r1 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let r2 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("VV = 0").unwrap()),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r1.clone(),
                rhs: r2.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r2.clone(),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &seq_config());
        // 0 < ν does not hold of ν = 0.
        assert_eq!(sol.pred_of(r1.kvars()[0]), Pred::True);
        assert_eq!(sol.pred_of(r2.kvars()[0]), Pred::True);
    }

    #[test]
    fn concrete_obligations_reported() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            origin: Origin::Assert { line: 42 },
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &seq_config());
        assert_eq!(sol.errors.len(), 1);
        assert!(sol.errors[0].to_string().contains("line 42"));
    }

    #[test]
    fn zero_timeout_reports_unknown_deadline_not_hang() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            origin: Origin::Assert { line: 7 },
        };
        let config = SolveConfig {
            budget: Budget::with_timeout(std::time::Duration::from_secs(0)),
            ..seq_config()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.resource, dsolve_logic::Resource::Deadline);
        assert!(sol.outcome().is_unknown());
        // The undecided obligation is surfaced, not silently dropped.
        assert_eq!(sol.errors.len(), 1);
        assert!(sol.errors[0].to_string().contains("unproven"), "{}", sol.errors[0]);
    }

    #[test]
    fn exhausted_fixpoint_taints_outcome() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: r,
            origin: Origin::Flow("t"),
        };
        let config = SolveConfig {
            budget: Budget {
                max_fixpoint_iterations: 0,
                ..Budget::default()
            },
            ..seq_config()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.phase, dsolve_logic::Phase::Fixpoint);
        assert_eq!(e.resource, dsolve_logic::Resource::FixpointIterations);
        // No obligation failed, yet the run must not claim Safe.
        assert!(sol.errors.is_empty());
        assert!(sol.outcome().is_unknown());
    }

    #[test]
    fn exhausted_query_budget_reports_unproven_obligation() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            origin: Origin::Assert { line: 9 },
        };
        let config = SolveConfig {
            budget: Budget {
                max_smt_queries: Some(0),
                ..Budget::default()
            },
            ..seq_config()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.resource, dsolve_logic::Resource::SmtQueries);
        assert!(sol.outcome().is_unknown());
    }

    #[test]
    fn concrete_obligation_uses_solved_kvars() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("VV = 5").unwrap()),
                rhs: r.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r.clone(),
                rhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
                origin: Origin::Assert { line: 1 },
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &seq_config());
        assert!(sol.errors.is_empty(), "{:?}", sol.errors.first().map(|e| e.to_string()));
    }

    /// A chain/diamond of κ constraints exercising multi-round parallel
    /// weakening with cross-partition reads.
    fn diamond_case() -> (GlobalEnv, KEnv, Vec<SubC>) {
        let genv = genv();
        let mut kenv = KEnv::new();
        let mut rs = Vec::new();
        for _ in 0..6 {
            rs.push(fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int));
        }
        let mut subs = vec![SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV && VV = 7").unwrap()),
            rhs: rs[0].clone(),
            origin: Origin::Flow("source"),
        }];
        // κ0 → κ1, κ0 → κ2, κ1 → κ3, κ2 → κ3, κ3 → κ4, κ4 → κ5.
        for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5)] {
            subs.push(SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: rs[a].clone(),
                rhs: rs[b].clone(),
                origin: Origin::Flow("edge"),
            });
        }
        // A weaker source into κ2 forces weakening down one diamond leg.
        subs.push(SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("VV = 0").unwrap()),
            rhs: rs[2].clone(),
            origin: Origin::Flow("weak-source"),
        });
        // A concrete obligation at the sink.
        subs.push(SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: rs[5].clone(),
            rhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            origin: Origin::Assert { line: 99 },
        });
        (genv, kenv, subs)
    }

    #[test]
    fn parallel_matches_sequential_on_diamond() {
        let (genv, kenv, subs) = diamond_case();
        let seq = solve(&genv, &kenv, &subs, &quals(), &seq_config());
        let par = solve(
            &genv,
            &kenv,
            &subs,
            &quals(),
            &SolveConfig {
                jobs: 4,
                ..SolveConfig::default()
            },
        );
        assert_eq!(par.stats.jobs, 4);
        assert!(par.stats.rounds > 0);
        // Same assignment, same verdict, same error list.
        let dump = |s: &Solution| {
            let mut ks: Vec<_> = s.assignment.keys().copied().collect();
            ks.sort();
            ks.iter().map(|k| format!("{k}={}", s.pred_of(*k))).collect::<Vec<_>>()
        };
        assert_eq!(dump(&seq), dump(&par));
        assert_eq!(
            seq.errors.iter().map(ToString::to_string).collect::<Vec<_>>(),
            par.errors.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        assert_eq!(seq.outcome(), par.outcome());
    }

    #[test]
    fn partition_round_keeps_shared_writers_together() {
        // Constraints 0 and 2 write κ0; constraint 1 writes κ1.
        let k0 = KVar(0);
        let k1 = KVar(1);
        let writes = vec![vec![k0], vec![k1], vec![k0]];
        let parts = partition_round(&[0, 1, 2], &writes, 2);
        assert_eq!(parts.len(), 2);
        let with_0 = parts.iter().find(|p| p.contains(&0)).unwrap();
        assert!(with_0.contains(&2), "writers of κ0 split: {parts:?}");
        // Partitions are sorted and disjoint.
        for p in &parts {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(*p, sorted);
        }
    }

    #[test]
    fn parallel_zero_iteration_budget_exhausts() {
        let (genv, kenv, subs) = diamond_case();
        let config = SolveConfig {
            jobs: 2,
            budget: Budget {
                max_fixpoint_iterations: 0,
                ..Budget::default()
            },
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &subs, &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.resource, dsolve_logic::Resource::FixpointIterations);
        assert!(sol.outcome().is_unknown());
    }

    #[test]
    fn injected_worker_panic_degrades_sequentially() {
        let (genv, kenv, subs) = diamond_case();
        let config = SolveConfig {
            fault: Some(Arc::new(FaultPlan::parse("worker-panic@1").unwrap())),
            ..seq_config()
        };
        let sol = solve(&genv, &kenv, &subs, &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("panic taints the run");
        assert_eq!(e.resource, Resource::Panic);
        assert_eq!(e.phase, Phase::Fixpoint);
        // The run degrades to Unknown — never a flipped definite verdict.
        assert!(sol.outcome().is_unknown());
        assert!(config.obs.metrics().workers_quarantined.get() >= 1);
    }

    #[test]
    fn injected_worker_panic_quarantines_parallel_partition() {
        let (genv, kenv, subs) = diamond_case();
        let config = SolveConfig {
            jobs: 4,
            fault: Some(Arc::new(FaultPlan::parse("worker-panic@1").unwrap())),
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &subs, &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("panic taints the run");
        assert_eq!(e.resource, Resource::Panic);
        assert!(sol.outcome().is_unknown());
        assert!(config.obs.metrics().workers_quarantined.get() >= 1);
    }

    #[test]
    fn injected_cache_poison_is_recovered_transparently() {
        let (genv, kenv, subs) = diamond_case();
        let clean = solve(&genv, &kenv, &subs, &quals(), &seq_config());
        let config = SolveConfig {
            jobs: 2,
            fault: Some(Arc::new(FaultPlan::parse("cache-poison").unwrap())),
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &subs, &quals(), &config);
        // Poisoned shards recover; the verdict is unchanged.
        assert_eq!(sol.outcome(), clean.outcome());
        assert!(config.obs.metrics().cache_poison_recoveries.get() >= 1);
    }

    #[test]
    fn parallel_query_cap_is_global_across_workers() {
        let (genv, kenv, subs) = diamond_case();
        let config = SolveConfig {
            jobs: 4,
            budget: Budget {
                max_smt_queries: Some(3),
                ..Budget::default()
            },
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &subs, &quals(), &config);
        // The cap covers the sum across workers (a per-worker cap of 3
        // would allow 12 solves). Only solved queries charge the cap —
        // cache hits are free — so depending on what the shared cache
        // holds when the cap trips, the sink obligation is either left
        // undecided (Unknown tainted by the query cap) or refuted
        // against the over-weakened assignment (Unsafe). It can never
        // be proven Safe on 3 queries.
        match sol.outcome() {
            Outcome::Safe => panic!("3 queries cannot prove the diamond safe"),
            Outcome::Unknown(e) => {
                assert_eq!(e.resource, dsolve_logic::Resource::SmtQueries);
            }
            Outcome::Unsafe => assert!(!sol.errors.is_empty()),
        }
    }
}
