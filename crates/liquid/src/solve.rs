//! The liquid fixpoint solver: iterative weakening over qualifier
//! instantiations [Rondon et al., PLDI 2008], with the SMT solver
//! discharging each implication.
//!
//! Each liquid variable `κ` starts at the strongest conjunction of
//! well-sorted instantiations of the qualifier set in its scope. Every
//! constraint whose right side is `θ·κ` removes from `A(κ)` the
//! qualifiers the left side fails to imply; the process is monotone and
//! terminates. Constraints with concrete right sides are verified under
//! the final assignment and produce the reported errors.

use crate::constraint::{LiquidError, SubC};
use crate::env::{GlobalEnv, KEnv};
use crate::rtype::{KVar, RefAtom};
use dsolve_logic::{
    deadline_expired, instantiate_all, Budget, Exhaustion, Outcome, Phase, Pred, Qualifier,
    Resource, Symbol,
};
use dsolve_smt::{SmtSolver, SolverConfig, Validity};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Statistics from a solver run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Number of liquid variables.
    pub kvars: usize,
    /// Total initial qualifier instantiations.
    pub initial_quals: usize,
    /// Implication queries sent to the SMT solver.
    pub smt_queries: u64,
    /// Fixpoint iterations (constraint re-checks).
    pub iterations: u64,
    /// Wall-clock time spent in the weakening fixpoint.
    pub fixpoint_time: Duration,
    /// Wall-clock time spent checking concrete obligations.
    pub obligation_time: Duration,
}

/// The result of solving.
pub struct Solution {
    /// Final qualifier assignment per liquid variable.
    pub assignment: HashMap<KVar, Vec<Pred>>,
    /// Errors from concrete obligations that failed.
    pub errors: Vec<LiquidError>,
    /// Run statistics.
    pub stats: SolveStats,
    /// The first budget exhaustion that tainted the run, if any. When
    /// set, an empty `errors` list does **not** mean the module was
    /// proven safe.
    pub exhaustion: Option<Exhaustion>,
}

impl Solution {
    /// The solved refinement of `κ` as a single predicate.
    pub fn pred_of(&self, k: KVar) -> Pred {
        Pred::and(self.assignment.get(&k).cloned().unwrap_or_default())
    }

    /// The three-valued outcome of the run. Any exhaustion forces
    /// `Unknown`: a fixpoint cut short leaves the assignment too strong,
    /// so even clean obligations cannot be trusted as `Safe`.
    pub fn outcome(&self) -> Outcome {
        if let Some(e) = &self.exhaustion {
            Outcome::Unknown(e.clone())
        } else if self.errors.is_empty() {
            Outcome::Safe
        } else {
            Outcome::Unsafe
        }
    }
}

/// Solver configuration.
#[derive(Clone, Debug, Default)]
pub struct SolveConfig {
    /// SMT configuration. Its `budget` field is ignored: `budget` below
    /// is the single source of truth and is pushed into the SMT solver.
    pub smt: SolverConfig,
    /// Resource limits for the whole run (deadline, query cap, fixpoint
    /// iteration cap, per-query search caps).
    pub budget: Budget,
}

/// Runs the iterative-weakening fixpoint.
pub fn solve(
    genv: &GlobalEnv,
    kenv: &KEnv,
    subs: &[SubC],
    quals: &[Qualifier],
    config: &SolveConfig,
) -> Solution {
    let budget = config.budget;
    let deadline = budget.deadline_from_now();
    let mut smt = SmtSolver::with_config(SolverConfig {
        budget,
        ..config.smt
    });
    // Pin the absolute deadline so the SMT clock does not restart at the
    // first query.
    smt.set_deadline(deadline);
    let mut exhaustion: Option<Exhaustion> = None;
    let fixpoint_start = Instant::now();
    let mut stats = SolveStats::default();
    let progress = std::env::var_os("DSOLVE_PROGRESS").is_some();
    if progress {
        eprintln!("solve: {} constraints, {} kvars", subs.len(), kenv.len());
    }

    // Initial assignment: all well-sorted instantiations per κ scope.
    let mut assignment: HashMap<KVar, Vec<Pred>> = HashMap::new();
    for k in kenv.kvars() {
        let info = kenv.info(k).expect("registered kvar");
        let insts = instantiate_all(quals, &info.scope, &info.nu_sort);
        stats.initial_quals += insts.len();
        assignment.insert(k, insts);
    }
    stats.kvars = assignment.len();
    if progress {
        eprintln!("solve: initial quals = {}", stats.initial_quals);
    }

    // Dependency index: κ → constraints that *read* it.
    let mut readers: HashMap<KVar, Vec<usize>> = HashMap::new();
    for (i, c) in subs.iter().enumerate() {
        for k in c.reads() {
            readers.entry(k).or_default().push(i);
        }
    }

    // Worklist: every constraint with a κ on the right.
    let mut queue: VecDeque<usize> = subs
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.writes().is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut queued: HashSet<usize> = queue.iter().copied().collect();

    while let Some(ci) = queue.pop_front() {
        queued.remove(&ci);
        stats.iterations += 1;
        if progress && stats.iterations % 50 == 0 {
            eprintln!(
                "fixpoint: iter={} queue={} smt={} at [{}]",
                stats.iterations,
                queue.len(),
                stats.smt_queries,
                subs[ci].origin
            );
        }
        if stats.iterations > budget.max_fixpoint_iterations {
            // The worklist is not drained: the assignment may still be
            // too strong, so nothing downstream can be trusted as Safe.
            exhaustion = Some(Exhaustion::with_detail(
                Phase::Fixpoint,
                Resource::FixpointIterations,
                format!("cap {}", budget.max_fixpoint_iterations),
            ));
            break;
        }
        if deadline_expired(deadline) {
            exhaustion = Some(Exhaustion::new(Phase::Fixpoint, Resource::Deadline));
            break;
        }
        let c = &subs[ci];
        let lookup = |k: KVar| {
            Pred::and(assignment.get(&k).cloned().unwrap_or_default())
        };
        let (mut sorts, antecedent) = c.env.embed(genv, &lookup);
        bind_nu(&mut sorts, &c.nu_shape);
        let lhs = filter_wellsorted(&sorts, c.lhs.concretize(&lookup));

        // Check each κ atom on the right; collect survivors.
        let mut weakened: Vec<(KVar, Vec<Pred>)> = Vec::new();
        for (theta, atom) in &c.rhs.atoms {
            let RefAtom::KVar(k) = atom else { continue };
            let quals_k = assignment.get(k).cloned().unwrap_or_default();
            if quals_k.is_empty() {
                continue;
            }
            // Relevance pruning: during weakening, restrict the
            // antecedent to conjuncts transitively sharing variables
            // with the left side and the candidate qualifiers. Always
            // sound (weakens the antecedent); dramatically shrinks the
            // per-query formulas.
            let rhs_preds: Vec<Pred> =
                quals_k.iter().map(|q| theta.apply_pred(q)).collect();
            let mut seeds: std::collections::BTreeSet<Symbol> = lhs.free_vars();
            for p in &rhs_preds {
                seeds.extend(p.free_vars());
            }
            let no_prune = std::env::var_os("DSOLVE_NO_PRUNE").is_some();
            let pruned = if no_prune {
                antecedent.clone()
            } else {
                prune_conjuncts(antecedent.clone(), &mut seeds)
            };
            let lhs_full = Pred::and(vec![pruned, lhs.clone()]);
            // Pruning is a fast path, not a semantics: failures are
            // retried against the full antecedent before a qualifier is
            // dropped for good.
            let lhs_unpruned = Pred::and(vec![antecedent.clone(), lhs.clone()]);
            let lhs_conjuncts: std::collections::HashSet<Pred> =
                lhs_full.clone().conjuncts().into_iter().collect();
            // Partition the candidates: syntactic hits, ill-sorted
            // transports, and the rest — checked in bisected groups
            // (most candidates survive most checks, so testing the whole
            // conjunction first usually costs a single query).
            let mut kept = Vec::with_capacity(quals_k.len());
            let mut to_check: Vec<(Pred, Pred)> = Vec::new();
            for (q, rhs_q) in quals_k.into_iter().zip(rhs_preds) {
                if lhs_conjuncts.contains(&rhs_q) {
                    kept.push(q);
                } else if sorts.wellsorted(&rhs_q) {
                    to_check.push((q, rhs_q));
                }
            }
            check_group(
                &mut smt,
                &sorts,
                &lhs_full,
                Some(&lhs_unpruned),
                &to_check,
                &mut kept,
                &mut stats,
            );
            let prev_len = assignment.get(k).map_or(0, Vec::len);
            if kept.len() < prev_len {
                if std::env::var_os("DSOLVE_TRACE").is_some() {
                    let removed: Vec<String> = assignment
                        .get(k)
                        .map(|qs| {
                            qs.iter()
                                .filter(|q| !kept.contains(q))
                                .map(ToString::to_string)
                                .collect()
                        })
                        .unwrap_or_default();
                    let lhs_state: Vec<String> = c
                        .lhs
                        .kvars()
                        .iter()
                        .map(|lk| {
                            format!(
                                "{lk}={}",
                                Pred::and(
                                    assignment.get(lk).cloned().unwrap_or_default()
                                )
                            )
                        })
                        .collect();
                    eprintln!(
                        "weaken {k} at [{}]: drop {removed:?}\n    lhs: {lhs_full}\n    raw-lhs: {} raw-rhs: {}\n    lhs-assignment: {lhs_state:?}",
                        c.origin, c.lhs, c.rhs
                    );
                }
                weakened.push((*k, kept));
            }
        }
        for (k, kept) in weakened {
            assignment.insert(k, kept);
            for &r in readers.get(&k).map(Vec::as_slice).unwrap_or(&[]) {
                if !subs[r].writes().is_empty() && queued.insert(r) {
                    queue.push_back(r);
                }
            }
            // Also re-check this constraint's siblings writing k.
            if queued.insert(ci) {
                queue.push_back(ci);
            }
        }
    }

    stats.fixpoint_time = fixpoint_start.elapsed();

    // Final pass: concrete right-hand conjuncts.
    let obligation_start = Instant::now();
    let mut errors = Vec::new();
    for c in subs {
        let has_conc = c
            .rhs
            .atoms
            .iter()
            .any(|(_, a)| matches!(a, RefAtom::Conc(_)));
        if !has_conc {
            continue;
        }
        let lookup = |k: KVar| {
            Pred::and(assignment.get(&k).cloned().unwrap_or_default())
        };
        let (mut sorts, antecedent) = c.env.embed(genv, &lookup);
        bind_nu(&mut sorts, &c.nu_shape);
        let lhs = filter_wellsorted(&sorts, c.lhs.concretize(&lookup));
        let lhs_full = Pred::and(vec![antecedent, lhs]);
        for (theta, atom) in &c.rhs.atoms {
            let RefAtom::Conc(p) = atom else { continue };
            let rhs = theta.apply_pred(p);
            if !sorts.wellsorted(&rhs) {
                errors.push(LiquidError {
                    msg: format!("obligation `{rhs}` is ill-sorted"),
                    origin: Some(c.origin.clone()),
                });
                continue;
            }
            stats.smt_queries += 1;
            match smt.check_valid(&sorts, &lhs_full, &rhs) {
                Validity::Valid => continue,
                Validity::Unknown(e) => {
                    // The obligation is neither proven nor refuted:
                    // report it as unproven and taint the outcome.
                    errors.push(LiquidError {
                        msg: format!("obligation `{rhs}` unproven: {e}"),
                        origin: Some(c.origin.clone()),
                    });
                    exhaustion.get_or_insert(e);
                    continue;
                }
                Validity::Invalid => {}
            }
            {
                let msg = if std::env::var_os("DSOLVE_DEBUG").is_some() {
                    let ks: Vec<String> = c
                        .lhs
                        .kvars()
                        .iter()
                        .map(|lk| {
                            format!(
                                "{lk}={}",
                                Pred::and(
                                    assignment.get(lk).cloned().unwrap_or_default()
                                )
                            )
                        })
                        .collect();
                    format!(
                        "cannot prove `{rhs}`\n    from: {lhs_full}\n    raw: {} | {ks:?}",
                        c.lhs
                    )
                } else {
                    format!("cannot prove `{rhs}`")
                };
                errors.push(LiquidError {
                    msg,
                    origin: Some(c.origin.clone()),
                });
            }
        }
    }

    stats.obligation_time = obligation_start.elapsed();

    Solution {
        assignment,
        errors,
        stats,
        exhaustion,
    }
}

/// Checks a group of candidate qualifiers against one antecedent,
/// bisecting on failure: valid groups cost one query regardless of size.
/// Individual failures are retried against `full` (the unpruned
/// antecedent) when provided.
fn check_group(
    smt: &mut SmtSolver,
    sorts: &dsolve_logic::SortEnv,
    lhs: &Pred,
    full: Option<&Pred>,
    group: &[(Pred, Pred)],
    kept: &mut Vec<Pred>,
    stats: &mut SolveStats,
) {
    match group {
        [] => {}
        [(q, rhs_q)] => {
            stats.smt_queries += 1;
            let mut ok = smt.is_valid(sorts, lhs, rhs_q);
            if !ok && !retry_disabled() {
                if let Some(full) = full {
                    if full != lhs {
                        stats.smt_queries += 1;
                        ok = smt.is_valid(sorts, full, rhs_q);
                    }
                }
            }
            if ok {
                kept.push(q.clone());
            }
        }
        _ => {
            let all = Pred::and(group.iter().map(|(_, r)| r.clone()).collect());
            stats.smt_queries += 1;
            if smt.is_valid(sorts, lhs, &all) {
                kept.extend(group.iter().map(|(q, _)| q.clone()));
            } else {
                let mid = group.len() / 2;
                check_group(smt, sorts, lhs, full, &group[..mid], kept, stats);
                check_group(smt, sorts, lhs, full, &group[mid..], kept, stats);
            }
        }
    }
}

/// Keeps the conjuncts transitively relevant to the seed variables
/// (variable-free conjuncts such as `false` are always kept).
fn prune_conjuncts(
    p: Pred,
    seeds: &mut std::collections::BTreeSet<Symbol>,
) -> Pred {
    let conjuncts = p.conjuncts();
    if conjuncts.len() <= 12 {
        return Pred::and(conjuncts);
    }
    let fvs: Vec<std::collections::BTreeSet<Symbol>> =
        conjuncts.iter().map(Pred::free_vars).collect();
    let mut keep = vec![false; conjuncts.len()];
    // Variable-free conjuncts carry reachability information (`false`).
    for (i, fv) in fvs.iter().enumerate() {
        if fv.is_empty() {
            keep[i] = true;
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for (i, fv) in fvs.iter().enumerate() {
            if keep[i] || fv.is_empty() {
                continue;
            }
            if fv.iter().any(|v| seeds.contains(v)) {
                keep[i] = true;
                seeds.extend(fv.iter().copied());
                changed = true;
            }
        }
    }
    Pred::and(
        conjuncts
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| if k { Some(c) } else { None })
            .collect(),
    )
}

fn retry_disabled() -> bool {
    std::env::var_os("DSOLVE_NO_RETRY").is_some()
}

fn bind_nu(sorts: &mut dsolve_logic::SortEnv, shape: &dsolve_nanoml::MlType) {
    sorts.bind(
        Symbol::value_var(),
        crate::measure::sort_of_mltype(shape),
    );
}

fn filter_wellsorted(sorts: &dsolve_logic::SortEnv, p: Pred) -> Pred {
    Pred::and(
        p.conjuncts()
            .into_iter()
            .filter(|c| sorts.wellsorted(c))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Origin;
    use crate::env::{fresh_refinement, LiquidEnv};
    use crate::measure::MeasureEnv;
    use crate::rtype::{RType, Refinement};
    use dsolve_logic::{parse_pred, Sort, SortEnv};
    use dsolve_nanoml::{DataEnv, MlType};

    fn genv() -> GlobalEnv {
        GlobalEnv::new(DataEnv::with_builtins(), MeasureEnv::new())
    }

    fn quals() -> Vec<Qualifier> {
        vec![
            Qualifier::new("Pos", parse_pred("0 < VV").unwrap()),
            Qualifier::new("UB", parse_pred("_ <= VV").unwrap()),
        ]
    }

    #[test]
    fn single_kvar_keeps_implied_qualifiers() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let mut scope = SortEnv::new();
        scope.bind(Symbol::new("i"), Sort::Int);
        let r = fresh_refinement(&mut kenv, scope, &MlType::Int);
        let env = LiquidEnv::new().bind(Symbol::new("i"), RType::int());
        // {ν = i + 1} with i ≥ 1 flows into κ.
        let sub = SubC {
            env: env.bind(
                Symbol::new("i"),
                RType::int_pred(parse_pred("1 <= VV").unwrap()),
            ),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("VV = i + 1").unwrap()),
            rhs: r.clone(),
            origin: Origin::Flow("test"),
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &SolveConfig::default());
        assert!(sol.errors.is_empty());
        let k = r.kvars()[0];
        let p = sol.pred_of(k).to_string();
        // Both 0 < ν and i ≤ ν survive.
        assert!(p.contains("(0 < VV)"), "{p}");
        assert!(p.contains("(i <= VV)"), "{p}");
    }

    #[test]
    fn unimplied_qualifiers_are_weakened_away() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let scope = SortEnv::new();
        let r = fresh_refinement(&mut kenv, scope, &MlType::Int);
        // ⊤ flows into κ: nothing survives.
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::top(),
            rhs: r.clone(),
            origin: Origin::Flow("test"),
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &SolveConfig::default());
        assert_eq!(sol.pred_of(r.kvars()[0]), Pred::True);
    }

    #[test]
    fn chained_kvars_propagate() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r1 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let r2 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        // {0 < ν} <: κ1, κ1 <: κ2: both keep Pos.
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("0 < VV && VV = 3").unwrap()),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r1.clone(),
                rhs: r2.clone(),
                origin: Origin::Flow("t"),
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &SolveConfig::default());
        assert_eq!(sol.pred_of(r2.kvars()[0]).to_string(), "(0 < VV)");
    }

    #[test]
    fn weakening_is_transitive_through_cycles() {
        // κ1 <: κ2 and κ2 <: κ1 with {0 < ν} into κ1 only via a
        // weaker source {ν = 0} — everything must drain.
        let genv = genv();
        let mut kenv = KEnv::new();
        let r1 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let r2 = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("VV = 0").unwrap()),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r1.clone(),
                rhs: r2.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r2.clone(),
                rhs: r1.clone(),
                origin: Origin::Flow("t"),
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &SolveConfig::default());
        // 0 < ν does not hold of ν = 0.
        assert_eq!(sol.pred_of(r1.kvars()[0]), Pred::True);
        assert_eq!(sol.pred_of(r2.kvars()[0]), Pred::True);
    }

    #[test]
    fn concrete_obligations_reported() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            origin: Origin::Assert { line: 42 },
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &SolveConfig::default());
        assert_eq!(sol.errors.len(), 1);
        assert!(sol.errors[0].to_string().contains("line 42"));
    }

    #[test]
    fn zero_timeout_reports_unknown_deadline_not_hang() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            origin: Origin::Assert { line: 7 },
        };
        let config = SolveConfig {
            budget: Budget::with_timeout(std::time::Duration::from_secs(0)),
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.resource, dsolve_logic::Resource::Deadline);
        assert!(sol.outcome().is_unknown());
        // The undecided obligation is surfaced, not silently dropped.
        assert_eq!(sol.errors.len(), 1);
        assert!(sol.errors[0].to_string().contains("unproven"), "{}", sol.errors[0]);
    }

    #[test]
    fn exhausted_fixpoint_taints_outcome() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: r,
            origin: Origin::Flow("t"),
        };
        let config = SolveConfig {
            budget: Budget {
                max_fixpoint_iterations: 0,
                ..Budget::default()
            },
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.phase, dsolve_logic::Phase::Fixpoint);
        assert_eq!(e.resource, dsolve_logic::Resource::FixpointIterations);
        // No obligation failed, yet the run must not claim Safe.
        assert!(sol.errors.is_empty());
        assert!(sol.outcome().is_unknown());
    }

    #[test]
    fn exhausted_query_budget_reports_unproven_obligation() {
        let genv = genv();
        let kenv = KEnv::new();
        let sub = SubC {
            env: LiquidEnv::new(),
            nu_shape: MlType::Int,
            lhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
            rhs: Refinement::pred(parse_pred("0 <= VV").unwrap()),
            origin: Origin::Assert { line: 9 },
        };
        let config = SolveConfig {
            budget: Budget {
                max_smt_queries: Some(0),
                ..Budget::default()
            },
            ..SolveConfig::default()
        };
        let sol = solve(&genv, &kenv, &[sub], &quals(), &config);
        let e = sol.exhaustion.as_ref().expect("exhaustion recorded");
        assert_eq!(e.resource, dsolve_logic::Resource::SmtQueries);
        assert!(sol.outcome().is_unknown());
    }

    #[test]
    fn concrete_obligation_uses_solved_kvars() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let r = fresh_refinement(&mut kenv, SortEnv::new(), &MlType::Int);
        let subs = vec![
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: Refinement::pred(parse_pred("VV = 5").unwrap()),
                rhs: r.clone(),
                origin: Origin::Flow("t"),
            },
            SubC {
                env: LiquidEnv::new(),
                nu_shape: MlType::Int,
                lhs: r.clone(),
                rhs: Refinement::pred(parse_pred("0 < VV").unwrap()),
                origin: Origin::Assert { line: 1 },
            },
        ];
        let sol = solve(&genv, &kenv, &subs, &quals(), &SolveConfig::default());
        assert!(sol.errors.is_empty(), "{:?}", sol.errors.first().map(|e| e.to_string()));
    }
}
