//! Verification environments and their logical embedding.

use crate::measure::{sort_of_mltype, MeasureEnv};
use crate::rtype::{KVar, RScheme, RType, Refinement};
use dsolve_logic::{Expr, Pred, Sort, SortEnv, Symbol};
use dsolve_nanoml::{DataEnv, MlType};
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable global context shared by the whole verification run.
#[derive(Clone)]
pub struct GlobalEnv {
    /// Datatype declarations.
    pub data: DataEnv,
    /// Measure definitions.
    pub measures: MeasureEnv,
    /// Base sort environment: measures and built-in uninterpreted
    /// functions, no program variables.
    pub base_sorts: SortEnv,
}

impl GlobalEnv {
    /// Builds the global context (declaring measure sorts).
    pub fn new(data: DataEnv, measures: MeasureEnv) -> GlobalEnv {
        let mut base_sorts = SortEnv::new();
        measures.declare_sorts(&mut base_sorts);
        GlobalEnv {
            data,
            measures,
            base_sorts,
        }
    }
}

/// The type environment `Γ`: refined bindings plus boolean guard
/// predicates, in dependency order. Persistently shared (cheap snapshots
/// into constraints).
#[derive(Clone, Default)]
pub struct LiquidEnv {
    node: Option<Arc<EnvNode>>,
}

enum EnvItem {
    Bind(Symbol, RScheme),
    Guard(Pred),
}

struct EnvNode {
    item: EnvItem,
    prev: Option<Arc<EnvNode>>,
    len: usize,
}

impl LiquidEnv {
    /// The empty environment.
    pub fn new() -> LiquidEnv {
        LiquidEnv::default()
    }

    /// Extends with a monomorphic binding.
    #[must_use]
    pub fn bind(&self, x: Symbol, t: RType) -> LiquidEnv {
        self.bind_scheme(x, RScheme::mono(t))
    }

    /// Extends with a scheme binding.
    #[must_use]
    pub fn bind_scheme(&self, x: Symbol, s: RScheme) -> LiquidEnv {
        LiquidEnv {
            node: Some(Arc::new(EnvNode {
                item: EnvItem::Bind(x, s),
                len: self.len() + 1,
                prev: self.node.clone(),
            })),
        }
    }

    /// Extends with a guard predicate (branch or measure information).
    #[must_use]
    pub fn guard(&self, p: Pred) -> LiquidEnv {
        if p == Pred::True {
            return self.clone();
        }
        LiquidEnv {
            node: Some(Arc::new(EnvNode {
                item: EnvItem::Guard(p),
                len: self.len() + 1,
                prev: self.node.clone(),
            })),
        }
    }

    fn len(&self) -> usize {
        self.node.as_ref().map_or(0, |n| n.len)
    }

    /// Iterates items oldest-first.
    fn items(&self) -> Vec<&EnvItem> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            out.push(&n.item);
            cur = n.prev.as_deref();
        }
        out.reverse();
        out
    }

    /// Looks up the most recent binding of `x`.
    pub fn lookup(&self, x: Symbol) -> Option<&RScheme> {
        let mut cur = self.node.as_deref();
        while let Some(n) = cur {
            if let EnvItem::Bind(y, s) = &n.item {
                if *y == x {
                    return Some(s);
                }
            }
            cur = n.prev.as_deref();
        }
        None
    }

    /// The sort environment for this scope: base sorts plus one sort per
    /// bound variable (by its shape).
    pub fn sort_env(&self, genv: &GlobalEnv) -> SortEnv {
        let mut out = genv.base_sorts.clone();
        for item in self.items() {
            if let EnvItem::Bind(x, s) = item {
                if s.vars.is_empty() {
                    out.bind(*x, sort_of_mltype(&s.ty.shape()));
                }
            }
        }
        out
    }

    /// Embeds the environment as a logical antecedent under a `κ`
    /// assignment: each monomorphic value binding contributes its
    /// top-level refinement with `ν := x`, each guard contributes itself.
    ///
    /// Conjuncts that are ill-sorted in this scope (e.g. `Sel`-facts over
    /// maps whose codomain does not embed as `int`) are dropped — always
    /// sound on the antecedent side.
    pub fn embed(
        &self,
        genv: &GlobalEnv,
        lookup: &impl Fn(KVar) -> Pred,
    ) -> (SortEnv, Pred) {
        let sorts = self.sort_env(genv);
        let mut conj: Vec<Pred> = Vec::new();
        for item in self.items() {
            match item {
                EnvItem::Bind(x, s) => {
                    if !s.vars.is_empty() {
                        continue;
                    }
                    let r = s.ty.refinement();
                    if r.is_top() {
                        continue;
                    }
                    let p = r.concretize(lookup).subst_nu(&Expr::Var(*x));
                    push_wellsorted(&sorts, p, &mut conj);
                }
                EnvItem::Guard(p) => push_wellsorted(&sorts, p.clone(), &mut conj),
            }
        }
        (sorts, Pred::and(conj))
    }

    /// Variables bound in the environment, oldest first.
    pub fn domain(&self) -> Vec<Symbol> {
        self.items()
            .iter()
            .filter_map(|i| match i {
                EnvItem::Bind(x, _) => Some(*x),
                EnvItem::Guard(_) => None,
            })
            .collect()
    }
}

/// Pushes `p`'s well-sorted conjuncts (dropping ill-sorted ones).
fn push_wellsorted(sorts: &SortEnv, p: Pred, out: &mut Vec<Pred>) {
    for c in p.conjuncts() {
        if sorts.wellsorted(&c) {
            out.push(c);
        }
    }
}

/// Reference-counted info about a liquid variable's scope, recorded at
/// template-creation time and used for qualifier instantiation.
#[derive(Clone)]
pub struct KInfo {
    /// Scope: the environment visible to the refinement (including
    /// canonical field names for matrix entries).
    pub scope: SortEnv,
    /// The sort of `ν` at this position.
    pub nu_sort: Sort,
    /// The shape of `ν` (for diagnostics).
    pub nu_shape: MlType,
}

/// Registry of liquid variable scopes.
#[derive(Clone, Default)]
pub struct KEnv {
    infos: HashMap<KVar, KInfo>,
}

impl KEnv {
    /// Creates an empty registry.
    pub fn new() -> KEnv {
        KEnv::default()
    }

    /// Registers a fresh liquid variable with its scope.
    pub fn register(&mut self, k: KVar, info: KInfo) {
        self.infos.insert(k, info);
    }

    /// Looks up a variable's scope info.
    pub fn info(&self, k: KVar) -> Option<&KInfo> {
        self.infos.get(&k)
    }

    /// All registered variables.
    pub fn kvars(&self) -> impl Iterator<Item = KVar> + '_ {
        self.infos.keys().copied()
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }
}

/// A new refinement consisting of a single fresh `κ`, registered in
/// `kenv` with the given scope.
pub fn fresh_refinement(
    kenv: &mut KEnv,
    scope: SortEnv,
    nu_shape: &MlType,
) -> Refinement {
    let r = Refinement::fresh_kvar();
    let k = r.kvars()[0];
    kenv.register(
        k,
        KInfo {
            scope,
            nu_sort: sort_of_mltype(nu_shape),
            nu_shape: nu_shape.clone(),
        },
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtype::BaseTy;
    use dsolve_logic::parse_pred;

    fn genv() -> GlobalEnv {
        GlobalEnv::new(DataEnv::with_builtins(), MeasureEnv::new())
    }

    fn no_k(_: KVar) -> Pred {
        Pred::True
    }

    #[test]
    fn bind_and_lookup_shadowing() {
        let env = LiquidEnv::new()
            .bind(Symbol::new("x"), RType::int())
            .bind(Symbol::new("x"), RType::bool());
        let s = env.lookup(Symbol::new("x")).unwrap();
        assert_eq!(s.ty, RType::bool());
        assert!(env.lookup(Symbol::new("zzz")).is_none());
    }

    #[test]
    fn embed_collects_refinements_and_guards() {
        let env = LiquidEnv::new()
            .bind(
                Symbol::new("x"),
                RType::Base(BaseTy::Int, Refinement::pred(parse_pred("0 < VV").unwrap())),
            )
            .guard(parse_pred("x < y").unwrap())
            .bind(Symbol::new("y"), RType::int());
        let (_, p) = env.embed(&genv(), &no_k);
        assert_eq!(p.to_string(), "((0 < x) && (x < y))");
    }

    #[test]
    fn embed_drops_ill_sorted_conjuncts() {
        // A Sel-fact over a non-map variable must be dropped, the rest
        // kept.
        let env = LiquidEnv::new().bind(
            Symbol::new("x"),
            RType::Base(
                BaseTy::Int,
                Refinement::pred(parse_pred("0 < VV && Sel(x, VV) = 1").unwrap()),
            ),
        );
        let (_, p) = env.embed(&genv(), &no_k);
        assert_eq!(p.to_string(), "(0 < x)");
    }

    #[test]
    fn sort_env_includes_bindings() {
        let env = LiquidEnv::new().bind(Symbol::new("x"), RType::int());
        let sorts = env.sort_env(&genv());
        assert_eq!(sorts.sort_of_var(Symbol::new("x")), Some(&Sort::Int));
    }

    #[test]
    fn persistent_snapshots_are_independent() {
        let base = LiquidEnv::new().bind(Symbol::new("a"), RType::int());
        let left = base.bind(Symbol::new("b"), RType::int());
        let right = base.bind(Symbol::new("c"), RType::bool());
        assert!(left.lookup(Symbol::new("b")).is_some());
        assert!(left.lookup(Symbol::new("c")).is_none());
        assert!(right.lookup(Symbol::new("c")).is_some());
        assert!(right.lookup(Symbol::new("b")).is_none());
    }
}
