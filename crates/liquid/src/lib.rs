//! # dsolve-liquid
//!
//! The paper's primary contribution: a refinement type system for NanoML
//! with **recursive refinements** (§4) and **polymorphic refinements**
//! (§5), verified by **liquid type inference** — abstract interpretation
//! over conjunctions of logical qualifiers [Rondon et al., PLDI 2008] —
//! with implications discharged by the `dsolve-smt` solver.
//!
//! The pipeline:
//!
//! 1. [`Gen`] walks a typed program emitting *simple* subtyping
//!    constraints: structural subtyping (functions, tuples, refined
//!    datatypes with their ρ-matrices, refined polytype instances) is
//!    split eagerly by [`split`];
//! 2. [`solve`] runs the iterative-weakening fixpoint over qualifier
//!    instantiations;
//! 3. concrete obligations (asserts, division safety, `.mlq` specs) are
//!    checked under the solved assignment.
//!
//! ## Example: Fig. 1 of the paper, end to end
//!
//! ```
//! use dsolve_liquid::{verify_source, MeasureEnv};
//! use dsolve_logic::{parse_pred, Qualifier};
//!
//! let src = r#"
//! let rec range i j = if i > j then [] else i :: range (i + 1) j
//! let rec fold_left f acc xs =
//!   match xs with
//!   | [] -> acc
//!   | x :: rest -> fold_left f (f acc x) rest
//! let harmonic n =
//!   let ds = range 1 n in
//!   fold_left (fun s k -> s + 10000 / k) 0 ds
//! "#;
//! // The paper's qualifier set Q = {0 < ν, ★ ≤ ν}.
//! let quals = vec![
//!     Qualifier::new("Pos", parse_pred("0 < VV").unwrap()),
//!     Qualifier::new("UB", parse_pred("_ <= VV").unwrap()),
//! ];
//! let result = verify_source(src, MeasureEnv::new(), quals, vec![]).unwrap();
//! assert!(result.is_safe(), "{:?}", result.errors.first().map(|e| e.to_string()));
//! ```

#![warn(missing_docs)]

mod builtins;
mod constraint;
mod env;
mod gen;
mod measure;
mod rtype;
mod solve;
mod subtype;
mod template;
mod verify;

pub use builtins::{assert_arg_type, builtin_schemes};
pub use constraint::{LiquidError, Origin, SubC};
pub use env::{fresh_refinement, GlobalEnv, KEnv, KInfo, LiquidEnv};
pub use gen::Gen;
pub use measure::{sort_of_mltype, Measure, MeasureCase, MeasureEnv, MeasureError};
pub use rtype::{
    field_name, is_witness, witness_symbol, BaseTy, DataRType, KVar, RScheme, RType,
    RVarDecl, RefAtom, Refinement, Rho,
};
pub use solve::{solve, SolveConfig, SolveStats, Solution};
pub use subtype::split;
pub use template::{
    fresh, freshen, instantiate, instantiate_with, map_key_binder, rtype_of_shape,
    unfold_ctor, up_field_name,
};
pub use verify::{verify_source, Spec, Verifier, VerifyResult};
