//! Subtyping constraints over refinements.

use crate::env::LiquidEnv;
use crate::rtype::{KVar, Refinement};
use dsolve_nanoml::MlType;
use std::fmt;

/// Why a constraint exists (drives error reporting).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// An `assert` in the program.
    Assert {
        /// Source line of the assertion.
        line: u32,
    },
    /// A function-application argument obligation.
    App {
        /// Printable callee description.
        callee: String,
    },
    /// A divisor-nonzero obligation.
    Div {
        /// Printable context.
        context: String,
    },
    /// A user specification from the `.mlq` file.
    Spec {
        /// The specified top-level name.
        name: String,
    },
    /// Internal flow (joins, folds, generalization...).
    Flow(&'static str),
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Origin::Assert { line } => write!(f, "assert on line {line}"),
            Origin::App { callee } => write!(f, "argument of `{callee}`"),
            Origin::Div { context } => write!(f, "divisor in {context}"),
            Origin::Spec { name } => write!(f, "specification of `{name}`"),
            Origin::Flow(what) => write!(f, "{what}"),
        }
    }
}

/// A *simple* subtyping constraint: under the environment, the left
/// refinement must imply the right one (both about a `ν` of the given
/// shape). The right side is either a liquid variable template (solved by
/// weakening) or concrete (checked after the fixpoint).
#[derive(Clone)]
pub struct SubC {
    /// Environment snapshot.
    pub env: LiquidEnv,
    /// Shape of the value `ν` both refinements describe.
    pub nu_shape: MlType,
    /// Left (stronger) refinement.
    pub lhs: Refinement,
    /// Right (weaker) refinement.
    pub rhs: Refinement,
    /// Provenance.
    pub origin: Origin,
}

impl SubC {
    /// The liquid variables this constraint *reads* (left side and
    /// environment) — used to build the solver's dependency index.
    pub fn reads(&self) -> Vec<KVar> {
        let mut out = self.lhs.kvars();
        for x in self.env.domain() {
            if let Some(s) = self.env.lookup(x) {
                out.extend(s.ty.kvars());
            }
        }
        out
    }

    /// The liquid variables on the right side (written/refined).
    pub fn writes(&self) -> Vec<KVar> {
        self.rhs.kvars()
    }

    /// Whether the right side is fully concrete.
    pub fn is_concrete_rhs(&self) -> bool {
        self.rhs.kvars().is_empty()
    }
}

impl fmt::Debug for SubC {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SubC[{}] {{..Γ..}} ⊢ {} <: {} @ {}",
            self.nu_shape, self.lhs, self.rhs, self.origin
        )
    }
}

/// An error produced by the verifier.
#[derive(Clone, Debug)]
pub struct LiquidError {
    /// Human-readable message.
    pub msg: String,
    /// The origin of the failed obligation, when known.
    pub origin: Option<Origin>,
}

impl LiquidError {
    /// Creates an internal error.
    pub fn internal(msg: impl Into<String>) -> LiquidError {
        LiquidError {
            msg: msg.into(),
            origin: None,
        }
    }
}

impl fmt::Display for LiquidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.origin {
            Some(o) => write!(f, "{} ({o})", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for LiquidError {}
