//! Decidable subtyping: splitting structural subtyping into simple
//! refinement implications (Fig. 6, Fig. 8, Fig. 9).
//!
//! Function subtyping is contravariant/covariant; tuples use [<:-PROD]
//! with environment extension; refined polytype instances use
//! [<:-REFVAR]; datatypes use [<:-REC]: the matrices are applied one
//! level (with shared fresh binders), recursive positions are compared by
//! the *pointwise local subtyping* of their composed matrices at one more
//! level of fresh binders — the coinductive reading of the rule.

use crate::constraint::{LiquidError, Origin, SubC};
use crate::env::{GlobalEnv, LiquidEnv};
use crate::rtype::{DataRType, RType, Refinement, Rho};
use crate::template::{map_key_binder, rtype_of_shape, unfold_ctor};
use dsolve_logic::{Expr, Pred, Symbol};
use dsolve_nanoml::MlType;
use std::collections::HashMap;

/// Splits `lhs <: rhs` under `env` into simple constraints, appended to
/// `out`.
///
/// # Errors
///
/// Fails on shape mismatches, which indicate a bug upstream (HM inference
/// guarantees equal shapes).
pub fn split(
    genv: &GlobalEnv,
    env: &LiquidEnv,
    lhs: &RType,
    rhs: &RType,
    origin: &Origin,
    out: &mut Vec<SubC>,
) -> Result<(), LiquidError> {
    // Mutually recursive datatype declarations could make structural
    // splitting cycle; the fuel bound degrades those (rare) corners to a
    // top-level-refinement comparison, which is conservative.
    split_fuel(genv, env, lhs, rhs, origin, out, 64)
}

#[allow(clippy::too_many_arguments)]
fn split_fuel(
    genv: &GlobalEnv,
    env: &LiquidEnv,
    lhs: &RType,
    rhs: &RType,
    origin: &Origin,
    out: &mut Vec<SubC>,
    fuel: u32,
) -> Result<(), LiquidError> {
    if fuel == 0 {
        push_sub(
            env,
            &lhs.shape(),
            &lhs.refinement(),
            &rhs.refinement(),
            origin,
            out,
        );
        return Ok(());
    }
    let fuel = fuel - 1;
    match (lhs, rhs) {
        (RType::Base(b1, r1), RType::Base(b2, r2)) if b1 == b2 => {
            push_sub(env, &lhs.shape(), r1, r2, origin, out);
            let _ = fuel;
            Ok(())
        }
        (RType::TyVar(v1, th1, r1), RType::TyVar(v2, th2, r2)) if v1 == v2 => {
            // [<:-REFVAR]: the pending substitutions must map witnesses to
            // provably equal values. Only witnesses present on *both*
            // sides constrain: a side without the witness came from a
            // context whose instantiations cannot mention it.
            let th1 = th1.telescope();
            let th2 = th2.telescope();
            let d1: Vec<Symbol> = th1.pairs().iter().map(|(x, _)| *x).collect();
            let domain: Vec<Symbol> = th2
                .pairs()
                .iter()
                .map(|(x, _)| *x)
                .filter(|x| d1.contains(x))
                .collect();
            for x in domain {
                let e1 = th1.apply_expr(&Expr::Var(x));
                let e2 = th2.apply_expr(&Expr::Var(x));
                if e1 != e2 {
                    out.push(SubC {
                        env: env.clone(),
                        nu_shape: MlType::Var(*v1),
                        lhs: Refinement::top(),
                        rhs: Refinement::pred(Pred::eq(e1, e2)),
                        origin: origin.clone(),
                    });
                }
            }
            push_sub(env, &MlType::Var(*v1), r1, r2, origin, out);
            Ok(())
        }
        (RType::Fun(x1, a1, b1), RType::Fun(x2, a2, b2)) => {
            split_fuel(genv, env, a2, a1, origin, out, fuel)?;
            let env2 = env.bind(*x2, (**a2).clone());
            let b1s = b1.subst1(*x1, &Expr::Var(*x2));
            split_fuel(genv, &env2, &b1s, b2, origin, out, fuel)
        }
        (RType::Tuple(f1), RType::Tuple(f2)) if f1.len() == f2.len() => {
            let mut env2 = env.clone();
            let mut l: Vec<(Symbol, RType)> = f1.clone();
            let mut r: Vec<(Symbol, RType)> = f2.clone();
            for i in 0..l.len() {
                let z = Symbol::fresh("z");
                let (x1, t1) = l[i].clone();
                let (x2, t2) = r[i].clone();
                split_fuel(genv, &env2, &t1, &t2, origin, out, fuel)?;
                // Bind the common name and rewrite later fields.
                env2 = env2.bind(z, t1.selfify(Expr::Var(z)));
                for (_, later) in l.iter_mut().skip(i + 1) {
                    *later = later.subst1(x1, &Expr::Var(z));
                }
                for (_, later) in r.iter_mut().skip(i + 1) {
                    *later = later.subst1(x2, &Expr::Var(z));
                }
            }
            Ok(())
        }
        (RType::Data(d1), RType::Data(d2)) if d1.name == d2.name => {
            if d1.name == Symbol::new("map") {
                split_map(genv, env, d1, d2, origin, out, fuel)
            } else {
                split_data(genv, env, d1, d2, origin, out, fuel)
            }
        }
        _ => Err(LiquidError {
            msg: format!("shape mismatch in subtyping: `{lhs}` vs `{rhs}`"),
            origin: Some(origin.clone()),
        }),
    }
}

fn push_sub(
    env: &LiquidEnv,
    shape: &MlType,
    lhs: &Refinement,
    rhs: &Refinement,
    origin: &Origin,
    out: &mut Vec<SubC>,
) {
    if rhs.is_top() {
        return;
    }
    out.push(SubC {
        env: env.clone(),
        nu_shape: shape.clone(),
        lhs: lhs.clone(),
        rhs: rhs.clone(),
        origin: origin.clone(),
    });
}

/// Finite maps (§5): keys invariant, values compared under a shared
/// binding of the canonical key binder.
#[allow(clippy::too_many_arguments)]
fn split_map(
    genv: &GlobalEnv,
    env: &LiquidEnv,
    d1: &DataRType,
    d2: &DataRType,
    origin: &Origin,
    out: &mut Vec<SubC>,
    fuel: u32,
) -> Result<(), LiquidError> {
    push_sub(
        env,
        &RType::Data(d1.clone()).shape(),
        &d1.refinement,
        &d2.refinement,
        origin,
        out,
    );
    // Keys: invariant (the proviso OCaml already enforces, §6 Bdd).
    split_fuel(genv, env, &d1.targs[0], &d2.targs[0], origin, out, fuel)?;
    split_fuel(genv, env, &d2.targs[0], &d1.targs[0], origin, out, fuel)?;
    // Values: bind a fresh key and compare.
    let k = Symbol::fresh("key");
    let env2 = env.bind(k, d1.targs[0].clone().selfify(Expr::Var(k)));
    let v1 = d1.targs[1].subst1(map_key_binder(), &Expr::Var(k));
    let v2 = d2.targs[1].subst1(map_key_binder(), &Expr::Var(k));
    split_fuel(genv, &env2, &v1, &v2, origin, out, fuel)
}

/// Refined datatypes ([<:-REC] with the coinductive one-level reading).
#[allow(clippy::too_many_arguments)]
fn split_data(
    genv: &GlobalEnv,
    env: &LiquidEnv,
    d1: &DataRType,
    d2: &DataRType,
    origin: &Origin,
    out: &mut Vec<SubC>,
    fuel: u32,
) -> Result<(), LiquidError> {
    let shape = RType::Data(d1.clone()).shape();
    push_sub(env, &shape, &d1.refinement, &d2.refinement, origin, out);
    // Type arguments are NOT compared directly: element flows go through
    // the per-constructor field comparisons below, which conjoin the
    // matrix entries — comparing bare targs would demand uniform element
    // refinements and defeat position-dependent invariants like
    // sortedness.
    let Some(decl) = genv.data.decl(d1.name) else {
        return Err(LiquidError::internal(format!(
            "unknown datatype `{}` in subtyping",
            d1.name
        )));
    };
    let decl = decl.clone();
    for c in 0..decl.ctor_names.len() {
        let binders: Vec<Symbol> = decl.ctor_fields[c]
            .iter()
            .map(|_| Symbol::fresh("fld"))
            .collect();
        let lf = unfold_ctor(genv, d1, c, &binders);
        let rf = unfold_ctor(genv, d2, c, &binders);
        let mut env_c = env.clone();
        for j in 0..lf.len() {
            match (&lf[j], &rf[j]) {
                // Recursive positions: compare composed matrices
                // pointwise at one more level of fresh binders, instead
                // of recursing into `split` (which would not terminate).
                (RType::Data(s1), RType::Data(s2))
                    if s1.name == d1.name && s2.name == d1.name =>
                {
                    push_sub(&env_c, &shape, &s1.refinement, &s2.refinement, origin, out);
                    split_matrices(
                        genv,
                        &env_c,
                        &decl,
                        (d1, &s1.rho),
                        (d2, &s2.rho),
                        origin,
                        out,
                        fuel,
                    )?;
                }
                (t1, t2) => {
                    split_fuel(genv, &env_c, t1, t2, origin, out, fuel)?;
                }
            }
            env_c = env_c.bind(binders[j], lf[j].selfify(Expr::Var(binders[j])));
        }
    }
    Ok(())
}

/// Local subtyping between two composed matrices: for every constructor,
/// bind fresh fields (assuming the left-hand field types) and compare the
/// full field types — type arguments strengthened by the matrix entries
/// for parameter positions, entry-to-entry implications at recursive
/// positions (one level; deeper levels are renamings).
#[allow(clippy::too_many_arguments)]
fn split_matrices(
    genv: &GlobalEnv,
    env: &LiquidEnv,
    decl: &dsolve_nanoml::DeclSig,
    lhs: (&DataRType, &Rho),
    rhs: (&DataRType, &Rho),
    origin: &Origin,
    out: &mut Vec<SubC>,
    fuel: u32,
) -> Result<(), LiquidError> {
    let (d1, m1) = lhs;
    let (d2, m2) = rhs;
    let params1: HashMap<u32, RType> = d1
        .targs
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();
    let params2: HashMap<u32, RType> = d2
        .targs
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();
    let targ_shapes: Vec<MlType> = d1.targs.iter().map(RType::shape).collect();
    for c2 in 0..decl.ctor_names.len() {
        let cname2 = decl.ctor_names[c2];
        let mut env2 = env.clone();
        let mut theta = dsolve_logic::Subst::new();
        for (f2, fshape) in decl.ctor_fields[c2].iter().enumerate() {
            let ws = Symbol::fresh("w");
            theta = theta.then(crate::rtype::field_name(d1.name, cname2, f2), Expr::Var(ws));
            let e1 = m1.entry(c2, f2).subst(&theta);
            let e2 = m2.entry(c2, f2).subst(&theta);
            let fs = {
                let map: HashMap<u32, MlType> = targ_shapes
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (i as u32, t.clone()))
                    .collect();
                fshape.apply(&map)
            };
            let lhs_t = field_rtype(fshape, &params1, &e1);
            if is_rec_field(decl, d1.name, fshape) {
                // Entry-to-entry only; the sub-structure's own matrices
                // are α-renamings of the ones being compared.
                push_sub(&env2, &fs, &e1, &e2, origin, out);
            } else {
                let rhs_t = field_rtype(fshape, &params2, &e2);
                split_fuel(genv, &env2, &lhs_t, &rhs_t, origin, out, fuel)?;
            }
            // Bind the field at its left-hand type for later entries of
            // the same product.
            env2 = env2.bind(ws, lhs_t.selfify(Expr::Var(ws)));
        }
    }
    Ok(())
}

fn field_rtype(fshape: &MlType, params: &HashMap<u32, RType>, entry: &Refinement) -> RType {
    let base = match fshape {
        MlType::Var(i) => params
            .get(i)
            .cloned()
            .unwrap_or_else(|| rtype_of_shape(fshape, params)),
        other => rtype_of_shape(other, params),
    };
    base.strengthen(entry)
}

fn is_rec_field(decl: &dsolve_nanoml::DeclSig, name: Symbol, fshape: &MlType) -> bool {
    match fshape {
        MlType::Data(n, args) if *n == name && args.len() == decl.params => args
            .iter()
            .enumerate()
            .all(|(i, a)| *a == MlType::Var(i as u32)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::KEnv;
    use crate::measure::MeasureEnv;
    use crate::rtype::{BaseTy, RefAtom};
    use crate::template;
    use dsolve_logic::{parse_pred, Subst};
    use dsolve_nanoml::DataEnv;
    use std::collections::BTreeMap;

    fn genv() -> GlobalEnv {
        GlobalEnv::new(DataEnv::with_builtins(), MeasureEnv::new())
    }

    fn int_p(s: &str) -> RType {
        RType::int_pred(parse_pred(s).unwrap())
    }

    #[test]
    fn base_subtyping_yields_one_constraint() {
        let genv = genv();
        let mut out = Vec::new();
        split(
            &genv,
            &LiquidEnv::new(),
            &int_p("0 < VV"),
            &int_p("0 <= VV"),
            &Origin::Flow("test"),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].nu_shape, MlType::Int);
    }

    #[test]
    fn top_rhs_generates_nothing() {
        let genv = genv();
        let mut out = Vec::new();
        split(
            &genv,
            &LiquidEnv::new(),
            &int_p("0 < VV"),
            &RType::int(),
            &Origin::Flow("test"),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn function_subtyping_is_contravariant() {
        let genv = genv();
        let x = Symbol::new("x");
        let f1 = RType::Fun(x, Box::new(int_p("0 <= VV")), Box::new(int_p("x < VV")));
        let y = Symbol::new("y");
        let f2 = RType::Fun(y, Box::new(int_p("0 < VV")), Box::new(int_p("y <= VV")));
        let mut out = Vec::new();
        split(&genv, &LiquidEnv::new(), &f1, &f2, &Origin::Flow("t"), &mut out).unwrap();
        assert_eq!(out.len(), 2);
        // First constraint: arguments flipped (0 < ν ⇒ 0 ≤ ν).
        assert!(out[0].lhs.to_string().contains("0 < VV"));
        assert!(out[0].rhs.to_string().contains("0 <= VV"));
        // Second: results in env with y bound.
        assert!(out[1].env.lookup(y).is_some());
    }

    #[test]
    fn refvar_pending_substitutions_must_agree() {
        let genv = genv();
        let wit = Symbol::new("xw");
        let t1 = RType::TyVar(0, Subst::single(wit, Expr::var("k1")), Refinement::top());
        let t2 = RType::TyVar(
            0,
            Subst::single(wit, Expr::var("k2")),
            Refinement::top(),
        );
        let mut out = Vec::new();
        split(&genv, &LiquidEnv::new(), &t1, &t2, &Origin::Flow("t"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rhs.to_string(), "(k1 = k2)");
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let genv = genv();
        let mut out = Vec::new();
        assert!(split(
            &genv,
            &LiquidEnv::new(),
            &RType::int(),
            &RType::bool(),
            &Origin::Flow("t"),
            &mut out
        )
        .is_err());
    }

    /// `int list≤ <: int list≠` (judgment (7) of the paper) splits into a
    /// local entry implication `z ≤ ν ⇒ z ≠ ν`.
    #[test]
    fn sorted_list_subtype_of_distinct_list() {
        let genv = genv();
        let list = Symbol::new("list");
        let cons = Symbol::new("Cons");
        let mk = |pred: &str| {
            let mut inner_m = Rho::top();
            inner_m.set(
                1,
                0,
                Refinement::pred(
                    parse_pred(&format!(
                        "{} {pred} VV",
                        template::up_field_name(list, cons, 0)
                    ))
                    .unwrap(),
                ),
            );
            let mut inner = BTreeMap::new();
            inner.insert((1, 1), inner_m);
            DataRType {
                name: list,
                targs: vec![RType::int()],
                rho: Rho::top(),
                inner,
                refinement: Refinement::top(),
            }
        };
        let le = mk("<=");
        let ne = mk("!=");
        let mut out = Vec::new();
        split(
            &genv,
            &LiquidEnv::new(),
            &RType::Data(le),
            &RType::Data(ne),
            &Origin::Flow("t"),
            &mut out,
        )
        .unwrap();
        // Find the entry implication.
        let found = out.iter().any(|c| {
            let l = c.lhs.to_string();
            let r = c.rhs.to_string();
            l.contains("<= VV") && r.contains("!= VV")
        });
        assert!(found, "constraints: {out:?}");
    }

    #[test]
    fn data_subtype_covers_targs_and_kvars() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let env = LiquidEnv::new();
        let lhs = template::fresh(&genv, &mut kenv, &env, &MlType::list(MlType::Int));
        let rhs = template::fresh(&genv, &mut kenv, &env, &MlType::list(MlType::Int));
        let mut out = Vec::new();
        split(&genv, &env, &lhs, &rhs, &Origin::Flow("t"), &mut out).unwrap();
        // Every constraint's rhs is a kvar template.
        assert!(!out.is_empty());
        for c in &out {
            assert!(c
                .rhs
                .atoms
                .iter()
                .all(|(_, a)| matches!(a, RefAtom::KVar(_))));
        }
    }

    #[test]
    fn map_values_compared_under_key_binding() {
        let genv = genv();
        let key = template::map_key_binder();
        let mk = |p: &str| {
            RType::Data(DataRType {
                name: Symbol::new("map"),
                targs: vec![
                    RType::int(),
                    RType::Base(
                        BaseTy::Int,
                        Refinement::pred(parse_pred(p).unwrap()),
                    ),
                ],
                rho: Rho::top(),
                inner: BTreeMap::new(),
                refinement: Refinement::top(),
            })
        };
        let m1 = mk(&format!("{key} < VV"));
        let m2 = mk(&format!("{key} <= VV"));
        let mut out = Vec::new();
        split(&genv, &LiquidEnv::new(), &m1, &m2, &Origin::Flow("t"), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        // The canonical key binder was renamed to a fresh shared key.
        assert!(!out[0].lhs.to_string().contains("map#key"));
        assert!(out[0].lhs.to_string().contains("< VV"));
        assert!(out[0].rhs.to_string().contains("<= VV"));
    }

    #[test]
    fn tuple_dependencies_rebound() {
        let genv = genv();
        let a1 = Symbol::new("a1");
        let t1 = RType::Tuple(vec![
            (a1, int_p("0 < VV")),
            (Symbol::new("b1"), int_p("a1 < VV")),
        ]);
        let a2 = Symbol::new("a2");
        let t2 = RType::Tuple(vec![
            (a2, RType::int()),
            (Symbol::new("b2"), int_p("a2 <= VV")),
        ]);
        let mut out = Vec::new();
        split(&genv, &LiquidEnv::new(), &t1, &t2, &Origin::Flow("t"), &mut out).unwrap();
        // Second field: both sides reference the SAME fresh binder.
        let last = out.last().unwrap();
        let l = last.lhs.to_string();
        let r = last.rhs.to_string();
        let zl = l.split(' ').next().unwrap().trim_start_matches('(');
        assert!(r.contains(zl), "lhs={l} rhs={r}");
    }
}
