//! The end-to-end verification pipeline.
//!
//! Couples the front end (parse → resolve → infer) with constraint
//! generation, the fixpoint solver, and specification checking. This is
//! the library-level equivalent of running DSOLVE on a `.ml` module with
//! its `.mlq` and `.quals` files.

use crate::builtins::builtin_schemes;
use crate::constraint::{LiquidError, Origin};
use crate::env::{GlobalEnv, LiquidEnv};
use crate::gen::Gen;
use crate::measure::MeasureEnv;
use crate::rtype::{RScheme, RType};
use crate::solve::{solve, SolveConfig, SolveStats, Solution};
use crate::subtype::split;
use dsolve_logic::{Outcome, Qualifier, Symbol};
use dsolve_nanoml::{
    infer_program, parse_program, resolve_program, DataEnv, Scheme, TProgram,
};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A named specification: the inferred type of a top-level binding must
/// be a subtype of the given scheme.
#[derive(Clone, Debug)]
pub struct Spec {
    /// The top-level name being specified.
    pub name: Symbol,
    /// The required refined scheme.
    pub scheme: RScheme,
}

/// The result of a verification run.
pub struct VerifyResult {
    /// Three-valued verdict: `Safe`, `Unsafe`, or `Unknown` with the
    /// budget exhaustion that prevented a definite answer.
    pub outcome: Outcome,
    /// Verification errors (obligations that failed or, under an
    /// exhausted budget, could not be decided).
    pub errors: Vec<LiquidError>,
    /// The solved refinement schemes of the top-level bindings.
    pub inferred: HashMap<Symbol, RScheme>,
    /// Solver statistics (including fixpoint/obligation wall-clock time).
    pub stats: SolveStats,
    /// Number of generated subtyping constraints.
    pub num_constraints: usize,
    /// Wall-clock time spent in constraint generation and spec splitting.
    pub gen_time: Duration,
}

impl VerifyResult {
    /// Whether every obligation was proven within budget.
    pub fn is_safe(&self) -> bool {
        self.outcome.is_safe()
    }
}

/// The verifier: global context plus configuration.
pub struct Verifier {
    genv: GlobalEnv,
    quals: Vec<Qualifier>,
    specs: Vec<Spec>,
    config: SolveConfig,
}

impl Verifier {
    /// Creates a verifier over the given datatypes and measures.
    pub fn new(data: DataEnv, measures: MeasureEnv) -> Verifier {
        Verifier {
            genv: GlobalEnv::new(data, measures),
            quals: Vec::new(),
            specs: Vec::new(),
            config: SolveConfig::default(),
        }
    }

    /// Adds logical qualifiers (the `.quals` file).
    pub fn with_qualifiers(mut self, quals: Vec<Qualifier>) -> Verifier {
        self.quals.extend(quals);
        self
    }

    /// Adds specifications to check (the `val` entries of a `.mlq` file).
    pub fn with_specs(mut self, specs: Vec<Spec>) -> Verifier {
        self.specs.extend(specs);
        self
    }

    /// Overrides the solver configuration.
    pub fn with_config(mut self, config: SolveConfig) -> Verifier {
        self.config = config;
        self
    }

    /// The global environment (for spec parsing etc.).
    pub fn genv(&self) -> &GlobalEnv {
        &self.genv
    }

    /// Verifies a typed program.
    pub fn verify(&self, prog: &TProgram) -> VerifyResult {
        let (_, builtin_rts) = builtin_schemes();
        let mut env = LiquidEnv::new();
        for (name, scheme) in builtin_rts {
            env = env.bind_scheme(name, scheme);
        }
        let gen_start = Instant::now();
        let gen_span = self
            .config
            .obs
            .phase_span(dsolve_obs::ObsPhase::ConstraintGen);
        let mut gen = Gen::new(&self.genv);
        let final_env = match gen.program(prog, env) {
            Ok(e) => e,
            Err(e) => {
                return VerifyResult {
                    outcome: Outcome::Unsafe,
                    errors: vec![e],
                    inferred: HashMap::new(),
                    stats: SolveStats::default(),
                    num_constraints: 0,
                    gen_time: gen_start.elapsed(),
                }
            }
        };

        // Specification obligations.
        let mut spec_errors = Vec::new();
        for spec in &self.specs {
            match final_env.lookup(spec.name) {
                None => spec_errors.push(LiquidError {
                    msg: format!("specified name `{}` is not defined", spec.name),
                    origin: Some(Origin::Spec {
                        name: spec.name.to_string(),
                    }),
                }),
                Some(got) => {
                    if let Err(e) = self.check_spec(&mut gen, &final_env, got.clone(), spec)
                    {
                        spec_errors.push(e);
                    }
                }
            }
        }

        let num_constraints = gen.subs.len();
        drop(gen_span);
        let gen_time = gen_start.elapsed();
        let mut solution: Solution =
            solve(&self.genv, &gen.kenv, &gen.subs, &self.quals, &self.config);
        solution.errors.extend(spec_errors);

        // Concretize the inferred schemes.
        let mut inferred = HashMap::new();
        for tl in &prog.lets {
            for b in &tl.binds {
                if let Some(s) = final_env.lookup(b.name) {
                    inferred.insert(b.name, concretize_scheme(s, &solution));
                }
            }
        }

        // The outcome accounts for spec errors appended after solving.
        let outcome = match solution.exhaustion.clone() {
            Some(e) => Outcome::Unknown(e),
            None if solution.errors.is_empty() => Outcome::Safe,
            None => Outcome::Unsafe,
        };
        VerifyResult {
            outcome,
            errors: solution.errors,
            inferred,
            stats: solution.stats,
            num_constraints,
            gen_time,
        }
    }

    /// Emits the subtyping obligation `inferred <: spec`.
    ///
    /// The inferred scheme may be *more general* than the specification
    /// (e.g. polymorphic where the spec fixes `int`), so the inferred
    /// scheme is instantiated at the specification's shape ([L-INST]) and
    /// the resulting type checked against the spec body.
    fn check_spec(
        &self,
        gen: &mut Gen<'_>,
        env: &LiquidEnv,
        got: RScheme,
        spec: &Spec,
    ) -> Result<(), LiquidError> {
        let spec_shape = spec.scheme.ty.shape();
        let got_ml = Scheme {
            vars: got.vars.iter().map(|v| v.var).collect(),
            ty: got.ty.shape(),
        };
        let inst = dsolve_nanoml::match_instantiation(&got_ml, &spec_shape).ok_or_else(
            || LiquidError {
                msg: format!(
                    "specification shape `{}` does not match inferred `{}`",
                    spec_shape, got_ml.ty
                ),
                origin: Some(Origin::Spec {
                    name: spec.name.to_string(),
                }),
            },
        )?;
        let got_ty = crate::template::instantiate(&self.genv, &mut gen.kenv, env, &got, &inst);
        split(
            &self.genv,
            env,
            &got_ty,
            &spec.scheme.ty,
            &Origin::Spec {
                name: spec.name.to_string(),
            },
            &mut gen.subs,
        )
    }
}

fn concretize_scheme(s: &RScheme, sol: &Solution) -> RScheme {
    RScheme {
        vars: s.vars.clone(),
        ty: concretize_rtype(&s.ty, sol),
    }
}

fn concretize_rtype(t: &RType, sol: &Solution) -> RType {
    use crate::rtype::{DataRType, RefAtom, Refinement, Rho};
    let conc_ref = |r: &Refinement| -> Refinement {
        let mut out = Refinement::top();
        for (theta, atom) in &r.atoms {
            let p = match atom {
                RefAtom::Conc(p) => theta.apply_pred(p),
                RefAtom::KVar(k) => theta.apply_pred(&sol.pred_of(*k)),
            };
            out = out.and(&Refinement::pred(p));
        }
        out
    };
    let conc_rho = |m: &Rho| -> Rho {
        let mut out = Rho::top();
        for ((c, j), r) in &m.entries {
            out.set(*c, *j, conc_ref(r));
        }
        out
    };
    match t {
        RType::Base(b, r) => RType::Base(*b, conc_ref(r)),
        RType::TyVar(v, theta, r) => RType::TyVar(*v, theta.clone(), conc_ref(r)),
        RType::Fun(x, a, b) => RType::Fun(
            *x,
            Box::new(concretize_rtype(a, sol)),
            Box::new(concretize_rtype(b, sol)),
        ),
        RType::Tuple(fs) => RType::Tuple(
            fs.iter()
                .map(|(x, t)| (*x, concretize_rtype(t, sol)))
                .collect(),
        ),
        RType::Data(d) => RType::Data(DataRType {
            name: d.name,
            targs: d.targs.iter().map(|t| concretize_rtype(t, sol)).collect(),
            rho: conc_rho(&d.rho),
            inner: d.inner.iter().map(|(k, m)| (*k, conc_rho(m))).collect(),
            refinement: conc_ref(&d.refinement),
        }),
    }
}

/// Convenience: parse, resolve, type, and verify a source module with the
/// given measures, qualifiers, and specs.
///
/// # Errors
///
/// Front-end failures (parse/resolve/type errors) are reported as a
/// single-element error list.
pub fn verify_source(
    src: &str,
    measures: MeasureEnv,
    quals: Vec<Qualifier>,
    specs: Vec<Spec>,
) -> Result<VerifyResult, String> {
    let prog = parse_program(src).map_err(|e| e.to_string())?;
    let mut data = DataEnv::with_builtins();
    data.add_program(&prog.datatypes).map_err(|e| e.to_string())?;
    let prog = resolve_program(&prog, &data).map_err(|e| e.to_string())?;
    let (ml_builtins, _) = builtin_schemes();
    let typed = infer_program(&prog, &data, &ml_builtins).map_err(|e| e.to_string())?;
    let verifier = Verifier::new(data, measures)
        .with_qualifiers(quals)
        .with_specs(specs);
    Ok(verifier.verify(&typed))
}
