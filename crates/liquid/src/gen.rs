//! Constraint generation: the liquid typing rules over typed NanoML.
//!
//! Walks [`TExpr`] trees synthesizing refinement types and emitting
//! simple subtyping constraints ([L-APP], [L-IF], [L-LET], [L-FIX] with
//! Mycroft instantiation, [L-SUM-M]/[L-FOLD-M] at constructions,
//! [L-UNFOLD-M]/[L-MATCH-M] at matches, and the `assert`/division
//! obligations).
//!
//! Synthesis is in A-normal-form style: operand expressions that are not
//! variables or literals are bound to fresh names, and the (extended)
//! environment is threaded to the continuation so result refinements stay
//! well-scoped. Binding forms (`let`, `if`, `match`) confine those
//! temporaries by re-typing their result at a fresh template well-formed
//! in the outer environment ([L-LET]'s well-formedness side condition).

use crate::constraint::{LiquidError, Origin, SubC};
use crate::env::{GlobalEnv, KEnv, LiquidEnv};
use crate::rtype::{BaseTy, RScheme, RType, RVarDecl, Refinement};
use crate::subtype::split;
use crate::template::{fresh, fresh_named, instantiate, unfold_ctor};
use dsolve_logic::{Expr, Pred, Rel, Symbol};
use dsolve_nanoml::{
    match_instantiation, MlType, PrimOp, Scheme, TBind, TExpr, TExprKind, TProgram,
};

/// The constraint generator.
pub struct Gen<'g> {
    genv: &'g GlobalEnv,
    /// Liquid-variable scope registry (shared with the solver).
    pub kenv: KEnv,
    /// Generated subtyping constraints.
    pub subs: Vec<SubC>,
}

impl<'g> Gen<'g> {
    /// Creates a generator.
    pub fn new(genv: &'g GlobalEnv) -> Gen<'g> {
        Gen {
            genv,
            kenv: KEnv::new(),
            subs: Vec::new(),
        }
    }

    /// Generates constraints for a whole program, returning the final
    /// environment (with every top-level name bound to its inferred
    /// template scheme).
    pub fn program(
        &mut self,
        prog: &TProgram,
        mut env: LiquidEnv,
    ) -> Result<LiquidEnv, LiquidError> {
        for tl in &prog.lets {
            env = self.bind_group(&env, tl.recursive, &tl.binds)?;
        }
        Ok(env)
    }

    /// Processes one binding group ([L-LET] / [L-FIX]).
    pub fn bind_group(
        &mut self,
        env: &LiquidEnv,
        recursive: bool,
        binds: &[TBind],
    ) -> Result<LiquidEnv, LiquidError> {
        if recursive {
            // Mycroft's rule: bind every name to a fresh template scheme
            // (well-formed in the *outer* env) before checking bodies, so
            // recursive occurrences instantiate polymorphically.
            let mut env2 = env.clone();
            let mut templates = Vec::new();
            for b in binds {
                let t = fresh_named(
                    self.genv,
                    &mut self.kenv,
                    env,
                    &b.scheme.ty,
                    &lam_params(&b.rhs),
                );
                env2 = env2.bind_scheme(b.name, rscheme_of(&b.scheme, t.clone()));
                templates.push(t);
            }
            for (b, t) in binds.iter().zip(&templates) {
                let (env_rhs, got) = self.synth(&env2, &b.rhs)?;
                split(
                    self.genv,
                    &env_rhs,
                    &got,
                    t,
                    &Origin::Flow("recursive binding"),
                    &mut self.subs,
                )?;
            }
            Ok(env2)
        } else {
            let mut env2 = env.clone();
            for b in binds {
                let (_, got) = self.synth(env, &b.rhs)?;
                env2 = env2.bind_scheme(b.name, rscheme_of(&b.scheme, got));
            }
            Ok(env2)
        }
    }

    /// Synthesizes a refinement type, returning the (possibly extended)
    /// environment to use for the continuation.
    pub fn synth(
        &mut self,
        env: &LiquidEnv,
        e: &TExpr,
    ) -> Result<(LiquidEnv, RType), LiquidError> {
        match &e.kind {
            TExprKind::Var(x, inst) => {
                let scheme = env
                    .lookup(*x)
                    .ok_or_else(|| {
                        LiquidError::internal(format!("unbound variable `{x}` in liquid env"))
                    })?
                    .clone();
                let t = if scheme.vars.is_empty() {
                    scheme.ty.clone()
                } else {
                    // [L-INST]: reconstruct the ML instantiation when the
                    // HM pass recorded none (monomorphic recursive
                    // occurrences — Mycroft's rule).
                    let ml_inst = if inst.len() == scheme.vars.len() {
                        inst.clone()
                    } else {
                        let shape = Scheme {
                            vars: scheme.vars.iter().map(|v| v.var).collect(),
                            ty: scheme.ty.shape(),
                        };
                        match_instantiation(&shape, &e.ty).ok_or_else(|| {
                            LiquidError::internal(format!(
                                "cannot instantiate `{x}` : {} at {}",
                                shape.ty, e.ty
                            ))
                        })?
                    };
                    instantiate(self.genv, &mut self.kenv, env, &scheme, &ml_inst)
                };
                Ok((env.clone(), t.selfify(Expr::Var(*x))))
            }
            TExprKind::Int(v) => Ok((
                env.clone(),
                RType::Base(BaseTy::Int, Refinement::exactly(Expr::int(*v))),
            )),
            TExprKind::Bool(b) => Ok((
                env.clone(),
                RType::Base(
                    BaseTy::Bool,
                    Refinement::pred(if *b {
                        Pred::Term(Expr::nu())
                    } else {
                        Pred::not(Pred::Term(Expr::nu()))
                    }),
                ),
            )),
            TExprKind::Unit => Ok((env.clone(), RType::unit())),
            TExprKind::Prim(op, a, b) => self.synth_prim(env, e, *op, a, b),
            TExprKind::Neg(a) => {
                let (env2, ea) = self.name(env, a)?;
                Ok((
                    env2,
                    RType::Base(BaseTy::Int, Refinement::exactly(Expr::int(0).sub(ea))),
                ))
            }
            TExprKind::Not(a) => {
                let (env2, ea) = self.name(env, a)?;
                Ok((
                    env2,
                    RType::Base(
                        BaseTy::Bool,
                        Refinement::pred(Pred::iff(
                            Pred::Term(Expr::nu()),
                            Pred::not(Pred::Term(ea)),
                        )),
                    ),
                ))
            }
            TExprKind::Lam(x, body) => {
                // Name the whole λ-chain after the source parameters so
                // qualifiers and specs can refer to them.
                let tmpl =
                    fresh_named(self.genv, &mut self.kenv, env, &e.ty, &lam_params(e));
                let RType::Fun(x0, dom, ran) = tmpl else {
                    return Err(LiquidError::internal("lambda with non-arrow template"));
                };
                let ran = ran.subst1(x0, &Expr::Var(*x));
                let env2 = env.bind(*x, (*dom).clone());
                let (env_body, got) = self.synth(&env2, body)?;
                split(
                    self.genv,
                    &env_body,
                    &got,
                    &ran,
                    &Origin::Flow("function body"),
                    &mut self.subs,
                )?;
                Ok((env.clone(), RType::Fun(*x, dom, Box::new(ran))))
            }
            TExprKind::App(f, a) => {
                let (env1, tf) = self.synth(env, f)?;
                let RType::Fun(x, dom, ran) = tf else {
                    return Err(LiquidError::internal(format!(
                        "application of non-function type `{tf}`"
                    )));
                };
                let (env2, ta) = self.synth(&env1, a)?;
                let (env3, ea) = self.name_with(&env2, a, ta.clone())?;
                split(
                    self.genv,
                    &env3,
                    &ta.selfify(ea.clone()),
                    &dom,
                    &Origin::App {
                        callee: describe(f),
                    },
                    &mut self.subs,
                )?;
                Ok((env3, ran.subst1(x, &ea)))
            }
            TExprKind::Let(x, scheme, rhs, body) => {
                let (env_rhs, trhs) = self.synth(env, rhs)?;
                let env2 = env_rhs.bind_scheme(*x, rscheme_of(scheme, trhs));
                let (env_body, tbody) = self.synth(&env2, body)?;
                let t = self.join(env, &env_body, tbody, &e.ty, "let body")?;
                Ok((env.clone(), t))
            }
            TExprKind::LetRec(binds, body) => {
                let env2 = self.bind_group(env, true, binds)?;
                let (env_body, tbody) = self.synth(&env2, body)?;
                let t = self.join(env, &env_body, tbody, &e.ty, "letrec body")?;
                Ok((env.clone(), t))
            }
            TExprKind::LetTuple(names, rhs, body) => {
                let (env_rhs, trhs) = self.synth(env, rhs)?;
                let RType::Tuple(fields) = trhs else {
                    return Err(LiquidError::internal("tuple binding of non-tuple type"));
                };
                let mut env2 = env_rhs;
                let mut fields = fields;
                for (i, name) in names.iter().enumerate() {
                    let (binder, t) = fields[i].clone();
                    env2 = env2.bind(*name, t.selfify(Expr::Var(*name)));
                    for (_, later) in fields.iter_mut().skip(i + 1) {
                        *later = later.subst1(binder, &Expr::Var(*name));
                    }
                }
                let (env_body, tbody) = self.synth(&env2, body)?;
                let t = self.join(env, &env_body, tbody, &e.ty, "let-tuple body")?;
                Ok((env.clone(), t))
            }
            TExprKind::If(c, t, f) => {
                let (envc0, tc) = self.synth(env, c)?;
                let (envc, ec) = self.name_with(&envc0, c, tc)?;
                let join = fresh(self.genv, &mut self.kenv, env, &e.ty);
                let then_env = envc.guard(Pred::Term(ec.clone()));
                let (then_env2, tt) = self.synth(&then_env, t)?;
                split(
                    self.genv,
                    &then_env2,
                    &tt,
                    &join,
                    &Origin::Flow("then branch"),
                    &mut self.subs,
                )?;
                let else_env = envc.guard(Pred::not(Pred::Term(ec)));
                let (else_env2, tf) = self.synth(&else_env, f)?;
                split(
                    self.genv,
                    &else_env2,
                    &tf,
                    &join,
                    &Origin::Flow("else branch"),
                    &mut self.subs,
                )?;
                Ok((env.clone(), join))
            }
            TExprKind::Tuple(es) => {
                let mut env2 = env.clone();
                let mut fields = Vec::new();
                for sub in es {
                    let (env3, t) = self.synth(&env2, sub)?;
                    let (env4, ex) = self.name_with(&env3, sub, t.clone())?;
                    env2 = env4;
                    fields.push((Symbol::fresh("fld"), t.selfify(ex)));
                }
                Ok((env2, RType::Tuple(fields)))
            }
            TExprKind::Ctor(cname, targs, args) => {
                self.synth_ctor(env, e, *cname, targs, args)
            }
            TExprKind::Match(scrut, arms) => {
                let (env_s, tscrut) = self.synth(env, scrut)?;
                let (env0, es) = self.name_with(&env_s, scrut, tscrut.clone())?;
                let RType::Data(d) = &tscrut else {
                    return Err(LiquidError::internal("match on non-datatype type"));
                };
                let decl = self
                    .genv
                    .data
                    .decl(d.name)
                    .ok_or_else(|| LiquidError::internal("unknown datatype in match"))?
                    .clone();
                let join = fresh(self.genv, &mut self.kenv, env, &e.ty);
                for arm in arms {
                    let cix = decl
                        .ctor_names
                        .iter()
                        .position(|c| *c == arm.ctor)
                        .ok_or_else(|| LiquidError::internal("unknown ctor in match"))?;
                    let field_tys = unfold_ctor(self.genv, d, cix, &arm.binders);
                    let mut env_arm = env0.clone();
                    for (b, t) in arm.binders.iter().zip(&field_tys) {
                        env_arm = env_arm.bind(*b, t.selfify(Expr::Var(*b)));
                    }
                    // [L-MATCH-M] measure guards.
                    let guard = self.genv.measures.match_guard(
                        d.name,
                        arm.ctor,
                        es.clone(),
                        &arm.binders,
                    );
                    env_arm = env_arm.guard(guard);
                    let (env_b, tb) = self.synth(&env_arm, &arm.body)?;
                    split(
                        self.genv,
                        &env_b,
                        &tb,
                        &join,
                        &Origin::Flow("match arm"),
                        &mut self.subs,
                    )?;
                }
                Ok((env.clone(), join))
            }
            TExprKind::Assert(a, line) => {
                let (env1, ta) = self.synth(env, a)?;
                let (env2, ea) = self.name_with(&env1, a, ta.clone())?;
                split(
                    self.genv,
                    &env2,
                    &ta.selfify(ea),
                    &RType::Base(BaseTy::Bool, Refinement::pred(Pred::Term(Expr::nu()))),
                    &Origin::Assert { line: *line },
                    &mut self.subs,
                )?;
                Ok((env2, RType::unit()))
            }
        }
    }

    fn synth_prim(
        &mut self,
        env: &LiquidEnv,
        e: &TExpr,
        op: PrimOp,
        a: &TExpr,
        b: &TExpr,
    ) -> Result<(LiquidEnv, RType), LiquidError> {
        let (env1, ea) = self.name(env, a)?;
        let (env2, eb) = self.name(&env1, b)?;
        let int_like = |t: &MlType| matches!(t, MlType::Int | MlType::Var(_));
        let t = match op {
            PrimOp::Add => RType::Base(BaseTy::Int, Refinement::exactly(ea.add(eb))),
            PrimOp::Sub => RType::Base(BaseTy::Int, Refinement::exactly(ea.sub(eb))),
            PrimOp::Mul => RType::Base(BaseTy::Int, Refinement::exactly(ea.mul(eb))),
            PrimOp::Div | PrimOp::Mod => {
                // The paper's division safety: (/) : int → {ν≠0} → int.
                let (env3, tb) = self.synth(&env2, b)?;
                split(
                    self.genv,
                    &env3,
                    &tb.selfify(eb.clone()),
                    &RType::int_pred(Pred::ne(Expr::nu(), Expr::int(0))),
                    &Origin::Div {
                        context: describe(e),
                    },
                    &mut self.subs,
                )?;
                let expr = match op {
                    PrimOp::Div => {
                        Expr::Binop(dsolve_logic::Binop::Div, Box::new(ea), Box::new(eb))
                    }
                    _ => Expr::Binop(dsolve_logic::Binop::Mod, Box::new(ea), Box::new(eb)),
                };
                return Ok((env3, RType::Base(BaseTy::Int, Refinement::exactly(expr))));
            }
            PrimOp::Eq | PrimOp::Ne | PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => {
                let rel = match op {
                    PrimOp::Eq => Rel::Eq,
                    PrimOp::Ne => Rel::Ne,
                    PrimOp::Lt => Rel::Lt,
                    PrimOp::Le => Rel::Le,
                    PrimOp::Gt => Rel::Gt,
                    PrimOp::Ge => Rel::Ge,
                    _ => unreachable!(),
                };
                // Exact boolean semantics when the operands embed into
                // the logic (ints, type variables via the total-order
                // embedding; equality also covers first-order data).
                let exact = match (&rel, &a.ty) {
                    (Rel::Eq | Rel::Ne, t) => !matches!(t, MlType::Arrow(..)),
                    (_, t) => int_like(t),
                };
                if exact {
                    RType::Base(
                        BaseTy::Bool,
                        Refinement::pred(Pred::iff(
                            Pred::Term(Expr::nu()),
                            Pred::Atom(rel, ea, eb),
                        )),
                    )
                } else {
                    RType::bool()
                }
            }
            PrimOp::And => RType::Base(
                BaseTy::Bool,
                Refinement::pred(Pred::iff(
                    Pred::Term(Expr::nu()),
                    Pred::and(vec![Pred::Term(ea), Pred::Term(eb)]),
                )),
            ),
            PrimOp::Or => RType::Base(
                BaseTy::Bool,
                Refinement::pred(Pred::iff(
                    Pred::Term(Expr::nu()),
                    Pred::or(vec![Pred::Term(ea), Pred::Term(eb)]),
                )),
            ),
        };
        Ok((env2, t))
    }

    /// [L-SUM-M] + [L-FOLD-M]: constructions check their arguments
    /// against a fresh folded template and carry exact measure facts.
    fn synth_ctor(
        &mut self,
        env: &LiquidEnv,
        e: &TExpr,
        cname: Symbol,
        _targs: &[MlType],
        args: &[TExpr],
    ) -> Result<(LiquidEnv, RType), LiquidError> {
        let tmpl = fresh(self.genv, &mut self.kenv, env, &e.ty);
        let RType::Data(d) = &tmpl else {
            return Err(LiquidError::internal("constructor with non-data template"));
        };
        let sig = self
            .genv
            .data
            .ctor(cname)
            .ok_or_else(|| LiquidError::internal(format!("unknown constructor `{cname}`")))?
            .clone();

        // Name the arguments (binding non-variables).
        let mut env2 = env.clone();
        let mut argsyms = Vec::new();
        let mut argexprs = Vec::new();
        let mut argtys = Vec::new();
        for a in args {
            let (env3, t) = self.synth(&env2, a)?;
            let (env4, ex) = self.name_with(&env3, a, t.clone())?;
            env2 = env4;
            let sym = match &ex {
                Expr::Var(s) => *s,
                _ => {
                    let s = Symbol::fresh("carg");
                    env2 = env2.bind(s, t.selfify(ex.clone()));
                    s
                }
            };
            argsyms.push(sym);
            argexprs.push(Expr::Var(sym));
            argtys.push(t);
        }

        let field_tys = unfold_ctor(self.genv, d, sig.index, &argsyms);
        for ((t, sym), ft) in argtys.iter().zip(&argsyms).zip(&field_tys) {
            split(
                self.genv,
                &env2,
                &t.selfify(Expr::Var(*sym)),
                ft,
                &Origin::Flow("constructor argument"),
                &mut self.subs,
            )?;
        }
        let measure_facts = self
            .genv
            .measures
            .ctor_refinement(d.name, cname, &argexprs);
        // [L-SUM-M]: the refinement of every *other* constructor is ⊥ —
        // `cname` is the only inhabited summand, so entries for the
        // other products hold vacuously (e.g. `[]` satisfies any element
        // invariant).
        let mut dead = crate::rtype::Rho::top();
        let decl = self
            .genv
            .data
            .decl(d.name)
            .ok_or_else(|| LiquidError::internal("unknown datatype at ctor"))?;
        for (c2, fields) in decl.ctor_fields.iter().enumerate() {
            if c2 == sig.index {
                continue;
            }
            for j in 0..fields.len() {
                dead.set(c2, j, Refinement::pred(Pred::False));
            }
        }
        // The outer refinement is exactly the measure facts: the
        // template's fresh κ would otherwise assert the full qualifier
        // set with no constraint grounding it from below (constructions
        // only ever appear on the *left* of subtyping), which is unsound
        // — any ungrounded instance, e.g. `llen(ν) = llen(zs)` for some
        // in-scope `zs`, would flow downstream as an assumed fact.
        let result = match tmpl {
            RType::Data(dd) => RType::Data(crate::rtype::DataRType {
                rho: dd.rho.compose(&dead),
                refinement: Refinement::top(),
                ..dd
            }),
            other => other,
        };
        Ok((env2, result.strengthen(&Refinement::pred(measure_facts))))
    }

    /// [L-LET] well-formedness at joins: when the body type may mention
    /// locally bound names, re-type it at a fresh template well-formed in
    /// the outer environment.
    fn join(
        &mut self,
        outer: &LiquidEnv,
        inner: &LiquidEnv,
        t: RType,
        shape: &MlType,
        what: &'static str,
    ) -> Result<RType, LiquidError> {
        let join = fresh(self.genv, &mut self.kenv, outer, shape);
        split(self.genv, inner, &t, &join, &Origin::Flow(what), &mut self.subs)?;
        Ok(join)
    }

    /// Names an expression in the logic: variables and literals are used
    /// directly, anything else is let-bound to a fresh symbol.
    fn name(
        &mut self,
        env: &LiquidEnv,
        e: &TExpr,
    ) -> Result<(LiquidEnv, Expr), LiquidError> {
        match &e.kind {
            TExprKind::Var(x, _) => Ok((env.clone(), Expr::Var(*x))),
            TExprKind::Int(v) => Ok((env.clone(), Expr::int(*v))),
            TExprKind::Bool(b) => Ok((env.clone(), Expr::Bool(*b))),
            _ => {
                let (env2, t) = self.synth(env, e)?;
                let z = Symbol::fresh("tmp");
                Ok((env2.bind(z, t), Expr::Var(z)))
            }
        }
    }

    /// Like [`Gen::name`], reusing an already synthesized type.
    fn name_with(
        &mut self,
        env: &LiquidEnv,
        e: &TExpr,
        t: RType,
    ) -> Result<(LiquidEnv, Expr), LiquidError> {
        match &e.kind {
            TExprKind::Var(x, _) => Ok((env.clone(), Expr::Var(*x))),
            TExprKind::Int(v) => Ok((env.clone(), Expr::int(*v))),
            TExprKind::Bool(b) => Ok((env.clone(), Expr::Bool(*b))),
            _ => {
                let z = Symbol::fresh("tmp");
                Ok((env.bind(z, t), Expr::Var(z)))
            }
        }
    }
}

/// Wraps an inferred refinement type with the ML scheme's quantifiers.
fn rscheme_of(scheme: &Scheme, ty: RType) -> RScheme {
    RScheme {
        vars: scheme
            .vars
            .iter()
            .map(|v| RVarDecl {
                var: *v,
                witness: None,
            })
            .collect(),
        ty,
    }
}

/// The λ-chain parameter names of a right-hand side.
fn lam_params(e: &TExpr) -> Vec<Symbol> {
    let mut out = Vec::new();
    let mut cur = e;
    while let TExprKind::Lam(x, body) = &cur.kind {
        out.push(*x);
        cur = body;
    }
    out
}

fn describe(e: &TExpr) -> String {
    match &e.kind {
        TExprKind::Var(x, _) => x.to_string(),
        TExprKind::App(f, _) => describe(f),
        TExprKind::Prim(op, _, _) => format!("primitive `{op}`"),
        _ => "expression".to_string(),
    }
}
