//! Template creation, scheme instantiation, and unfolding.
//!
//! *Templates* are refinement types whose every refinable position holds a
//! fresh liquid variable `κ` (registered with its scope for qualifier
//! instantiation). *Unfolding* implements the ρ-application judgment
//! `(ρ) T ▷ T'` of Fig. 8 together with the `t ↦ (ρ)μt.T` substitution
//! and normalization: constructor field types are produced with the
//! matrix entries conjoined and, at recursive positions, the inner matrix
//! promoted onto the top matrix.

use crate::env::{fresh_refinement, GlobalEnv, KEnv, LiquidEnv};
use crate::measure::sort_of_mltype;
use crate::rtype::{field_name, BaseTy, DataRType, RScheme, RType, Refinement, Rho};
use dsolve_logic::{Expr, SortEnv, Subst, Symbol};
use dsolve_nanoml::MlType;
use std::collections::{BTreeMap, HashMap};

/// Canonical name for a reference from an *inner* matrix entry to a field
/// of the enclosing constructor (substituted at the unfold that promotes
/// the matrix).
pub fn up_field_name(decl: Symbol, ctor: Symbol, field: usize) -> Symbol {
    Symbol::new(&format!("{decl}#{ctor}#{field}#up"))
}

/// The canonical key binder of the built-in finite map type: the `i` of
/// `(i:α, β[i/x]) Map.t` (§5.1).
pub fn map_key_binder() -> Symbol {
    Symbol::new("map#key")
}

/// Builds a plain (all-`⊤`) refinement type from an ML shape, wiring the
/// given refined types in for datatype/tyvar parameter positions.
pub fn rtype_of_shape(shape: &MlType, params: &HashMap<u32, RType>) -> RType {
    match shape {
        MlType::Int => RType::int(),
        MlType::Bool => RType::bool(),
        MlType::Unit => RType::unit(),
        MlType::Var(v) => params
            .get(v)
            .cloned()
            .unwrap_or_else(|| RType::TyVar(*v, Subst::new(), Refinement::top())),
        MlType::Arrow(a, b) => RType::Fun(
            Symbol::fresh("arg"),
            Box::new(rtype_of_shape(a, params)),
            Box::new(rtype_of_shape(b, params)),
        ),
        MlType::Tuple(ts) => RType::Tuple(
            ts.iter()
                .map(|t| (Symbol::fresh("fld"), rtype_of_shape(t, params)))
                .collect(),
        ),
        MlType::Data(n, ts) => RType::Data(DataRType {
            name: *n,
            targs: ts.iter().map(|t| rtype_of_shape(t, params)).collect(),
            rho: Rho::top(),
            inner: BTreeMap::new(),
            refinement: Refinement::top(),
        }),
    }
}

/// The ML shape of a constructor field with the datatype's parameters
/// instantiated at the given argument shapes.
fn field_shape(field: &MlType, targ_shapes: &[MlType]) -> MlType {
    let map: HashMap<u32, MlType> = targ_shapes
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();
    field.apply(&map)
}

/// Whether a declaration field is the regular recursive occurrence of its
/// own datatype.
fn is_recursive_field(decl_name: Symbol, nparams: usize, field: &MlType) -> bool {
    match field {
        MlType::Data(n, args) if *n == decl_name && args.len() == nparams => args
            .iter()
            .enumerate()
            .all(|(i, a)| *a == MlType::Var(i as u32)),
        _ => false,
    }
}

/// Creates a fresh template of the given shape: a `κ` at every refinable
/// position, each registered in `kenv` with its scope.
pub fn fresh(genv: &GlobalEnv, kenv: &mut KEnv, env: &LiquidEnv, shape: &MlType) -> RType {
    fresh_named(genv, kenv, env, shape, &[])
}

/// Like [`fresh`], but the outermost arrow binders take the given
/// (program) names, so qualifiers can refer to function parameters by
/// name — the paper's inferred signatures (`range :: i:int → j:int → …`)
/// name binders after the source parameters.
pub fn fresh_named(
    genv: &GlobalEnv,
    kenv: &mut KEnv,
    env: &LiquidEnv,
    shape: &MlType,
    param_names: &[Symbol],
) -> RType {
    let scope = env.sort_env(genv);
    fresh_arrows(genv, kenv, &scope, shape, param_names)
}

fn fresh_arrows(
    genv: &GlobalEnv,
    kenv: &mut KEnv,
    scope: &SortEnv,
    shape: &MlType,
    param_names: &[Symbol],
) -> RType {
    match (shape, param_names.split_first()) {
        (MlType::Arrow(a, b), Some((name, rest))) => {
            let ta = fresh_in_scope(genv, kenv, scope, a);
            let mut scope2 = scope.clone();
            scope2.bind(*name, sort_of_mltype(a));
            let tb = fresh_arrows(genv, kenv, &scope2, b, rest);
            RType::Fun(*name, Box::new(ta), Box::new(tb))
        }
        _ => fresh_in_scope(genv, kenv, scope, shape),
    }
}

fn fresh_in_scope(
    genv: &GlobalEnv,
    kenv: &mut KEnv,
    scope: &SortEnv,
    shape: &MlType,
) -> RType {
    match shape {
        MlType::Int => RType::Base(BaseTy::Int, fresh_refinement(kenv, scope.clone(), shape)),
        MlType::Bool => {
            RType::Base(BaseTy::Bool, fresh_refinement(kenv, scope.clone(), shape))
        }
        MlType::Unit => RType::unit(),
        MlType::Var(v) => RType::TyVar(
            *v,
            Subst::new(),
            fresh_refinement(kenv, scope.clone(), shape),
        ),
        MlType::Arrow(a, b) => {
            let x = Symbol::fresh("arg");
            let ta = fresh_in_scope(genv, kenv, scope, a);
            let mut scope2 = scope.clone();
            scope2.bind(x, sort_of_mltype(a));
            let tb = fresh_in_scope(genv, kenv, &scope2, b);
            RType::Fun(x, Box::new(ta), Box::new(tb))
        }
        MlType::Tuple(ts) => {
            let mut scope2 = scope.clone();
            let mut fields = Vec::new();
            for t in ts {
                let x = Symbol::fresh("fld");
                let tt = fresh_in_scope(genv, kenv, &scope2, t);
                scope2.bind(x, sort_of_mltype(t));
                fields.push((x, tt));
            }
            RType::Tuple(fields)
        }
        MlType::Data(n, ts) if *n == Symbol::new("map") => {
            // Finite maps: the value type's refinements may mention the
            // canonical key binder.
            let tkey = fresh_in_scope(genv, kenv, scope, &ts[0]);
            let mut scope2 = scope.clone();
            scope2.bind(map_key_binder(), sort_of_mltype(&ts[0]));
            let tval = fresh_in_scope(genv, kenv, &scope2, &ts[1]);
            RType::Data(DataRType {
                name: *n,
                targs: vec![tkey, tval],
                rho: Rho::top(),
                inner: BTreeMap::new(),
                refinement: fresh_refinement(kenv, scope.clone(), shape),
            })
        }
        MlType::Data(n, ts) => {
            let targs: Vec<RType> = ts
                .iter()
                .map(|t| fresh_in_scope(genv, kenv, scope, t))
                .collect();
            let targ_shapes: Vec<MlType> = ts.clone();
            let mut rho = Rho::top();
            let mut inner = BTreeMap::new();
            if let Some(decl) = genv.data.decl(*n) {
                for (c, cname) in decl.ctor_names.iter().enumerate() {
                    // Top matrix entries: scope gains earlier canonical
                    // fields.
                    let mut cscope = scope.clone();
                    for (j, fshape) in decl.ctor_fields[c].iter().enumerate() {
                        let fs = field_shape(fshape, &targ_shapes);
                        rho.set(c, j, fresh_refinement(kenv, cscope.clone(), &fs));
                        cscope.bind(field_name(*n, *cname, j), sort_of_mltype(&fs));
                    }
                    // Inner matrices at recursive positions.
                    let mut upscope = scope.clone();
                    for (j, fshape) in decl.ctor_fields[c].iter().enumerate() {
                        if is_recursive_field(*n, decl.params, fshape) {
                            let mut m = Rho::top();
                            for (c2, cname2) in decl.ctor_names.iter().enumerate() {
                                let mut escope = upscope.clone();
                                for (f2, fshape2) in
                                    decl.ctor_fields[c2].iter().enumerate()
                                {
                                    let fs2 = field_shape(fshape2, &targ_shapes);
                                    m.set(
                                        c2,
                                        f2,
                                        fresh_refinement(kenv, escope.clone(), &fs2),
                                    );
                                    escope.bind(
                                        field_name(*n, *cname2, f2),
                                        sort_of_mltype(&fs2),
                                    );
                                }
                            }
                            inner.insert((c, j), m);
                        }
                        let fs = field_shape(fshape, &targ_shapes);
                        upscope.bind(up_field_name(*n, *cname, j), sort_of_mltype(&fs));
                    }
                }
            }
            RType::Data(DataRType {
                name: *n,
                targs,
                rho,
                inner,
                refinement: fresh_refinement(kenv, scope.clone(), shape),
            })
        }
    }
}

/// Renames all function/tuple binders of a type to fresh names
/// (instantiating a stored scheme must not capture).
pub fn freshen(t: &RType) -> RType {
    match t {
        RType::Base(..) | RType::TyVar(..) => t.clone(),
        RType::Fun(x, a, b) => {
            let x2 = Symbol::fresh(x.as_str());
            let b2 = b.subst1(*x, &Expr::Var(x2));
            RType::Fun(x2, Box::new(freshen(a)), Box::new(freshen(&b2)))
        }
        RType::Tuple(fields) => {
            let mut out = Vec::new();
            let mut rest: Vec<(Symbol, RType)> = fields.clone();
            for i in 0..rest.len() {
                let (x, t) = rest[i].clone();
                let x2 = Symbol::fresh(x.as_str());
                for (_, later) in rest.iter_mut().skip(i + 1) {
                    *later = later.subst1(x, &Expr::Var(x2));
                }
                out.push((x2, freshen(&t)));
            }
            RType::Tuple(out)
        }
        RType::Data(d) => RType::Data(DataRType {
            name: d.name,
            targs: d.targs.iter().map(freshen).collect(),
            rho: d.rho.clone(),
            inner: d.inner.clone(),
            refinement: d.refinement.clone(),
        }),
    }
}

/// Instantiates a refinement scheme at the given ML types ([L-INST] /
/// [L-REFINST]): each quantified `α` is replaced by a fresh template of
/// the instantiation shape (scoped with the witness binder for
/// `α⟨x:τ⟩`), with pending substitutions applied and instance
/// refinements conjoined.
pub fn instantiate(
    genv: &GlobalEnv,
    kenv: &mut KEnv,
    env: &LiquidEnv,
    scheme: &RScheme,
    ml_inst: &[MlType],
) -> RType {
    // Witness types are stated over the scheme's own variables (e.g. the
    // map value's witness has the *key* type α); resolve them at this
    // instantiation so the witness gets the right sort.
    let ml_map: HashMap<u32, MlType> = scheme
        .vars
        .iter()
        .map(|d| d.var)
        .zip(ml_inst.iter().cloned())
        .collect();
    let mut map: HashMap<u32, RType> = HashMap::new();
    for (decl, ml) in scheme.vars.iter().zip(ml_inst) {
        let mut scope = env.sort_env(genv);
        if let Some((wit, wty)) = &decl.witness {
            scope.bind(*wit, sort_of_mltype(&wty.apply(&ml_map)));
        }
        let t = fresh_in_scope(genv, kenv, &scope, ml);
        map.insert(decl.var, t);
    }
    let body = freshen(&scheme.ty);
    replace_tyvars(&body, &map)
}

/// Instantiates a scheme *exactly* (no fresh templates): quantified
/// variables are replaced by the given refined types. Used for built-in
/// schemes whose instantiations are fixed by the caller and in tests.
pub fn instantiate_with(scheme: &RScheme, args: &[RType]) -> RType {
    let map: HashMap<u32, RType> = scheme
        .vars
        .iter()
        .zip(args)
        .map(|(d, t)| (d.var, t.clone()))
        .collect();
    replace_tyvars(&freshen(&scheme.ty), &map)
}

fn replace_tyvars(t: &RType, map: &HashMap<u32, RType>) -> RType {
    match t {
        RType::Base(..) => t.clone(),
        RType::TyVar(v, pending, r) => match map.get(v) {
            Some(inst) => inst.subst(pending).strengthen(&r.clone()),
            None => t.clone(),
        },
        RType::Fun(x, a, b) => RType::Fun(
            *x,
            Box::new(replace_tyvars(a, map)),
            Box::new(replace_tyvars(b, map)),
        ),
        RType::Tuple(fields) => RType::Tuple(
            fields
                .iter()
                .map(|(x, t)| (*x, replace_tyvars(t, map)))
                .collect(),
        ),
        RType::Data(d) => RType::Data(DataRType {
            name: d.name,
            targs: d.targs.iter().map(|t| replace_tyvars(t, map)).collect(),
            rho: d.rho.clone(),
            inner: d.inner.clone(),
            refinement: d.refinement.clone(),
        }),
    }
}

/// Unfolds one constructor of a refined datatype ([L-UNFOLD-M]): returns
/// the refined field types with the matrix entries applied, canonical
/// field references bound to `binders`, and — at recursive positions —
/// the inner matrix promoted onto the top matrix.
pub fn unfold_ctor(
    genv: &GlobalEnv,
    d: &DataRType,
    ctor_ix: usize,
    binders: &[Symbol],
) -> Vec<RType> {
    let decl = genv.data.decl(d.name).expect("datatype is declared");
    let cname = decl.ctor_names[ctor_ix];
    let fields = &decl.ctor_fields[ctor_ix];
    assert_eq!(binders.len(), fields.len(), "binder arity");

    // Substitutions for this unfold level.
    let mut subst_top = Subst::new();
    let mut subst_up = Subst::new();
    for (k, b) in binders.iter().enumerate() {
        subst_top = subst_top.then(field_name(d.name, cname, k), Expr::Var(*b));
        subst_up = subst_up.then(up_field_name(d.name, cname, k), Expr::Var(*b));
    }

    let params: HashMap<u32, RType> = d
        .targs
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();

    fields
        .iter()
        .enumerate()
        .map(|(j, fshape)| {
            let entry = d.rho.entry(ctor_ix, j).subst(&subst_top);
            if is_recursive_field(d.name, decl.params, fshape) {
                let promoted = d
                    .inner
                    .get(&(ctor_ix, j))
                    .cloned()
                    .unwrap_or_default()
                    .subst(&subst_up);
                RType::Data(DataRType {
                    name: d.name,
                    targs: d.targs.clone(),
                    rho: promoted.compose(&d.rho),
                    inner: d.inner.clone(),
                    refinement: entry,
                })
            } else {
                match fshape {
                    MlType::Var(i) => params
                        .get(i)
                        .cloned()
                        .unwrap_or_else(|| {
                            RType::TyVar(*i, Subst::new(), Refinement::top())
                        })
                        .strengthen(&entry),
                    other => rtype_of_shape(other, &params).strengthen(&entry),
                }
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureEnv;
    use dsolve_logic::parse_pred;
    use dsolve_nanoml::DataEnv;

    fn genv() -> GlobalEnv {
        GlobalEnv::new(DataEnv::with_builtins(), MeasureEnv::new())
    }

    /// Builds `int list≤`: the sorted-list type of §4 — trivial top
    /// matrix, inner matrix at the tail saying every element of the tail
    /// is at least the enclosing head.
    fn sorted_int_list() -> DataRType {
        let list = Symbol::new("list");
        let cons = Symbol::new("Cons");
        let mut inner_m = Rho::top();
        // Entry (Cons, 0): head of any deeper product ≥ enclosing head.
        inner_m.set(
            1,
            0,
            Refinement::pred(
                parse_pred(&format!("{} <= VV", up_field_name(list, cons, 0))).unwrap(),
            ),
        );
        let mut inner = BTreeMap::new();
        inner.insert((1, 1), inner_m);
        DataRType {
            name: list,
            targs: vec![RType::int()],
            rho: Rho::top(),
            inner,
            refinement: Refinement::top(),
        }
    }

    #[test]
    fn fresh_template_registers_scopes() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let env = LiquidEnv::new().bind(Symbol::new("n"), RType::int());
        let t = fresh(&genv, &mut kenv, &env, &MlType::list(MlType::Int));
        // κs: 1 top + targ(1) + rho(Cons has 2 fields) + inner (1 rec pos
        // × (0 + 2) entries) = 1 + 1 + 2 + 2 = 6.
        assert_eq!(t.kvars().len(), 6);
        assert_eq!(kenv.len(), 6);
        // Every κ scope sees `n`.
        for k in t.kvars() {
            let info = kenv.info(k).unwrap();
            assert!(info.scope.sort_of_var(Symbol::new("n")).is_some());
        }
    }

    #[test]
    fn inner_matrix_scope_sees_enclosing_fields() {
        let genv = genv();
        let mut kenv = KEnv::new();
        let env = LiquidEnv::new();
        let t = fresh(&genv, &mut kenv, &env, &MlType::list(MlType::Int));
        let RType::Data(d) = &t else { panic!() };
        let m = d.inner.get(&(1, 1)).expect("tail inner matrix");
        let entry = m.entry(1, 0);
        let k = entry.kvars()[0];
        let info = kenv.info(k).unwrap();
        // The inner entry for the deeper head can mention the enclosing
        // head via its #up name.
        let up = up_field_name(Symbol::new("list"), Symbol::new("Cons"), 0);
        assert!(info.scope.sort_of_var(up).is_some());
    }

    #[test]
    fn unfold_sorted_list_threads_head_bound() {
        let genv = genv();
        let d = sorted_int_list();
        let h = Symbol::new("h");
        let t = Symbol::new("t");
        let fields = unfold_ctor(&genv, &d, 1, &[h, t]);
        assert_eq!(fields.len(), 2);
        // Head: plain int.
        assert_eq!(fields[0].to_string(), "int");
        // Tail: a list whose top matrix now bounds every head by `h`.
        let RType::Data(dt) = &fields[1] else { panic!() };
        let e = dt.rho.entry(1, 0);
        assert_eq!(e.concretize(&|_| dsolve_logic::Pred::True).to_string(), "(h <= VV)");
        // And the inner matrix persists for deeper levels.
        assert!(dt.inner.contains_key(&(1, 1)));
    }

    #[test]
    fn double_unfold_accumulates_bounds() {
        let genv = genv();
        let d = sorted_int_list();
        let (h1, t1) = (Symbol::new("h1"), Symbol::new("t1"));
        let fields = unfold_ctor(&genv, &d, 1, &[h1, t1]);
        let RType::Data(d2) = &fields[1] else { panic!() };
        let (h2, t2) = (Symbol::new("h2"), Symbol::new("t2"));
        let fields2 = unfold_ctor(&genv, d2, 1, &[h2, t2]);
        // Second head is ≥ h1.
        let head2 = &fields2[0];
        let r = head2.refinement().concretize(&|_| dsolve_logic::Pred::True);
        assert_eq!(r.to_string(), "(h1 <= VV)");
        // Third-level heads are ≥ h2 and ≥ h1.
        let RType::Data(d3) = &fields2[1] else { panic!() };
        let e = d3
            .rho
            .entry(1, 0)
            .concretize(&|_| dsolve_logic::Pred::True);
        assert_eq!(e.to_string(), "((h2 <= VV) && (h1 <= VV))");
    }

    #[test]
    fn unfold_nil_has_no_fields() {
        let genv = genv();
        let d = sorted_int_list();
        assert!(unfold_ctor(&genv, &d, 0, &[]).is_empty());
    }

    #[test]
    fn instantiate_applies_pending_substs() {
        // A scheme like `get`'s tail: ∀β⟨x:int⟩. k:int → β[k/x].
        let beta = 7u32;
        let wit = Symbol::new("xw");
        let k = Symbol::new("k");
        let scheme = RScheme {
            vars: vec![crate::rtype::RVarDecl {
                var: beta,
                witness: Some((wit, MlType::Int)),
            }],
            ty: RType::Fun(
                k,
                Box::new(RType::int()),
                Box::new(RType::TyVar(
                    beta,
                    Subst::single(wit, Expr::Var(k)),
                    Refinement::top(),
                )),
            ),
        };
        // Instantiate β with {ν:int | x!wit <= ν}.
        let inst = RType::Base(
            BaseTy::Int,
            Refinement::pred(parse_pred("xw <= VV").unwrap()),
        );
        let t = instantiate_with(&scheme, &[inst]);
        let RType::Fun(k2, _, ret) = &t else { panic!() };
        let r = ret.refinement().concretize(&|_| dsolve_logic::Pred::True);
        // Pending [k/x] applied: the result says k2 <= ν.
        assert_eq!(r.to_string(), format!("({k2} <= VV)"));
    }

    #[test]
    fn rtype_of_shape_wires_params() {
        let mut params = HashMap::new();
        params.insert(
            0u32,
            RType::int_pred(parse_pred("0 < VV").unwrap()),
        );
        let t = rtype_of_shape(&MlType::list(MlType::Var(0)), &params);
        let RType::Data(d) = &t else { panic!() };
        assert_eq!(d.targs[0].to_string(), "{VV:int | (0 < VV)}");
    }

    #[test]
    fn freshen_renames_binders_consistently() {
        let x = Symbol::new("x");
        let t = RType::Fun(
            x,
            Box::new(RType::int()),
            Box::new(RType::int_pred(parse_pred("x < VV").unwrap())),
        );
        let f = freshen(&t);
        let RType::Fun(x2, _, ret) = &f else { panic!() };
        assert_ne!(*x2, x);
        let r = ret.refinement().concretize(&|_| dsolve_logic::Pred::True);
        assert_eq!(r.to_string(), format!("({x2} < VV)"));
    }
}
