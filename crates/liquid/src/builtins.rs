//! Built-in refined schemes: the finite-map primitives of §5 with
//! polymorphic refinements *and* the McCarthy `Sel`/`Upd` strengthening
//! of §5.2, plus `diverge` and `random`.

use crate::rtype::{BaseTy, RScheme, RType, RVarDecl, Refinement};
use crate::template::map_key_binder;
use dsolve_logic::{Expr, Pred, Subst, Symbol};
use dsolve_nanoml::{MlType, Scheme, TypeEnv};
use std::collections::{BTreeMap, HashMap};

/// Fixed type-variable ids for the built-in schemes (far above anything
/// inference allocates during a normal run, purely for readability — the
/// ids are scheme-local anyway).
const ALPHA: u32 = 9_000_000;
const BETA: u32 = 9_000_001;

fn tyvar(v: u32) -> RType {
    RType::TyVar(v, Subst::new(), Refinement::top())
}

fn tyvar_sub(v: u32, theta: Subst) -> RType {
    RType::TyVar(v, theta, Refinement::top())
}

fn witness() -> Symbol {
    crate::rtype::witness_symbol("map")
}

/// The refined map type `(i:α, β[i/x]) Map.t`.
fn map_rtype(extra: Refinement) -> RType {
    RType::Data(crate::rtype::DataRType {
        name: Symbol::new("map"),
        targs: vec![
            tyvar(ALPHA),
            tyvar_sub(BETA, Subst::single(witness(), Expr::Var(map_key_binder()))),
        ],
        rho: crate::rtype::Rho::top(),
        inner: BTreeMap::new(),
        refinement: extra,
    })
}

fn fun(x: Symbol, a: RType, b: RType) -> RType {
    RType::Fun(x, Box::new(a), Box::new(b))
}

/// The ML map type `(α, β) map`.
fn map_mltype() -> MlType {
    MlType::map(MlType::Var(ALPHA), MlType::Var(BETA))
}

/// Both environments for the built-ins: ML schemes (for Hindley–Milner)
/// and refined schemes (for the liquid phase).
pub fn builtin_schemes() -> (TypeEnv, HashMap<Symbol, RScheme>) {
    let mut ml = TypeEnv::new();
    let mut rt = HashMap::new();
    let a = MlType::Var(ALPHA);
    let b = MlType::Var(BETA);
    let ab = vec![ALPHA, BETA];
    let decls = || {
        vec![
            RVarDecl {
                var: ALPHA,
                witness: None,
            },
            RVarDecl {
                var: BETA,
                witness: Some((witness(), MlType::Var(ALPHA))),
            },
        ]
    };

    // new : int → (i:α, β[i/x]) map
    ml.insert(
        Symbol::new("new"),
        Scheme {
            vars: ab.clone(),
            ty: MlType::Arrow(Box::new(MlType::Int), Box::new(map_mltype())),
        },
    );
    rt.insert(
        Symbol::new("new"),
        RScheme {
            vars: decls(),
            ty: fun(
                Symbol::new("size"),
                RType::int(),
                map_rtype(Refinement::top()),
            ),
        },
    );

    // set : m:map → k:α → d:β[k/x] → {ν:map | ν = Upd(m,k,d)}
    let (m, k, d) = (Symbol::new("m"), Symbol::new("k"), Symbol::new("d"));
    ml.insert(
        Symbol::new("set"),
        Scheme {
            vars: ab.clone(),
            ty: MlType::Arrow(
                Box::new(map_mltype()),
                Box::new(MlType::Arrow(
                    Box::new(a.clone()),
                    Box::new(MlType::Arrow(Box::new(b.clone()), Box::new(map_mltype()))),
                )),
            ),
        },
    );
    rt.insert(
        Symbol::new("set"),
        RScheme {
            vars: decls(),
            ty: fun(
                m,
                map_rtype(Refinement::top()),
                fun(
                    k,
                    tyvar(ALPHA),
                    fun(
                        d,
                        tyvar_sub(BETA, Subst::single(witness(), Expr::Var(k))),
                        map_rtype(Refinement::pred(Pred::eq(
                            Expr::nu(),
                            Expr::upd(Expr::Var(m), Expr::Var(k), Expr::Var(d)),
                        ))),
                    ),
                ),
            ),
        },
    );

    // get : m:map → k:α → {ν:β[k/x] | ν = Sel(m,k)}
    ml.insert(
        Symbol::new("get"),
        Scheme {
            vars: ab.clone(),
            ty: MlType::Arrow(
                Box::new(map_mltype()),
                Box::new(MlType::Arrow(Box::new(a.clone()), Box::new(b.clone()))),
            ),
        },
    );
    rt.insert(
        Symbol::new("get"),
        RScheme {
            vars: decls(),
            ty: fun(
                m,
                map_rtype(Refinement::top()),
                fun(
                    k,
                    tyvar(ALPHA),
                    RType::TyVar(
                        BETA,
                        Subst::single(witness(), Expr::Var(k)),
                        Refinement::pred(Pred::eq(
                            Expr::nu(),
                            Expr::sel(Expr::Var(m), Expr::Var(k)),
                        )),
                    ),
                ),
            ),
        },
    );

    // mem : m:map → k:α → bool
    ml.insert(
        Symbol::new("mem"),
        Scheme {
            vars: ab.clone(),
            ty: MlType::Arrow(
                Box::new(map_mltype()),
                Box::new(MlType::Arrow(Box::new(a.clone()), Box::new(MlType::Bool))),
            ),
        },
    );
    rt.insert(
        Symbol::new("mem"),
        RScheme {
            vars: decls(),
            ty: fun(
                m,
                map_rtype(Refinement::top()),
                fun(k, tyvar(ALPHA), RType::bool()),
            ),
        },
    );

    // diverge : α → β with an inconsistent result (never returns).
    ml.insert(
        Symbol::new("diverge"),
        Scheme {
            vars: ab.clone(),
            ty: MlType::Arrow(Box::new(a.clone()), Box::new(b.clone())),
        },
    );
    rt.insert(
        Symbol::new("diverge"),
        RScheme {
            vars: vec![
                RVarDecl {
                    var: ALPHA,
                    witness: None,
                },
                RVarDecl {
                    var: BETA,
                    witness: None,
                },
            ],
            ty: fun(
                Symbol::new("u"),
                tyvar(ALPHA),
                RType::TyVar(BETA, Subst::new(), Refinement::pred(Pred::False)),
            ),
        },
    );

    // random : α → int (unconstrained).
    ml.insert(
        Symbol::new("random"),
        Scheme {
            vars: vec![ALPHA],
            ty: MlType::Arrow(Box::new(a), Box::new(MlType::Int)),
        },
    );
    rt.insert(
        Symbol::new("random"),
        RScheme {
            vars: vec![RVarDecl {
                var: ALPHA,
                witness: None,
            }],
            ty: fun(Symbol::new("u"), tyvar(ALPHA), RType::int()),
        },
    );

    (ml, rt)
}

/// The refinement `{ν:bool | ν}` expected by `assert`.
pub fn assert_arg_type() -> RType {
    RType::Base(BaseTy::Bool, Refinement::pred(Pred::Term(Expr::nu())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ml_and_refined_schemes_align() {
        let (ml, rt) = builtin_schemes();
        for (name, scheme) in &rt {
            let m = ml.get(name).expect("ml scheme exists");
            assert_eq!(
                m.vars.len(),
                scheme.vars.len(),
                "quantifier arity of `{name}`"
            );
            assert_eq!(
                m.ty,
                scheme.ty.shape(),
                "shape of `{name}`"
            );
        }
    }

    #[test]
    fn get_result_carries_sel_fact() {
        let (_, rt) = builtin_schemes();
        let get = &rt[&Symbol::new("get")];
        let s = get.ty.to_string();
        assert!(s.contains("Sel(m, k)"), "{s}");
    }

    #[test]
    fn set_result_carries_upd_fact() {
        let (_, rt) = builtin_schemes();
        let set = &rt[&Symbol::new("set")];
        let s = set.ty.to_string();
        assert!(s.contains("Upd(m, k, d)"), "{s}");
    }

    #[test]
    fn beta_has_witness() {
        let (_, rt) = builtin_schemes();
        let get = &rt[&Symbol::new("get")];
        assert!(get.vars[1].witness.is_some());
        assert!(get.vars[0].witness.is_none());
    }

    #[test]
    fn diverge_output_is_inconsistent() {
        let (_, rt) = builtin_schemes();
        let d = &rt[&Symbol::new("diverge")];
        let RType::Fun(_, _, out) = &d.ty else { panic!() };
        assert!(out.to_string().contains("false"));
    }
}
