//! Measures: inductively defined, terminating functions usable in
//! refinements (§4.1).
//!
//! A measure maps a recursive type to a logical value, defined by one
//! case per constructor over the constructor's binders. Because measures
//! are defined by structural induction they are total, so using them in
//! refinements is sound. They are instantiated automatically:
//!
//! * at constructions ([L-SUM-M]): the built value's type is strengthened
//!   with `m(ν) = ε_C(args)`;
//! * at matches ([L-MATCH-M]): each arm's environment gains the guard
//!   `m(scrutinee) = ε_C(binders)`.

use dsolve_logic::{Expr, FuncSort, Pred, Sort, SortEnv, Subst, Symbol};
use dsolve_nanoml::{DataEnv, MlType};
use std::collections::HashMap;
use std::fmt;

/// One measure definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Measure {
    /// Measure name (becomes an uninterpreted function in the logic).
    pub name: Symbol,
    /// The datatype it is defined on.
    pub datatype: Symbol,
    /// Output sort.
    pub sort: Sort,
    /// Per-constructor cases: binders and the defining term.
    pub cases: HashMap<Symbol, MeasureCase>,
}

/// A constructor case of a measure.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasureCase {
    /// Binders for the constructor fields (all fields, in order).
    pub binders: Vec<Symbol>,
    /// The defining term over the binders (may apply measures).
    pub body: Expr,
}

/// An error in a measure definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeasureError(pub String);

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "measure error: {}", self.0)
    }
}

impl std::error::Error for MeasureError {}

/// All measures, indexed by datatype.
#[derive(Clone, Debug, Default)]
pub struct MeasureEnv {
    by_datatype: HashMap<Symbol, Vec<Measure>>,
}

impl MeasureEnv {
    /// Creates an empty environment.
    pub fn new() -> MeasureEnv {
        MeasureEnv::default()
    }

    /// Registers a measure after checking it is well-formed
    /// ([WF-M]/[WF-MS] of Fig. 8): one case per constructor, with correct
    /// binder arities and a well-sorted body.
    pub fn add(&mut self, m: Measure, data: &DataEnv, sorts: &SortEnv) -> Result<(), MeasureError> {
        let decl = data
            .decl(m.datatype)
            .ok_or_else(|| MeasureError(format!("unknown datatype `{}`", m.datatype)))?;
        // Sort env with every measure visible (measures may be mutually
        // recursive in the [WF-M] style: later measures see earlier ones
        // plus themselves).
        let mut scope = sorts.clone();
        self.declare_sorts(&mut scope);
        scope.declare_func(
            m.name,
            FuncSort::new(vec![Sort::Obj(m.datatype)], m.sort.clone()),
        );
        for (cix, cname) in decl.ctor_names.iter().enumerate() {
            let case = m.cases.get(cname).ok_or_else(|| {
                MeasureError(format!(
                    "measure `{}` is missing a case for constructor `{cname}`",
                    m.name
                ))
            })?;
            let fields = &decl.ctor_fields[cix];
            if case.binders.len() != fields.len() {
                return Err(MeasureError(format!(
                    "measure `{}` case `{cname}` binds {} variable(s), constructor has {}",
                    m.name,
                    case.binders.len(),
                    fields.len()
                )));
            }
            let mut cscope = scope.clone();
            for (b, f) in case.binders.iter().zip(fields) {
                cscope.bind(*b, sort_of_mltype(f));
            }
            let got = cscope.sort_of(&case.body).ok_or_else(|| {
                MeasureError(format!(
                    "measure `{}` case `{cname}` body `{}` is ill-sorted",
                    m.name, case.body
                ))
            })?;
            if !got.compatible(&m.sort) {
                return Err(MeasureError(format!(
                    "measure `{}` case `{cname}` has sort {got}, declared {}",
                    m.name, m.sort
                )));
            }
        }
        for other in self.of_datatype(m.datatype) {
            if other.name == m.name {
                return Err(MeasureError(format!("duplicate measure `{}`", m.name)));
            }
        }
        self.by_datatype.entry(m.datatype).or_default().push(m);
        Ok(())
    }

    /// The measures defined on a datatype.
    pub fn of_datatype(&self, datatype: Symbol) -> &[Measure] {
        self.by_datatype
            .get(&datatype)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Declares all measures as uninterpreted functions.
    pub fn declare_sorts(&self, sorts: &mut SortEnv) {
        for ms in self.by_datatype.values() {
            for m in ms {
                sorts.declare_func(
                    m.name,
                    FuncSort::new(vec![Sort::Obj(m.datatype)], m.sort.clone()),
                );
            }
        }
    }

    /// The [L-SUM-M] strengthening: `∧_m m(ν) = ε_C(args)` for a
    /// construction `C(args)` of the datatype.
    pub fn ctor_refinement(&self, datatype: Symbol, ctor: Symbol, args: &[Expr]) -> Pred {
        self.relate(datatype, ctor, Expr::nu(), args)
    }

    /// The [L-MATCH-M] guard: `∧_m m(scrut) = ε_C(binders)`.
    pub fn match_guard(
        &self,
        datatype: Symbol,
        ctor: Symbol,
        scrut: Expr,
        binders: &[Symbol],
    ) -> Pred {
        let args: Vec<Expr> = binders.iter().map(|b| Expr::Var(*b)).collect();
        self.relate(datatype, ctor, scrut, &args)
    }

    fn relate(&self, datatype: Symbol, ctor: Symbol, subject: Expr, args: &[Expr]) -> Pred {
        let mut conj = Vec::new();
        for m in self.of_datatype(datatype) {
            let Some(case) = m.cases.get(&ctor) else {
                continue;
            };
            let mut theta = Subst::new();
            for (b, a) in case.binders.iter().zip(args) {
                theta = theta.then(*b, a.clone());
            }
            let rhs = theta.apply_expr(&case.body);
            conj.push(Pred::eq(Expr::app(m.name, vec![subject.clone()]), rhs));
        }
        Pred::and(conj)
    }
}

/// Embeds an ML type into a logical sort.
///
/// Type variables embed as `int`: NanoML's only primitive operations on
/// abstract values are the polymorphic comparisons, and OCaml's
/// polymorphic compare is a total order, which the integer order models
/// soundly for the quantifier-free, arithmetic-free facts programs can
/// state about them (the same choice DSOLVE makes to verify e.g.
/// sortedness of `α list`).
pub fn sort_of_mltype(t: &MlType) -> Sort {
    match t {
        MlType::Int => Sort::Int,
        MlType::Bool => Sort::Bool,
        MlType::Unit => Sort::Obj(Symbol::new("unit")),
        MlType::Var(_) => Sort::Int,
        MlType::Arrow(..) => Sort::Obj(Symbol::new("fun")),
        MlType::Tuple(_) => Sort::Obj(Symbol::new("tuple")),
        MlType::Data(n, _) if *n == Symbol::new("map") => Sort::Map,
        MlType::Data(n, _) => Sort::Obj(*n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsolve_logic::parse_expr;

    fn len_measure() -> Measure {
        let mut cases = HashMap::new();
        cases.insert(
            Symbol::new("Nil"),
            MeasureCase {
                binders: vec![],
                body: Expr::int(0),
            },
        );
        cases.insert(
            Symbol::new("Cons"),
            MeasureCase {
                binders: vec![Symbol::new("x"), Symbol::new("xs")],
                body: parse_expr("1 + len(xs)").unwrap(),
            },
        );
        Measure {
            name: Symbol::new("len"),
            datatype: Symbol::new("list"),
            sort: Sort::Int,
            cases,
        }
    }

    fn elts_measure() -> Measure {
        let mut cases = HashMap::new();
        cases.insert(
            Symbol::new("Nil"),
            MeasureCase {
                binders: vec![],
                body: Expr::SetEmpty,
            },
        );
        cases.insert(
            Symbol::new("Cons"),
            MeasureCase {
                binders: vec![Symbol::new("x"), Symbol::new("xs")],
                body: parse_expr("union(single(x), elts(xs))").unwrap(),
            },
        );
        Measure {
            name: Symbol::new("elts"),
            datatype: Symbol::new("list"),
            sort: Sort::Set,
            cases,
        }
    }

    #[test]
    fn registers_len_and_elts() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        env.add(len_measure(), &data, &SortEnv::new()).unwrap();
        env.add(elts_measure(), &data, &SortEnv::new()).unwrap();
        assert_eq!(env.of_datatype(Symbol::new("list")).len(), 2);
    }

    #[test]
    fn rejects_missing_case() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        let mut m = len_measure();
        m.cases.remove(&Symbol::new("Nil"));
        assert!(env.add(m, &data, &SortEnv::new()).is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        let mut m = len_measure();
        m.cases.get_mut(&Symbol::new("Cons")).unwrap().binders.pop();
        assert!(env.add(m, &data, &SortEnv::new()).is_err());
    }

    #[test]
    fn rejects_ill_sorted_body() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        let mut m = len_measure();
        m.cases.get_mut(&Symbol::new("Nil")).unwrap().body = Expr::SetEmpty;
        assert!(env.add(m, &data, &SortEnv::new()).is_err());
    }

    #[test]
    fn ctor_refinement_builds_equalities() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        env.add(len_measure(), &data, &SortEnv::new()).unwrap();
        let p = env.ctor_refinement(
            Symbol::new("list"),
            Symbol::new("Cons"),
            &[Expr::var("h"), Expr::var("t")],
        );
        assert_eq!(p.to_string(), "(len(VV) = (1 + len(t)))");
    }

    #[test]
    fn match_guard_uses_scrutinee() {
        let data = DataEnv::with_builtins();
        let mut env = MeasureEnv::new();
        env.add(len_measure(), &data, &SortEnv::new()).unwrap();
        let p = env.match_guard(
            Symbol::new("list"),
            Symbol::new("Nil"),
            Expr::var("xs"),
            &[],
        );
        assert_eq!(p.to_string(), "(len(xs) = 0)");
    }

    #[test]
    fn sorts_of_mltypes() {
        assert_eq!(sort_of_mltype(&MlType::Int), Sort::Int);
        assert_eq!(sort_of_mltype(&MlType::Var(3)), Sort::Int);
        assert_eq!(
            sort_of_mltype(&MlType::map(MlType::Int, MlType::Int)),
            Sort::Map
        );
        assert_eq!(
            sort_of_mltype(&MlType::list(MlType::Int)),
            Sort::Obj(Symbol::new("list"))
        );
    }
}
