//! End-to-end verification of the paper's running examples (Figs. 1–4)
//! and the §4/§5 mechanisms: recursive refinements (sortedness),
//! measures (`len`/`elts`), and polymorphic refinements (memoization).

use dsolve_liquid::{
    up_field_name, verify_source, DataRType, Measure, MeasureCase, MeasureEnv, RScheme, RType,
    RVarDecl, Refinement, Rho, Spec,
};
use dsolve_logic::{parse_expr, parse_pred, Expr, Qualifier, Sort, Subst, Symbol};
use dsolve_nanoml::DataEnv;
use std::collections::{BTreeMap, HashMap};

fn quals(qs: &[&str]) -> Vec<Qualifier> {
    qs.iter()
        .enumerate()
        .map(|(i, q)| Qualifier::new(format!("Q{i}"), parse_pred(q).unwrap()))
        .collect()
}

/// The sorted list type `α list≤` of §4.1: trivial top matrix, inner
/// matrix at the tail binding every deeper head to be ≥ the enclosing
/// head.
fn sorted_list(elem: RType) -> RType {
    let list = Symbol::new("list");
    let cons = Symbol::new("Cons");
    let mut m = Rho::top();
    m.set(
        1,
        0,
        Refinement::pred(
            parse_pred(&format!("{} <= VV", up_field_name(list, cons, 0))).unwrap(),
        ),
    );
    let mut inner = BTreeMap::new();
    inner.insert((1, 1), m);
    RType::Data(DataRType {
        name: list,
        targs: vec![elem],
        rho: Rho::top(),
        inner,
        refinement: Refinement::top(),
    })
}

fn tyvar(v: u32) -> RType {
    RType::TyVar(v, Subst::new(), Refinement::top())
}

fn plain_list(elem: RType) -> RType {
    RType::Data(DataRType {
        name: Symbol::new("list"),
        targs: vec![elem],
        rho: Rho::top(),
        inner: BTreeMap::new(),
        refinement: Refinement::top(),
    })
}

fn fun(x: &str, a: RType, b: RType) -> RType {
    RType::Fun(Symbol::new(x), Box::new(a), Box::new(b))
}

fn len_measure() -> Measure {
    let mut cases = HashMap::new();
    cases.insert(
        Symbol::new("Nil"),
        MeasureCase {
            binders: vec![],
            body: Expr::int(0),
        },
    );
    cases.insert(
        Symbol::new("Cons"),
        MeasureCase {
            binders: vec![Symbol::new("x"), Symbol::new("xs")],
            body: parse_expr("1 + len(xs)").unwrap(),
        },
    );
    Measure {
        name: Symbol::new("len"),
        datatype: Symbol::new("list"),
        sort: Sort::Int,
        cases,
    }
}

fn elts_measure() -> Measure {
    let mut cases = HashMap::new();
    cases.insert(
        Symbol::new("Nil"),
        MeasureCase {
            binders: vec![],
            body: Expr::SetEmpty,
        },
    );
    cases.insert(
        Symbol::new("Cons"),
        MeasureCase {
            binders: vec![Symbol::new("x"), Symbol::new("xs")],
            body: parse_expr("union(single(x), elts(xs))").unwrap(),
        },
    );
    Measure {
        name: Symbol::new("elts"),
        datatype: Symbol::new("list"),
        sort: Sort::Set,
        cases,
    }
}

fn measures(ms: Vec<Measure>) -> MeasureEnv {
    let data = DataEnv::with_builtins();
    let mut env = MeasureEnv::new();
    for m in ms {
        env.add(m, &data, &dsolve_logic::SortEnv::new()).unwrap();
    }
    env
}

const INSERT_SORT: &str = r#"
let rec insert x vs =
  match vs with
  | [] -> [x]
  | y :: ys -> if x < y then x :: y :: ys else y :: insert x ys

let rec insertsort xs =
  match xs with
  | [] -> []
  | x :: rest -> insert x (insertsort rest)
"#;

/// Fig. 2 + §4: `insertsort` returns a *sorted* list, inferred from the
/// single qualifier `★ ≤ ν`.
#[test]
fn insertion_sort_is_sorted() {
    let spec = Spec {
        name: Symbol::new("insertsort"),
        scheme: RScheme {
            vars: vec![RVarDecl {
                var: 0,
                witness: None,
            }],
            ty: fun("xs", plain_list(tyvar(0)), sorted_list(tyvar(0))),
        },
    };
    let result = verify_source(
        INSERT_SORT,
        MeasureEnv::new(),
        quals(&["_ <= VV"]),
        vec![spec],
    )
    .unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// The negative twin: a buggy insert (flipped comparison) is *not*
/// accepted as sorting.
#[test]
fn buggy_insertion_sort_is_rejected() {
    let buggy = INSERT_SORT.replace("if x < y", "if x > y");
    let spec = Spec {
        name: Symbol::new("insertsort"),
        scheme: RScheme {
            vars: vec![RVarDecl {
                var: 0,
                witness: None,
            }],
            ty: fun("xs", plain_list(tyvar(0)), sorted_list(tyvar(0))),
        },
    };
    let result = verify_source(&buggy, MeasureEnv::new(), quals(&["_ <= VV"]), vec![spec])
        .unwrap();
    assert!(!result.is_safe(), "bug must be detected");
}

/// §2.1 structure refinements: `insertsort` preserves the set of
/// elements, via the `elts` measure.
#[test]
fn insertion_sort_preserves_elements() {
    let spec = Spec {
        name: Symbol::new("insertsort"),
        scheme: RScheme {
            vars: vec![RVarDecl {
                var: 0,
                witness: None,
            }],
            ty: fun(
                "xs",
                plain_list(tyvar(0)),
                RType::Data(DataRType {
                    name: Symbol::new("list"),
                    targs: vec![tyvar(0)],
                    rho: Rho::top(),
                    inner: BTreeMap::new(),
                    refinement: Refinement::pred(
                        parse_pred("elts(VV) = elts(xs)").unwrap(),
                    ),
                }),
            ),
        },
    };
    let result = verify_source(
        INSERT_SORT,
        measures(vec![elts_measure()]),
        quals(&[
            "elts(VV) = elts(_)",
            "elts(VV) = union(single(_), elts(_))",
        ]),
        vec![spec],
    )
    .unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// Fig. 3 / §2.2: the memoized fibonacci returns a value ≥ 1 and ≥ i−1;
/// requires instantiating the map's polymorphic refinement.
#[test]
fn memo_fib_via_polymorphic_refinements() {
    let src = r#"
let fib i =
  let rec f t0 n =
    if mem t0 n then (t0, get t0 n)
    else if n <= 2 then (t0, 1)
    else
      let (t1, r1) = f t0 (n - 1) in
      let (t2, r2) = f t1 (n - 2) in
      let r = r1 + r2 in
      (set t2 n r, r)
  in
  let (tfin, r) = f (new 17) i in
  r
"#;
    let spec = Spec {
        name: Symbol::new("fib"),
        scheme: RScheme {
            vars: vec![],
            ty: fun(
                "i",
                RType::int(),
                RType::int_pred(parse_pred("1 <= VV && i - 1 <= VV").unwrap()),
            ),
        },
    };
    let result = verify_source(
        src,
        MeasureEnv::new(),
        quals(&["1 <= VV", "_ - 1 <= VV"]),
        vec![spec],
    )
    .unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// The `len` measure gives output-length facts: append's result length is
/// the sum of the inputs'.
#[test]
fn append_length() {
    let src = r#"
let rec append xs ys =
  match xs with
  | [] -> ys
  | x :: rest -> x :: append rest ys
"#;
    let spec = Spec {
        name: Symbol::new("append"),
        scheme: RScheme {
            vars: vec![RVarDecl {
                var: 0,
                witness: None,
            }],
            ty: fun(
                "xs",
                plain_list(tyvar(0)),
                fun(
                    "ys",
                    plain_list(tyvar(0)),
                    RType::Data(DataRType {
                        name: Symbol::new("list"),
                        targs: vec![tyvar(0)],
                        rho: Rho::top(),
                        inner: BTreeMap::new(),
                        refinement: Refinement::pred(
                            parse_pred("len(VV) = len(xs) + len(ys)").unwrap(),
                        ),
                    }),
                ),
            ),
        },
    };
    let result = verify_source(
        src,
        measures(vec![len_measure()]),
        quals(&["len(VV) = len(_) + len(_)"]),
        vec![spec],
    )
    .unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// Asserts with insufficient information are reported (with the line).
/// Function inputs are only constrained by call sites, so the bad call
/// `check 0` is what invalidates the assert.
#[test]
fn failing_assert_is_reported() {
    let src = r#"
let check x =
  assert (x > 0); x
let bad = check 0
"#;
    let result =
        verify_source(src, MeasureEnv::new(), quals(&["0 < VV"]), vec![]).unwrap();
    assert!(!result.is_safe());
    let msg = result.errors[0].to_string();
    assert!(msg.contains("line 3"), "{msg}");
}

/// The same function with only positive call sites verifies.
#[test]
fn passing_call_sites_verify() {
    let src = r#"
let check x =
  assert (x > 0); x
let ok = check 5
let ok2 = check 12
"#;
    let result =
        verify_source(src, MeasureEnv::new(), quals(&["0 < VV"]), vec![]).unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// Path sensitivity: guards make asserts provable.
#[test]
fn guarded_assert_is_safe() {
    let src = r#"
let check x =
  if x > 0 then (assert (x > 0); x) else 0
"#;
    let result =
        verify_source(src, MeasureEnv::new(), quals(&["0 < VV"]), vec![]).unwrap();
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}

/// The paper's `sortcheck` (§4.2): consuming a sorted list, the head-tail
/// ordering assert verifies.
#[test]
fn sortcheck_on_sorted_input() {
    let src = r#"
let rec sortcheck xs =
  match xs with
  | [] -> ()
  | x :: xs2 ->
    (match xs2 with
     | [] -> ()
     | y :: rest -> assert (x <= y); sortcheck xs2)
"#;
    let spec_input_sorted = Spec {
        name: Symbol::new("sortcheck"),
        scheme: RScheme {
            vars: vec![RVarDecl {
                var: 0,
                witness: None,
            }],
            ty: fun("xs", sorted_list(tyvar(0)), RType::unit()),
        },
    };
    // The assert must verify when sortcheck is *only* called with sorted
    // lists. We express this by checking the function against the sorted
    // spec — the interesting work is the unfold threading x ≤ elements
    // of xs2.
    let result = verify_source(
        src,
        MeasureEnv::new(),
        quals(&["_ <= VV"]),
        vec![spec_input_sorted],
    )
    .unwrap();
    // The spec direction (plain input <: sorted input) must FAIL —
    // sortcheck of arbitrary lists isn't sorted-input...
    // ...but what we really check: the assert inside is provable only
    // under the sorted hypothesis, so with the inferred (template) input
    // including the qualifier, verification succeeds or fails depending
    // on call sites. With no call sites and a free template, the solver
    // may keep the sorted qualifier on the input — so this must be safe.
    assert!(
        result.is_safe(),
        "{:?}",
        result.errors.iter().map(|e| e.to_string()).collect::<Vec<_>>()
    );
}
