//! Focused verification scenarios: one rule or mechanism each.

use dsolve_liquid::{verify_source, MeasureEnv, RScheme, RType, Spec};
use dsolve_logic::{parse_pred, Qualifier, Symbol};

fn quals(qs: &[&str]) -> Vec<Qualifier> {
    qs.iter()
        .enumerate()
        .map(|(i, q)| Qualifier::new(format!("Q{i}"), parse_pred(q).unwrap()))
        .collect()
}

fn safe(src: &str, qs: &[&str]) -> bool {
    verify_source(src, MeasureEnv::new(), quals(qs), vec![])
        .unwrap()
        .is_safe()
}

#[test]
fn branch_guards_flow_into_asserts() {
    assert!(safe(
        "let f x y = if x < y then assert (x <= y) else assert (y <= x)",
        &[]
    ));
}

#[test]
fn boolean_connectives_are_exact() {
    assert!(safe(
        "let f a b = if a < 0 && b < 0 then assert (a + b < 0) else ()",
        &[]
    ));
    assert!(safe(
        "let f a = if a < 0 || a > 10 then assert (a <> 5) else ()",
        &[]
    ));
    assert!(safe(
        "let f a = if not (a < 0) then assert (a >= 0) else ()",
        &[]
    ));
}

#[test]
fn arithmetic_selfification_is_exact() {
    assert!(safe("let f x = let y = x + 1 in assert (y > x)", &[]));
    assert!(safe("let f x = let y = x * 2 in assert (y = x + x)", &[]));
    assert!(safe("let f x = let y = 0 - x in assert (x + y = 0)", &[]));
}

#[test]
fn division_needs_nonzero_divisor() {
    assert!(!safe("let f x = 10 / x\nlet use = f 0", &[]));
    assert!(safe("let f x = if x > 0 then 10 / x else 0", &["0 < VV"]));
}

#[test]
fn letrec_infers_invariants_via_qualifiers() {
    // Classic accumulator loop: result ≥ initial.
    assert!(safe(
        r#"
let rec sum n acc = if n <= 0 then acc else sum (n - 1) (acc + n)
let check k = assert (sum k 0 >= 0)
"#,
        &["0 <= VV", "_ <= VV"]
    ));
}

#[test]
fn tuples_carry_dependencies() {
    assert!(safe(
        r#"
let minmax a b = if a < b then (a, b) else (b, a)
let check a b =
  let (lo, hi) = minmax a b in
  assert (lo <= hi)
"#,
        &["_ <= VV", "VV <= _"]
    ));
}

#[test]
fn polymorphic_instantiation_carries_refinements() {
    // `id` at {ν > 0} must keep positivity.
    assert!(safe(
        r#"
let id x = x
let check y = if y > 0 then assert (id y > 0) else ()
"#,
        &["0 < VV"]
    ));
}

#[test]
fn higher_order_arguments_respect_domains() {
    // `apply` calls f on a positive value only.
    assert!(safe(
        r#"
let apply f = f 5
let check u = apply (fun v -> assert (v > 0))
"#,
        &["0 < VV"]
    ));
    // And the negative twin.
    assert!(!safe(
        r#"
let apply f = f 0
let check u = apply (fun v -> assert (v > 0))
"#,
        &["0 < VV"]
    ));
}

#[test]
fn diverge_makes_branches_unreachable() {
    assert!(safe(
        r#"
let f x = if x < 0 then diverge () else x
let check y = assert (f y >= 0)
"#,
        &["0 <= VV"]
    ));
}

#[test]
fn spec_failures_name_the_function() {
    let spec = Spec {
        name: Symbol::new("f"),
        scheme: RScheme {
            vars: vec![],
            ty: RType::Fun(
                Symbol::new("x"),
                Box::new(RType::int()),
                Box::new(RType::int_pred(parse_pred("0 < VV").unwrap())),
            ),
        },
    };
    let r = verify_source("let f x = x", MeasureEnv::new(), quals(&["0 < VV"]), vec![spec])
        .unwrap();
    assert!(!r.is_safe());
    assert!(r.errors[0].to_string().contains("specification of `f`"));
}

#[test]
fn inferred_signature_uses_parameter_names() {
    let r = verify_source(
        "let rec range i j = if i > j then [] else i :: range (i + 1) j",
        MeasureEnv::new(),
        quals(&["_ <= VV"]),
        vec![],
    )
    .unwrap();
    let s = r.inferred[&Symbol::new("range")].to_string();
    assert!(s.starts_with("i:int -> j:int ->"), "{s}");
    // The element bound of Fig. 1: every element is at least i.
    assert!(s.contains("(i <= VV)"), "{s}");
}

#[test]
fn mutual_recursion_verifies() {
    // Exact truth of `even 0` is call-site specific (beyond qualifier
    // inference); the tautology over the returned boolean is provable.
    assert!(safe(
        r#"
let rec even n = if n = 0 then true else odd (n - 1)
and odd n = if n = 0 then false else even (n - 1)
let check u =
  let b = even 0 in
  assert (b || not b)
"#,
        &[]
    ));
}

#[test]
fn nested_datatypes_flow_refinements() {
    // A pair list where the verifier must track element positivity
    // through a user datatype.
    assert!(safe(
        r#"
type 'a boxed = B of 'a
let unbox b = match b with B x -> x
let check u =
  let b = B 7 in
  assert (unbox b > 0)
"#,
        &["0 < VV"]
    ));
}

#[test]
fn bool_refinement_rejects_always_false_assert() {
    let r = verify_source(
        "let f u = assert false",
        MeasureEnv::new(),
        vec![],
        vec![],
    )
    .unwrap();
    assert!(!r.is_safe());
}
