//! Overhead guard: with tracing disabled, the instrumented solver must
//! stay within a few percent of a run with observability fully off
//! (disabled `Obs` handle *and* theory timers switched off — the
//! pre-instrumentation configuration).
//!
//! The workload is a small in-memory module rather than a release
//! benchmark so the guard runs in the ordinary debug test suite. Times
//! are min-of-N with interleaved measurement order, and the bound keeps
//! a small absolute slack so scheduler noise on a loaded single-CPU
//! machine cannot flake the suite while a real regression (per-query
//! formatting, lock contention on the hot path) still trips it.

use dsolve::Job;
use dsolve_obs::{theory, Obs};
use std::time::{Duration, Instant};

const SOURCE: &str = r#"
let rec range i j = if i > j then [] else i :: range (i + 1) j
let rec fold_left f acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> fold_left f (f acc x) rest
let harmonic n =
  let ds = range 1 n in
  fold_left (fun s k -> s + 10000 / k) 0 ds
let rec rev_aux acc xs =
  match xs with
  | [] -> acc
  | x :: rest -> rev_aux (x :: acc) rest
let use_rev xs = rev_aux [] xs
"#;

const QUALS: &str = "qualif Pos : 0 < VV\nqualif Ub : _ <= VV\nqualif Nn : 0 <= VV\n";

fn timed_run(obs: Obs) -> Duration {
    let mut j = Job::from_sources("overhead", SOURCE, "", QUALS);
    j.config.jobs = 1;
    j.config.obs = obs;
    let start = Instant::now();
    let res = j.run().unwrap();
    let t = start.elapsed();
    assert!(res.is_safe());
    t
}

#[test]
fn metrics_overhead_within_bound() {
    // Warm up allocator, caches, and lazy statics off the clock.
    timed_run(Obs::off());
    timed_run(Obs::new());

    let rounds = 5;
    let mut baseline = Duration::MAX;
    let mut instrumented = Duration::MAX;
    for _ in 0..rounds {
        // Interleave so drift (thermal, noisy neighbors) hits both arms.
        theory::set_timers_enabled(false);
        baseline = baseline.min(timed_run(Obs::off()));
        theory::set_timers_enabled(true);
        instrumented = instrumented.min(timed_run(Obs::new()));
    }
    theory::set_timers_enabled(true);

    // 3% relative plus 25ms absolute: the relative term is the contract,
    // the absolute term absorbs timer granularity on a fast workload.
    let bound = baseline.mul_f64(1.03) + Duration::from_millis(25);
    assert!(
        instrumented <= bound,
        "instrumented min {instrumented:?} exceeds bound {bound:?} (baseline min {baseline:?})"
    );
}
