//! Verdict regression tests over the Fig. 10 benchmark suite.
//!
//! Two pins against past regressions ride here: `malloc` must verify
//! SAFE (a spec-specialization renaming bug once collapsed its scheme
//! and made it UNSAFE with zero SMT queries), and `redblack` must make
//! it *through the front end* (its `ok` measure contains `||` inside a
//! case body, which the `.mlq` parser once mis-split as a case
//! separator and rejected outright).
//!
//! These run in debug mode under `cargo test --workspace`, so the
//! deadline-bound benchmarks get a token budget: the assertion there is
//! only "front end + generation succeed and the verdict is never
//! UNSAFE", which is exactly what a budget-limited run must guarantee.

use dsolve_bench::load;
use dsolve_logic::Outcome;
use std::time::Duration;

/// Benchmarks that verify SAFE quickly even unoptimized.
const FAST_SAFE: &[&str] = &["stablesort", "malloc", "subvsolve", "ralist"];

/// Benchmarks that exhaust a small budget (or, for `bdd`, are simply
/// too slow for a debug build): the front end must succeed and the
/// outcome must be SAFE or UNKNOWN, never UNSAFE and never a
/// front-end/spec error.
const SLOW_OR_HEAVY: &[&str] = &[
    "listsort",
    "map",
    "redblack",
    "vec",
    "heap",
    "splayheap",
    "unionfind",
    "bdd",
];

#[test]
fn figure10_verdicts() {
    for name in FAST_SAFE {
        let res = load(name)
            .unwrap_or_else(|e| panic!("{name}: load failed: {e}"))
            .run()
            .unwrap_or_else(|e| panic!("{name}: front end failed: {e}"));
        assert!(
            matches!(res.outcome(), Outcome::Safe),
            "{name}: expected SAFE, got {} ({:?})",
            res.outcome(),
            res.result.errors.first().map(ToString::to_string)
        );
    }
    for name in SLOW_OR_HEAVY {
        let mut job = load(name).unwrap_or_else(|e| panic!("{name}: load failed: {e}"));
        job.config.budget.timeout = Some(Duration::from_secs(1));
        // A budget-limited run may be UNKNOWN but must never flip to
        // UNSAFE, and must get past the front end (the redblack pin).
        let res = job
            .run()
            .unwrap_or_else(|e| panic!("{name}: front end failed: {e}"));
        assert!(
            !matches!(res.outcome(), Outcome::Unsafe),
            "{name}: budget-limited run reported UNSAFE: {:?}",
            res.result.errors.first().map(ToString::to_string)
        );
    }
}

/// Canonicalizes rendering noise that varies between any two in-process
/// runs, parallel or not: fresh-symbol counters (`fld%280` vs `fld%888`
/// — the interner is process-global, so the second run starts higher)
/// and the order of conjuncts inside a κ's solved refinement (qualifier
/// instantiation order follows symbol ids). Conjunctions always render
/// parenthesized, so sorting ` && `-separated parts inside each
/// balanced `(...)` group, innermost first, is a faithful canonical
/// form.
fn canon(s: &str) -> String {
    // fld%280 → fld%_
    let mut noctr = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        noctr.push(c);
        if c == '%' {
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
            }
            noctr.push('_');
        }
    }
    sort_conjuncts(&noctr)
}

fn sort_conjuncts(s: &str) -> String {
    let b = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < b.len() {
        if b[i] == b'(' {
            // Find the matching close paren.
            let mut depth = 1;
            let mut j = i + 1;
            while j < b.len() && depth > 0 {
                match b[j] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    _ => {}
                }
                j += 1;
            }
            let inner = sort_conjuncts(&s[i + 1..j - 1]);
            // Split the interior on top-level " && " and sort.
            let ib = inner.as_bytes();
            let mut parts: Vec<&str> = Vec::new();
            let (mut depth, mut start, mut k) = (0i32, 0usize, 0usize);
            while k < ib.len() {
                match ib[k] {
                    b'(' => depth += 1,
                    b')' => depth -= 1,
                    b' ' if depth == 0 && inner[k..].starts_with(" && ") => {
                        parts.push(&inner[start..k]);
                        start = k + 4;
                        k += 3;
                    }
                    _ => {}
                }
                k += 1;
            }
            parts.push(&inner[start..]);
            parts.sort_unstable();
            out.push('(');
            out.push_str(&parts.join(" && "));
            out.push(')');
            i = j;
        } else {
            // Safe: '(' and ')' are ASCII, so slicing between them
            // stays on char boundaries.
            let next = s[i..]
                .find('(')
                .map_or(s.len(), |off| i + off);
            out.push_str(&s[i..next]);
            i = next;
        }
    }
    out
}

/// `--jobs 1` and `--jobs 4` must agree on everything observable: the
/// verdict, the error list, and the inferred types (the rendered form
/// of the final κ assignment), up to the in-process rendering noise
/// `canon` removes.
#[test]
fn parallel_and_sequential_verdicts_agree() {
    for name in ["stablesort", "malloc", "subvsolve"] {
        let run = |jobs: usize| {
            let mut job = load(name).unwrap();
            job.config.jobs = jobs;
            let res = job.run().unwrap_or_else(|e| panic!("{name}: {e}"));
            let mut inferred: Vec<String> = res
                .result
                .inferred
                .iter()
                .map(|(n, scheme)| canon(&format!("{n} :: {scheme}")))
                .collect();
            inferred.sort();
            let errors: Vec<String> =
                res.result.errors.iter().map(|e| canon(&e.to_string())).collect();
            (format!("{}", res.outcome()), errors, inferred)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.0, par.0, "{name}: verdict differs between jobs=1 and jobs=4");
        assert_eq!(seq.1, par.1, "{name}: error list differs between jobs=1 and jobs=4");
        assert_eq!(seq.2, par.2, "{name}: inferred types differ between jobs=1 and jobs=4");
    }
}

/// Runs one benchmark and returns its observable surface (verdict,
/// canonicalized errors, canonicalized sorted inferred types).
fn observe(
    name: &str,
    jobs: usize,
    no_incremental: bool,
    certify: bool,
) -> (String, Vec<String>, Vec<String>) {
    let mut job = load(name).unwrap();
    job.config.jobs = jobs;
    job.config.no_incremental = no_incremental;
    job.config.smt.certify = certify;
    let res = job.run().unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut inferred: Vec<String> = res
        .result
        .inferred
        .iter()
        .map(|(n, scheme)| canon(&format!("{n} :: {scheme}")))
        .collect();
    inferred.sort();
    let errors: Vec<String> =
        res.result.errors.iter().map(|e| canon(&e.to_string())).collect();
    (format!("{}", res.outcome()), errors, inferred)
}

/// The incremental (assertion-scope) SMT path and the scratch path must
/// agree on everything observable across the smoke set — the end-to-end
/// differential pin for the batched qualifier checks.
#[test]
fn incremental_and_scratch_verdicts_agree() {
    for name in ["stablesort", "malloc", "subvsolve", "ralist"] {
        let inc = observe(name, 1, false, false);
        let scratch = observe(name, 1, true, false);
        assert_eq!(
            inc.0, scratch.0,
            "{name}: verdict differs between incremental and scratch"
        );
        assert_eq!(
            inc.1, scratch.1,
            "{name}: error list differs between incremental and scratch"
        );
        assert_eq!(
            inc.2, scratch.2,
            "{name}: inferred types differ between incremental and scratch"
        );
    }
}

/// Incremental solving under `--jobs 4` stays deterministic: two runs
/// produce identical observables, and they match the sequential
/// incremental run.
#[test]
fn parallel_incremental_is_deterministic() {
    for name in ["stablesort", "subvsolve"] {
        let a = observe(name, 4, false, false);
        let b = observe(name, 4, false, false);
        assert_eq!(a, b, "{name}: jobs=4 incremental runs differ");
        let seq = observe(name, 1, false, false);
        assert_eq!(
            a, seq,
            "{name}: jobs=4 incremental differs from sequential incremental"
        );
    }
}

/// The full {jobs 1, 4} × {incremental, scratch} × {certify on, off}
/// cross-product on the fastest smoke benchmarks: every cell must
/// produce the same observable surface as the base configuration.
/// Certification replays each definite SMT verdict through the
/// independent checker, so this is also the pin that certification
/// never *changes* a verdict — it may only degrade one to UNKNOWN, and
/// on these all-SAFE rows it must not even do that.
#[test]
fn config_cross_product_agrees_on_smoke_set() {
    for name in ["malloc", "ralist"] {
        let base = observe(name, 1, false, false);
        assert_eq!(base.0, "SAFE", "{name}: smoke benchmark no longer SAFE");
        for jobs in [1, 4] {
            for no_incremental in [false, true] {
                for certify in [false, true] {
                    let got = observe(name, jobs, no_incremental, certify);
                    assert_eq!(
                        got, base,
                        "{name}: jobs={jobs} no_incremental={no_incremental} \
                         certify={certify} disagrees with base"
                    );
                }
            }
        }
    }
}
