//! Ablations of the design choices DESIGN.md calls out:
//!
//! * SMT validity-query caching on/off;
//! * eager array-axiom instantiation on/off (with axioms off, the
//!   `Sel`/`Upd`-dependent benchmarks must *fail* — the axioms carry the
//!   proof — so the timing ablation uses a benchmark that does not need
//!   them);
//! * qualifier-set size: verification time as inert qualifiers are
//!   added (placeholder instantiation grows the initial assignments).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsolve_bench::load;
use dsolve_liquid::SolveConfig;
use dsolve_smt::SolverConfig;
use std::time::Duration;

fn config(cache: bool, array_axioms: bool) -> SolveConfig {
    SolveConfig {
        smt: SolverConfig {
            cache,
            array_axioms,
            ..SolverConfig::default()
        },
        ..SolveConfig::default()
    }
}

fn bench_smt_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/smt-cache");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    for (label, cache) in [("on", true), ("off", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut job = load("malloc").unwrap();
                job.config = config(cache, true);
                let r = job.run().unwrap();
                assert!(r.is_safe());
            })
        });
    }
    g.finish();
}

fn bench_array_axioms(c: &mut Criterion) {
    // stablesort does not need the array axioms; measure their overhead.
    let mut g = c.benchmark_group("ablation/array-axioms");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    for (label, axioms) in [("on", true), ("off", false)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut job = load("stablesort").unwrap();
                job.config = config(true, axioms);
                let r = job.run().unwrap();
                assert!(r.is_safe());
            })
        });
    }
    g.finish();

    // And the correctness direction (not a timing): without the axioms,
    // malloc's non-aliasing proof must fail.
    let mut job = load("malloc").unwrap();
    job.config = config(true, false);
    let r = job.run().unwrap();
    assert!(
        !r.is_safe(),
        "malloc must not verify without the read-over-write axioms"
    );
}

fn bench_qualifier_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/qualifier-count");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(15));
    for extra in [0usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(extra), &extra, |b, &extra| {
            b.iter(|| {
                let mut job = load("malloc").unwrap();
                // Inert-but-instantiable qualifiers inflate Q*.
                for i in 0..extra {
                    job.quals
                        .push_str(&format!("\nqualif Pad{i} : VV <= _ + {i}"));
                }
                let r = job.run().unwrap();
                assert!(r.is_safe());
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_smt_cache,
    bench_array_axioms,
    bench_qualifier_count
);
criterion_main!(benches);
