//! Microbenchmarks of the SMT substrate: the implication shapes the
//! verifier generates most (arithmetic chains, congruence, array
//! read-over-write, ACI set equalities).

use criterion::{criterion_group, criterion_main, Criterion};
use dsolve_logic::{parse_pred, FuncSort, Sort, SortEnv, Symbol};
use dsolve_smt::SmtSolver;

fn env() -> SortEnv {
    let mut env = SortEnv::new();
    for v in ["x", "y", "z", "i", "j", "k", "n", "w"] {
        env.bind(Symbol::new(v), Sort::Int);
    }
    env.bind(Symbol::new("m"), Sort::Map);
    env.bind(Symbol::new("xs"), Sort::Obj(Symbol::new("list")));
    env.bind(Symbol::new("ys"), Sort::Obj(Symbol::new("list")));
    env.declare_func(
        Symbol::new("elts"),
        FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Set),
    );
    env.declare_func(
        Symbol::new("len"),
        FuncSort::new(vec![Sort::Obj(Symbol::new("list"))], Sort::Int),
    );
    env
}

fn bench_queries(c: &mut Criterion) {
    let cases: &[(&str, &str, &str, bool)] = &[
        ("arith-chain", "x < y && y < z && z < w", "x + 2 < w", true),
        ("arith-invalid", "x <= y && y <= z", "x < z", false),
        ("congruence", "x = y && len(xs) = x", "len(xs) = y", true),
        (
            "array-row",
            "Sel(m, x) = 0 && x != k",
            "Sel(Upd(m, k, 1), x) = 0",
            true,
        ),
        (
            "sets-aci",
            "elts(xs) = union(single(x), elts(ys))",
            "elts(xs) = union(elts(ys), single(x))",
            true,
        ),
        (
            "guards",
            "(x < y => z = 1) && (not (x < y) => z = 2)",
            "z = 1 || z = 2",
            true,
        ),
    ];
    let env = env();
    let mut g = c.benchmark_group("smt");
    for (name, lhs, rhs, expect) in cases {
        let l = parse_pred(lhs).unwrap();
        let r = parse_pred(rhs).unwrap();
        g.bench_function(*name, |b| {
            b.iter(|| {
                // Fresh solver per iteration: measure the full query, not
                // the cache.
                let mut smt = SmtSolver::new();
                let got = smt.is_valid(&env, &l, &r);
                assert_eq!(got, *expect);
                got
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
