//! Criterion benches over the Fig. 10 programs that verify quickly
//! enough to sample repeatedly. The complete table — including the
//! heavyweight rows — is produced by the one-shot binary:
//!
//! ```text
//! cargo run --release -p dsolve-bench --bin figure10
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use dsolve_bench::{load, run};
use std::time::Duration;

/// Rows cheap enough for repeated sampling.
const FAST: &[&str] = &["malloc", "subvsolve", "stablesort"];

fn bench_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure10");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    for name in FAST {
        // Skip rows that do not currently verify rather than crash the
        // whole bench run.
        match run(name) {
            Ok(r) if r.is_safe() => {}
            _ => {
                eprintln!("skipping {name}: does not verify in this configuration");
                continue;
            }
        }
        let job = load(name).expect("benchmark exists");
        g.bench_function(*name, |b| {
            b.iter(|| {
                let res = job.run().expect("front end");
                assert!(res.is_safe());
                res.result.stats.smt_queries
            })
        });
    }
    g.finish();
}

fn bench_frontend(c: &mut Criterion) {
    // Parsing + HM inference alone, on the largest source.
    use dsolve_nanoml::{infer_program, parse_program, resolve_program, DataEnv};
    let src = std::fs::read_to_string(dsolve_bench::benchmarks_dir().join("vec.ml")).unwrap();
    let (ml_builtins, _) = dsolve_liquid::builtin_schemes();
    c.bench_function("frontend/vec", |b| {
        b.iter(|| {
            let prog = parse_program(&src).unwrap();
            let mut data = DataEnv::with_builtins();
            data.add_program(&prog.datatypes).unwrap();
            let prog = resolve_program(&prog, &data).unwrap();
            infer_program(&prog, &data, &ml_builtins).unwrap()
        })
    });
}

criterion_group!(benches, bench_verification, bench_frontend);
criterion_main!(benches);
