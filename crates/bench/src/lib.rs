//! Shared benchmark definitions: the twelve programs of Fig. 10 with
//! their properties and the paper's reported numbers.

use dsolve::{Job, JobError, JobResult};
use std::path::{Path, PathBuf};

/// One benchmark row: program, verified properties, and the numbers
/// reported in Fig. 10 of the paper (for EXPERIMENTS.md comparisons).
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// File stem under `benchmarks/`.
    pub name: &'static str,
    /// Properties verified (the table's Property column).
    pub properties: &'static str,
    /// Paper-reported lines of code.
    pub paper_loc: usize,
    /// Paper-reported manual qualifier annotations.
    pub paper_annotations: usize,
    /// Paper-reported verification time in seconds (DSOLVE + Z3, 2009).
    pub paper_time_s: u64,
}

/// The Fig. 10 rows.
pub const BENCHMARKS: &[Benchmark] = &[
    Benchmark { name: "listsort", properties: "Sorted, Elts", paper_loc: 110, paper_annotations: 7, paper_time_s: 11 },
    Benchmark { name: "map", properties: "Balance, BST, Set", paper_loc: 95, paper_annotations: 3, paper_time_s: 23 },
    Benchmark { name: "ralist", properties: "Len", paper_loc: 91, paper_annotations: 3, paper_time_s: 3 },
    Benchmark { name: "redblack", properties: "Balance, Color, BST", paper_loc: 105, paper_annotations: 3, paper_time_s: 32 },
    Benchmark { name: "stablesort", properties: "Sorted", paper_loc: 161, paper_annotations: 1, paper_time_s: 6 },
    Benchmark { name: "vec", properties: "Balance, Len1, Len2", paper_loc: 343, paper_annotations: 9, paper_time_s: 103 },
    Benchmark { name: "heap", properties: "Heap, Min, Set", paper_loc: 120, paper_annotations: 2, paper_time_s: 41 },
    Benchmark { name: "splayheap", properties: "BST, Min, Set", paper_loc: 128, paper_annotations: 3, paper_time_s: 7 },
    Benchmark { name: "malloc", properties: "Alloc", paper_loc: 71, paper_annotations: 2, paper_time_s: 2 },
    Benchmark { name: "bdd", properties: "VariableOrder", paper_loc: 205, paper_annotations: 3, paper_time_s: 38 },
    Benchmark { name: "unionfind", properties: "Acyclic", paper_loc: 61, paper_annotations: 2, paper_time_s: 5 },
    Benchmark { name: "subvsolve", properties: "Acyclic", paper_loc: 264, paper_annotations: 2, paper_time_s: 26 },
];

/// The repository's `benchmarks/` directory, resolved relative to this
/// crate so binaries work from any working directory.
pub fn benchmarks_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("benchmarks")
}

/// Loads a benchmark's job.
///
/// # Errors
///
/// Fails when the benchmark's `.ml` file cannot be read.
pub fn load(name: &str) -> Result<Job, JobError> {
    Job::from_path(benchmarks_dir().join(format!("{name}.ml")))
}

/// Runs one benchmark end to end.
///
/// # Errors
///
/// Front-end failures only; verification failures are in the result.
pub fn run(name: &str) -> Result<JobResult, JobError> {
    load(name)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmark_files_exist() {
        for b in BENCHMARKS {
            let p = benchmarks_dir().join(format!("{}.ml", b.name));
            assert!(p.exists(), "missing {}", p.display());
        }
    }

    #[test]
    fn paper_totals_match_figure_10() {
        let loc: usize = BENCHMARKS.iter().map(|b| b.paper_loc).sum();
        let ann: usize = BENCHMARKS.iter().map(|b| b.paper_annotations).sum();
        let t: u64 = BENCHMARKS.iter().map(|b| b.paper_time_s).sum();
        assert_eq!(loc, 1754);
        assert_eq!(ann, 40);
        assert_eq!(t, 297);
    }
}
