//! Regenerates Figure 10 of the paper: one row per benchmark with LOC,
//! manual annotations, verification time, properties, and status, plus
//! the paper's numbers for comparison.
//!
//! ```text
//! cargo run --release -p dsolve-bench --bin figure10 [--timeout <secs>] [names...]
//! ```
//!
//! Each benchmark runs under panic isolation: a pathological module
//! reports `UNKNOWN (panic …)` and the suite keeps going. `--timeout`
//! bounds every job's wall clock; exhausted budgets likewise surface as
//! `UNKNOWN` rows instead of hanging the table.

use dsolve::{JobError, Row, Status, Table};
use dsolve_bench::{load, BENCHMARKS};
use std::time::Duration;

fn main() {
    let mut timeout: Option<u64> = None;
    let mut filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--timeout" {
            match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => timeout = Some(secs),
                None => {
                    eprintln!("figure10: --timeout needs a number of seconds");
                    std::process::exit(3);
                }
            }
        } else {
            filter.push(a);
        }
    }

    let mut table = Table::new();
    println!("Reproducing Fig. 10 (paper numbers in brackets)\n");
    for b in BENCHMARKS {
        if !filter.is_empty() && !filter.iter().any(|f| f == b.name) {
            continue;
        }
        eprint!("verifying {:<12} ... ", b.name);
        let job = match load(b.name) {
            Ok(mut j) => {
                if let Some(secs) = timeout {
                    j.config.budget.timeout = Some(Duration::from_secs(secs));
                }
                j
            }
            Err(e) => {
                eprintln!("load error: {e}");
                table.push(error_row(b.name, b.properties, &e));
                continue;
            }
        };
        match job.run_isolated() {
            Err(e) => {
                // One bad job (front-end error or isolated panic) must
                // not take down the rest of the suite.
                eprintln!("{e}");
                table.push(error_row(b.name, b.properties, &e));
            }
            Ok(res) => {
                eprintln!(
                    "{} in {:.1}s [paper: {}s]",
                    res.outcome(),
                    res.time.as_secs_f64(),
                    b.paper_time_s
                );
                if !res.is_safe() {
                    for e in res.result.errors.iter().take(3) {
                        eprintln!("    {e}");
                    }
                }
                table.push(Row::from_result(
                    format!(
                        "{} [{} LOC, {} ann, {}s]",
                        b.name, b.paper_loc, b.paper_annotations, b.paper_time_s
                    ),
                    b.properties,
                    &res,
                ));
            }
        }
    }
    println!("{table}");
    if !table.all_safe() {
        std::process::exit(1);
    }
}

fn error_row(name: &str, properties: &str, e: &JobError) -> Row {
    let status = match e {
        JobError::Panic(_) => Status::from(&e.outcome()),
        _ => Status::Error(e.to_string()),
    };
    Row {
        program: name.into(),
        loc: 0,
        annotations: 0,
        time: Duration::ZERO,
        properties: properties.into(),
        status,
    }
}
