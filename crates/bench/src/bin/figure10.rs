//! Regenerates Figure 10 of the paper: one row per benchmark with LOC,
//! manual annotations, verification time, properties, and status, plus
//! the paper's numbers for comparison.
//!
//! ```text
//! cargo run --release -p dsolve-bench --bin figure10 [names...]
//! ```

use dsolve::{Row, Table};
use dsolve_bench::{run, BENCHMARKS};

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    let mut table = Table::new();
    println!("Reproducing Fig. 10 (paper numbers in brackets)\n");
    for b in BENCHMARKS {
        if !filter.is_empty() && !filter.iter().any(|f| f == b.name) {
            continue;
        }
        eprint!("verifying {:<12} ... ", b.name);
        match run(b.name) {
            Err(e) => {
                eprintln!("front-end error: {e}");
                table.push(Row {
                    program: b.name.into(),
                    loc: 0,
                    annotations: 0,
                    time: std::time::Duration::ZERO,
                    properties: b.properties.into(),
                    safe: false,
                });
            }
            Ok(res) => {
                eprintln!(
                    "{} in {:.1}s [paper: {}s]",
                    if res.is_safe() { "SAFE" } else { "UNSAFE" },
                    res.time.as_secs_f64(),
                    b.paper_time_s
                );
                if !res.is_safe() {
                    for e in res.result.errors.iter().take(3) {
                        eprintln!("    {e}");
                    }
                }
                table.push(Row::from_result(
                    format!(
                        "{} [{} LOC, {} ann, {}s]",
                        b.name, b.paper_loc, b.paper_annotations, b.paper_time_s
                    ),
                    b.properties,
                    &res,
                ));
            }
        }
    }
    println!("{table}");
    if !table.all_safe() {
        std::process::exit(1);
    }
}
