//! Regenerates Figure 10 of the paper: one row per benchmark with LOC,
//! manual annotations, verification time, properties, and status, plus
//! the paper's numbers for comparison.
//!
//! ```text
//! cargo run --release -p dsolve-bench --bin figure10 \
//!     [--timeout <secs>] [--jobs <n>] [--json <path>] [--stats]
//!     [--certify] [names...]
//! ```
//!
//! Each benchmark runs under panic isolation: a pathological module
//! reports `UNKNOWN (panic …)` and the suite keeps going. `--timeout`
//! bounds every job's wall clock; exhausted budgets likewise surface as
//! `UNKNOWN` rows instead of hanging the table. `--jobs` sets the
//! fixpoint worker count (0 = one per CPU). `--certify` replays every
//! definite SMT verdict through the independent certifier (the
//! `certs_checked`/`certs_failed` counters land in each row's metrics).
//! `--json` writes a machine-readable record per benchmark (wall time,
//! SMT queries, cache hits, jobs) for trend tracking — see
//! `BENCH_figure10.json`.

use dsolve::{JobError, Row, Status, Table};
use dsolve_bench::{load, BENCHMARKS};
use dsolve_obs::{Obs, Snapshot};
use std::fmt::Write as _;
use std::time::Duration;

/// One benchmark's machine-readable record.
struct JsonRow {
    name: String,
    outcome: String,
    wall_s: f64,
    smt_queries: u64,
    cache_hits: u64,
    cache_lookups: u64,
    smt_sessions: u64,
    smt_scoped_checks: u64,
    jobs: usize,
    /// Observability roll-up: counters, phase/theory nanoseconds, the
    /// query-latency histogram, and top expensive constraints. Present
    /// on every row — an UNKNOWN or panicked run reports whatever it
    /// recorded before stopping.
    metrics: Snapshot,
}

fn main() {
    let mut timeout: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut json_path: Option<String> = None;
    let mut stats = false;
    let mut certify = false;
    let mut filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stats" => stats = true,
            "--certify" => certify = true,
            "--timeout" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(secs) => timeout = Some(secs),
                None => {
                    eprintln!("figure10: --timeout needs a number of seconds");
                    std::process::exit(3);
                }
            },
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => jobs = Some(n),
                None => {
                    eprintln!("figure10: --jobs needs a worker count");
                    std::process::exit(3);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("figure10: --json needs a path");
                    std::process::exit(3);
                }
            },
            _ => filter.push(a),
        }
    }

    let mut table = Table::new();
    let mut records: Vec<JsonRow> = Vec::new();
    println!("Reproducing Fig. 10 (paper numbers in brackets)\n");
    for b in BENCHMARKS {
        if !filter.is_empty() && !filter.iter().any(|f| f == b.name) {
            continue;
        }
        eprint!("verifying {:<12} ... ", b.name);
        let job = match load(b.name) {
            Ok(mut j) => {
                if let Some(secs) = timeout {
                    j.config.budget.timeout = Some(Duration::from_secs(secs));
                }
                if let Some(n) = jobs {
                    j.config.jobs = n;
                }
                j.config.smt.certify = certify;
                // Fresh registry per benchmark so each row's metrics
                // cover exactly one job.
                j.config.obs = Obs::new();
                j
            }
            Err(e) => {
                eprintln!("load error: {e}");
                table.push(error_row(b.name, b.properties, &e));
                continue;
            }
        };
        let obs = job.config.obs.clone();
        match job.run_isolated() {
            Err(e) => {
                // One bad job (front-end error or isolated panic) must
                // not take down the rest of the suite.
                eprintln!("{e}");
                table.push(error_row(b.name, b.properties, &e));
                records.push(JsonRow {
                    name: b.name.into(),
                    outcome: format!("{}", e.outcome()),
                    wall_s: 0.0,
                    smt_queries: 0,
                    cache_hits: 0,
                    cache_lookups: 0,
                    smt_sessions: 0,
                    smt_scoped_checks: 0,
                    jobs: jobs.unwrap_or(0),
                    metrics: obs.snapshot(5),
                });
            }
            Ok(res) => {
                eprintln!(
                    "{} in {:.1}s [paper: {}s]",
                    res.outcome(),
                    res.time.as_secs_f64(),
                    b.paper_time_s
                );
                if !res.is_safe() {
                    for e in res.result.errors.iter().take(3) {
                        eprintln!("    {e}");
                    }
                }
                let s = &res.result.stats;
                if stats {
                    let reuse = if s.smt_sessions == 0 {
                        0.0
                    } else {
                        s.smt_scoped_checks as f64 / s.smt_sessions as f64
                    };
                    eprintln!(
                        "    smt_queries={} cache_hits={}/{} sessions={} scoped_checks={} asserts_per_session={reuse:.1}",
                        s.smt_queries,
                        s.cache_hits,
                        s.cache_lookups,
                        s.smt_sessions,
                        s.smt_scoped_checks,
                    );
                }
                records.push(JsonRow {
                    name: b.name.into(),
                    outcome: format!("{}", res.outcome()),
                    wall_s: res.time.as_secs_f64(),
                    smt_queries: s.smt_queries,
                    cache_hits: s.cache_hits,
                    cache_lookups: s.cache_lookups,
                    smt_sessions: s.smt_sessions,
                    smt_scoped_checks: s.smt_scoped_checks,
                    jobs: s.jobs,
                    metrics: res.metrics.clone(),
                });
                table.push(Row::from_result(
                    format!(
                        "{} [{} LOC, {} ann, {}s]",
                        b.name, b.paper_loc, b.paper_annotations, b.paper_time_s
                    ),
                    b.properties,
                    &res,
                ));
            }
        }
    }
    println!("{table}");
    if let Some(path) = json_path {
        let json = render_json(&records);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("figure10: cannot write `{path}`: {e}");
            std::process::exit(3);
        }
        eprintln!("wrote {path}");
    }
    if !table.all_safe() {
        std::process::exit(1);
    }
}

/// Renders the records as a JSON array (hand-rolled: the scalar fields
/// are numbers or known-shape strings, and [`Snapshot::to_json`] escapes
/// the provenance labels it embeds).
fn render_json(records: &[JsonRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        // The outcome can carry an exhaustion detail with quotes-free
        // text; keep only the leading word to stay safely quotable.
        let outcome = r.outcome.split([':', ' ']).next().unwrap_or("UNKNOWN");
        let _ = writeln!(
            out,
            "  {{\"name\": \"{}\", \"outcome\": \"{}\", \"wall_s\": {:.3}, \"smt_queries\": {}, \"cache_hits\": {}, \"cache_lookups\": {}, \"smt_sessions\": {}, \"smt_scoped_checks\": {}, \"jobs\": {},",
            r.name, outcome, r.wall_s, r.smt_queries, r.cache_hits, r.cache_lookups,
            r.smt_sessions, r.smt_scoped_checks, r.jobs
        );
        let _ = writeln!(out, "   \"metrics\": {}}}{}", r.metrics.to_json(3), sep);
    }
    out.push_str("]\n");
    out
}

fn error_row(name: &str, properties: &str, e: &JobError) -> Row {
    let status = match e {
        JobError::Panic(_) => Status::from(&e.outcome()),
        _ => Status::Error(e.to_string()),
    };
    Row {
        program: name.into(),
        loc: 0,
        annotations: 0,
        time: Duration::ZERO,
        properties: properties.into(),
        status,
    }
}
