//! # dsolve-logic
//!
//! The quantifier-free refinement logic underlying *Type-based Data
//! Structure Verification* (PLDI 2009): terms and predicates in the
//! decidable combination of equality, uninterpreted functions, linear
//! integer arithmetic (EUFA), McCarthy map operators, and finite sets —
//! plus the *logical qualifiers* (with `★` placeholders) from which liquid
//! types are inferred.
//!
//! This crate is purely syntactic: construction, substitution (including
//! the *pending substitutions* used by liquid templates and polymorphic
//! refinements), sort checking, qualifier instantiation, and a concrete
//! syntax parser. Deciding validity lives in `dsolve-smt`.
//!
//! ## Example
//!
//! ```
//! use dsolve_logic::{parse_pred, Qualifier, Sort, SortEnv, Symbol};
//!
//! // The paper's running qualifier set Q = {0 < ν, ★ <= ν}.
//! let q1 = Qualifier::new("Pos", parse_pred("0 < VV").unwrap());
//! let q2 = Qualifier::new("UB", parse_pred("_ <= VV").unwrap());
//!
//! let mut env = SortEnv::new();
//! env.bind(Symbol::new("i"), Sort::Int);
//!
//! let qstar = dsolve_logic::instantiate_all(&[q1, q2], &env, &Sort::Int);
//! assert_eq!(qstar.len(), 2); // 0 < ν  and  i <= ν
//! ```

#![warn(missing_docs)]

mod budget;
mod expr;
mod fault;
mod parse;
mod pred;
mod qualifier;
mod sort;
mod sortck;
mod subst;
mod symbol;

pub use budget::{deadline_expired, Budget, Exhaustion, Outcome, Phase, Resource};
pub use expr::{Binop, Expr};
pub use fault::{FaultPlan, FaultPoint};
pub use parse::{parse_expr, parse_pred, ParsePredError};
pub use pred::{Pred, Rel};
pub use qualifier::{instantiate_all, Qualifier};
pub use sort::{FuncSort, Sort};
pub use sortck::SortEnv;
pub use subst::Subst;
pub use symbol::Symbol;
