//! Logical qualifiers and their instantiation.
//!
//! A qualifier is a predicate over the value variable `ν`, program
//! variables, and the placeholder `★` (§2 of the paper). The set `Q★`
//! contains every placeholder-free predicate obtained by replacing each
//! `★i` with an in-scope program variable of a compatible sort. Liquid
//! types are then conjunctions of elements of `Q★`.

use crate::{Pred, Sort, SortEnv, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// A named logical qualifier, possibly containing placeholders `★i`.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{Expr, Pred, Qualifier, Sort, SortEnv, Symbol};
/// // The qualifier `★0 <= ν`.
/// let q = Qualifier::new("Le", Pred::le(Expr::Var(Symbol::star(0)), Expr::nu()));
/// let mut env = SortEnv::new();
/// env.bind(Symbol::new("i"), Sort::Int);
/// env.bind(Symbol::new("j"), Sort::Int);
/// let insts = q.instantiate(&env, &Sort::Int);
/// assert_eq!(insts.len(), 2); // i <= ν and j <= ν
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Qualifier {
    /// Human-readable name (used in reports).
    pub name: String,
    /// The qualifier predicate over `ν`, program variables, and `★i`.
    pub pred: Pred,
}

impl Qualifier {
    /// Creates a qualifier.
    pub fn new(name: impl Into<String>, pred: Pred) -> Qualifier {
        Qualifier {
            name: name.into(),
            pred,
        }
    }

    /// The placeholder symbols (`★i`) occurring in the qualifier.
    pub fn stars(&self) -> Vec<Symbol> {
        self.pred
            .free_vars()
            .into_iter()
            .filter(|s| s.is_star())
            .collect()
    }

    /// Expands this qualifier into its `Q★` instances for an environment.
    ///
    /// Each `★i` is replaced by every environment variable whose sort makes
    /// the resulting predicate well-sorted with `ν` bound at `nu_sort`.
    /// Qualifiers without placeholders yield themselves (if well-sorted).
    /// Ill-sorted instantiations are dropped rather than reported: a
    /// qualifier like `★ <= ν` simply has no instances at sort `bool`.
    pub fn instantiate(&self, env: &SortEnv, nu_sort: &Sort) -> Vec<Pred> {
        let stars = self.stars();
        let mut scratch = env.clone();
        scratch.bind(Symbol::value_var(), nu_sort.clone());

        // Candidate replacements: program variables and binder names.
        // ANF temporaries (`tmp%…`, `carg%…`, …) are excluded: they name
        // intermediate values whose facts are already present through
        // their defining equations, and admitting them multiplies `Q★`
        // by the (large) number of temporaries in scope.
        let candidates: Vec<Symbol> = env
            .vars()
            .map(|(s, _)| *s)
            .filter(|s| {
                if s.is_star() || *s == Symbol::value_var() {
                    return false;
                }
                let name = s.as_str();
                !(name.starts_with("tmp%")
                    || name.starts_with("carg%")
                    || name.starts_with("seq%")
                    || name.starts_with("ite%")
                    || name.starts_with("unused%")
                    || name.starts_with("toplevel%"))
            })
            .collect();

        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        self.enumerate(&stars, &candidates, &scratch, self.pred.clone(), &mut out, &mut seen);
        out
    }

    fn enumerate(
        &self,
        stars: &[Symbol],
        candidates: &[Symbol],
        env: &SortEnv,
        partial: Pred,
        out: &mut Vec<Pred>,
        seen: &mut BTreeSet<String>,
    ) {
        match stars.split_first() {
            None => {
                if env.wellsorted(&partial) && seen.insert(partial.to_string()) {
                    out.push(partial);
                }
            }
            Some((star, rest)) => {
                for c in candidates {
                    let next = partial.subst(*star, &crate::Expr::Var(*c));
                    self.enumerate(rest, candidates, env, next, out, seen);
                }
            }
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qualif {}: {}", self.name, self.pred)
    }
}

/// Expands a whole qualifier set `Q` into `Q★` for one environment/sort.
pub fn instantiate_all(quals: &[Qualifier], env: &SortEnv, nu_sort: &Sort) -> Vec<Pred> {
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for q in quals {
        for p in q.instantiate(env, nu_sort) {
            if seen.insert(p.to_string()) {
                out.push(p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    fn env() -> SortEnv {
        let mut env = SortEnv::new();
        env.bind(Symbol::new("i"), Sort::Int);
        env.bind(Symbol::new("j"), Sort::Int);
        env.bind(Symbol::new("flag"), Sort::Bool);
        env
    }

    #[test]
    fn no_star_qualifier_yields_itself() {
        let q = Qualifier::new("Pos", Pred::lt(Expr::int(0), Expr::nu()));
        let insts = q.instantiate(&env(), &Sort::Int);
        assert_eq!(insts, vec![Pred::lt(Expr::int(0), Expr::nu())]);
    }

    #[test]
    fn star_expands_over_int_vars_only() {
        let q = Qualifier::new("Le", Pred::le(Expr::Var(Symbol::star(0)), Expr::nu()));
        let insts = q.instantiate(&env(), &Sort::Int);
        // flag : bool is not a valid instantiation.
        assert_eq!(insts.len(), 2);
        for p in &insts {
            assert!(matches!(p, Pred::Atom(crate::Rel::Le, _, _)));
        }
    }

    #[test]
    fn ill_sorted_nu_yields_nothing() {
        let q = Qualifier::new("Le", Pred::le(Expr::Var(Symbol::star(0)), Expr::nu()));
        let insts = q.instantiate(&env(), &Sort::Bool);
        assert!(insts.is_empty());
    }

    #[test]
    fn two_stars_expand_pairwise() {
        let q = Qualifier::new(
            "Between",
            Pred::and(vec![
                Pred::le(Expr::Var(Symbol::star(0)), Expr::nu()),
                Pred::le(Expr::nu(), Expr::Var(Symbol::star(1))),
            ]),
        );
        let insts = q.instantiate(&env(), &Sort::Int);
        // 2 choices for each star = 4 combinations.
        assert_eq!(insts.len(), 4);
    }

    #[test]
    fn instantiate_all_dedupes() {
        let q1 = Qualifier::new("Pos", Pred::lt(Expr::int(0), Expr::nu()));
        let q2 = Qualifier::new("PosDup", Pred::lt(Expr::int(0), Expr::nu()));
        let all = instantiate_all(&[q1, q2], &env(), &Sort::Int);
        assert_eq!(all.len(), 1);
    }
}
