//! Quantifier-free refinement predicates.

use crate::{Expr, Symbol};
use std::collections::BTreeSet;
use std::fmt;

/// Relational operators of atomic predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rel {
    /// Equality (any sort).
    Eq,
    /// Disequality (any sort).
    Ne,
    /// Strictly less-than (integers).
    Lt,
    /// Less-or-equal (integers).
    Le,
    /// Strictly greater-than (integers).
    Gt,
    /// Greater-or-equal (integers).
    Ge,
    /// Set membership `e ∈ s`.
    In,
    /// Subset `s1 ⊆ s2`.
    Sub,
}

impl Rel {
    /// The relation with its arguments swapped (`a R b` iff `b R.flip() a`).
    ///
    /// `In` and `Sub` are not symmetric-flippable in this sense and are
    /// returned unchanged; callers never flip them.
    pub fn flip(self) -> Rel {
        match self {
            Rel::Eq => Rel::Eq,
            Rel::Ne => Rel::Ne,
            Rel::Lt => Rel::Gt,
            Rel::Le => Rel::Ge,
            Rel::Gt => Rel::Lt,
            Rel::Ge => Rel::Le,
            Rel::In => Rel::In,
            Rel::Sub => Rel::Sub,
        }
    }

    /// The negated relation, when expressible as another relation.
    pub fn negate(self) -> Option<Rel> {
        match self {
            Rel::Eq => Some(Rel::Ne),
            Rel::Ne => Some(Rel::Eq),
            Rel::Lt => Some(Rel::Ge),
            Rel::Le => Some(Rel::Gt),
            Rel::Gt => Some(Rel::Le),
            Rel::Ge => Some(Rel::Lt),
            Rel::In | Rel::Sub => None,
        }
    }
}

impl fmt::Display for Rel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rel::Eq => "=",
            Rel::Ne => "!=",
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Gt => ">",
            Rel::Ge => ">=",
            Rel::In => "in",
            Rel::Sub => "subset",
        };
        write!(f, "{s}")
    }
}

/// A quantifier-free predicate over [`Expr`] terms.
///
/// # Examples
///
/// ```
/// use dsolve_logic::{Expr, Pred};
/// // 0 < ν
/// let p = Pred::lt(Expr::int(0), Expr::nu());
/// assert_eq!(p.to_string(), "(0 < VV)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Pred {
    /// `⊤`.
    True,
    /// `⊥`.
    False,
    /// An atomic relation between two terms.
    Atom(Rel, Expr, Expr),
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Implication.
    Imp(Box<Pred>, Box<Pred>),
    /// Bi-implication.
    Iff(Box<Pred>, Box<Pred>),
    /// A boolean-sorted term used as a predicate (e.g. a boolean variable
    /// or an uninterpreted boolean function application).
    Term(Expr),
}

impl Pred {
    /// `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Ne, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Lt, a, b)
    }

    /// `a <= b`.
    pub fn le(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Le, a, b)
    }

    /// `a > b`.
    pub fn gt(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Gt, a, b)
    }

    /// `a >= b`.
    pub fn ge(a: Expr, b: Expr) -> Pred {
        Pred::Atom(Rel::Ge, a, b)
    }

    /// Set membership `e ∈ s`.
    pub fn mem(e: Expr, s: Expr) -> Pred {
        Pred::Atom(Rel::In, e, s)
    }

    /// Conjunction that flattens units and nested conjunctions.
    pub fn and(ps: Vec<Pred>) -> Pred {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Pred::True => {}
                Pred::False => return Pred::False,
                Pred::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pred::True,
            1 => out.pop().expect("len checked"),
            _ => Pred::And(out),
        }
    }

    /// Disjunction that flattens units and nested disjunctions.
    pub fn or(ps: Vec<Pred>) -> Pred {
        let mut out = Vec::new();
        for p in ps {
            match p {
                Pred::False => {}
                Pred::True => return Pred::True,
                Pred::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Pred::False,
            1 => out.pop().expect("len checked"),
            _ => Pred::Or(out),
        }
    }

    /// Logical negation, pushing through literals where cheap.
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Pred) -> Pred {
        match p {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(inner) => *inner,
            Pred::Atom(rel, a, b) => match rel.negate() {
                Some(nrel) => Pred::Atom(nrel, a, b),
                None => Pred::Not(Box::new(Pred::Atom(rel, a, b))),
            },
            other => Pred::Not(Box::new(other)),
        }
    }

    /// Implication `p ⇒ q`.
    pub fn imp(p: Pred, q: Pred) -> Pred {
        match (p, q) {
            (Pred::True, q) => q,
            (Pred::False, _) => Pred::True,
            (_, Pred::True) => Pred::True,
            (p, q) => Pred::Imp(Box::new(p), Box::new(q)),
        }
    }

    /// Bi-implication `p ⇔ q`.
    pub fn iff(p: Pred, q: Pred) -> Pred {
        Pred::Iff(Box::new(p), Box::new(q))
    }

    /// Capture-free substitution of `with` for `var`.
    pub fn subst(&self, var: Symbol, with: &Expr) -> Pred {
        match self {
            Pred::True | Pred::False => self.clone(),
            Pred::Atom(rel, a, b) => Pred::Atom(*rel, a.subst(var, with), b.subst(var, with)),
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.subst(var, with)).collect()),
            Pred::Or(ps) => Pred::Or(ps.iter().map(|p| p.subst(var, with)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.subst(var, with))),
            Pred::Imp(p, q) => {
                Pred::Imp(Box::new(p.subst(var, with)), Box::new(q.subst(var, with)))
            }
            Pred::Iff(p, q) => {
                Pred::Iff(Box::new(p.subst(var, with)), Box::new(q.subst(var, with)))
            }
            Pred::Term(e) => Pred::Term(e.subst(var, with)),
        }
    }

    /// Substitutes the value variable `ν` with `with`.
    pub fn subst_nu(&self, with: &Expr) -> Pred {
        self.subst(Symbol::value_var(), with)
    }

    /// All variables occurring in the predicate.
    pub fn free_vars(&self) -> BTreeSet<Symbol> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut BTreeSet<Symbol>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Atom(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            Pred::Not(p) => p.collect_vars(out),
            Pred::Imp(p, q) | Pred::Iff(p, q) => {
                p.collect_vars(out);
                q.collect_vars(out);
            }
            Pred::Term(e) => e.collect_vars(out),
        }
    }

    /// Whether the value variable `ν` occurs free.
    pub fn mentions_nu(&self) -> bool {
        self.free_vars().contains(&Symbol::value_var())
    }

    /// Splits a conjunction into its conjuncts (a non-conjunction is a
    /// singleton).
    pub fn conjuncts(self) -> Vec<Pred> {
        match self {
            Pred::And(ps) => ps,
            Pred::True => vec![],
            p => vec![p],
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Atom(rel, a, b) => write!(f, "({a} {rel} {b})"),
            Pred::And(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Or(ps) => {
                write!(f, "(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Pred::Not(p) => write!(f, "(not {p})"),
            Pred::Imp(p, q) => write!(f, "({p} => {q})"),
            Pred::Iff(p, q) => write!(f, "({p} <=> {q})"),
            Pred::Term(e) => write!(f, "{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_flattens_and_short_circuits() {
        let p = Pred::and(vec![
            Pred::True,
            Pred::and(vec![Pred::lt(Expr::int(0), Expr::nu()), Pred::True]),
        ]);
        assert_eq!(p.to_string(), "(0 < VV)");
        assert_eq!(Pred::and(vec![Pred::False, Pred::True]), Pred::False);
        assert_eq!(Pred::and(vec![]), Pred::True);
    }

    #[test]
    fn or_flattens_and_short_circuits() {
        assert_eq!(Pred::or(vec![Pred::True, Pred::False]), Pred::True);
        assert_eq!(Pred::or(vec![]), Pred::False);
    }

    #[test]
    fn not_pushes_through_atoms() {
        let p = Pred::not(Pred::lt(Expr::var("x"), Expr::var("y")));
        assert_eq!(p, Pred::ge(Expr::var("x"), Expr::var("y")));
        assert_eq!(Pred::not(Pred::not(Pred::True)), Pred::True);
    }

    #[test]
    fn subst_nu_rewrites_value_var() {
        let p = Pred::le(Expr::var("x"), Expr::nu());
        let q = p.subst_nu(&Expr::var("k"));
        assert_eq!(q.to_string(), "(x <= k)");
    }

    #[test]
    fn rel_flip_and_negate() {
        assert_eq!(Rel::Lt.flip(), Rel::Gt);
        assert_eq!(Rel::Le.negate(), Some(Rel::Gt));
        assert_eq!(Rel::In.negate(), None);
    }

    #[test]
    fn conjuncts_split() {
        let p = Pred::and(vec![
            Pred::lt(Expr::int(0), Expr::nu()),
            Pred::le(Expr::var("x"), Expr::nu()),
        ]);
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(Pred::True.conjuncts().len(), 0);
    }
}
